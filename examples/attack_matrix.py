#!/usr/bin/env python3
"""Adversary demo: regenerate the protocol × attacker survival matrix.

The paper's claim is that its ID-based GKA buys *authenticated* group keys;
this example checks the property mechanically.  Every registered protocol is
driven through the same establish / leave / leave / join trace once per
attacker model — passive eavesdropping, message injection, replay,
man-in-the-middle modification, jamming, delivery delay, and long-term key
compromise — and each run is classified from its security-oracle verdicts:

* ``clean``     — nothing attacked anything (or the trigger never matched);
* ``resisted``  — attacks absorbed, everyone still agrees on the key;
* ``detected``  — the protocol caught the attack and aborted;
* ``broken``    — inconsistent keys, nobody noticed (plain BD's fate, and —
  because its implicit authentication covers only Round 1 — the SSN
  baseline's as well);
* ``leaked``    — the adversary derived the group key (never happens here).

The rendered matrix is the table in README.md's "Adversary & security
evaluation" section; the CSV/JSON exports land in ``ATTACK_MATRIX_OUT``
(default: current directory).

Run with:  PYTHONPATH=src python examples/attack_matrix.py
"""

from __future__ import annotations

import os

from repro import SystemSetup
from repro.adversary import AdversaryConfig, run_attack_matrix
from repro.sim import Scenario, ScenarioRunner, comparison_table

#: One attacked comparison, spelled out, before the full survey: the same
#: scenario under injection for the headline three protocols.
HEADLINE_PROTOCOLS = ["proposed-gka", "bd-unauthenticated", "bd-ecdsa"]


def main() -> None:
    setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
    out_dir = os.environ.get("ATTACK_MATRIX_OUT") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "out"
    )
    os.makedirs(out_dir, exist_ok=True)

    # ------------------------------------------------- one attacked comparison
    scenario = Scenario(
        name="injection-demo",
        initial_size=6,
        seed="attack-demo",
        adversary=AdversaryConfig.preset("inject"),
    )
    runner = ScenarioRunner(setup, check_agreement=False)
    reports = runner.run_all(list(HEADLINE_PROTOCOLS), scenario)
    print(comparison_table(reports))
    print()

    # --------------------------------------------------------- the full matrix
    matrix = run_attack_matrix(setup)
    print(matrix.summary())

    csv_path = os.path.join(out_dir, "attack_matrix.csv")
    json_path = os.path.join(out_dir, "attack_matrix.json")
    matrix.to_csv(csv_path)
    matrix.to_json(json_path)
    print()
    print(f"exported: {csv_path}, {json_path}")

    # The repository's headline security claims, asserted so CI smoke-runs of
    # this example double as an end-to-end check.
    assert matrix.verdict("bd-unauthenticated", "inject") == "broken"
    assert matrix.verdict("proposed-gka", "inject") == "detected"
    for attacker in matrix.attackers:
        assert matrix.verdict("proposed-gka", attacker) in ("clean", "resisted", "detected")
        for protocol in matrix.protocols:
            assert matrix.verdict(protocol, "eavesdrop") == "clean"


if __name__ == "__main__":
    main()
