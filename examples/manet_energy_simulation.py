#!/usr/bin/env python3
"""MANET simulation: a dynamic wireless group over a long membership trace.

This is the scenario the paper's introduction motivates: a mobile ad-hoc
network whose membership churns constantly (joins, leaves, merges,
partitions).  The script drives a :class:`GroupSession` with a reproducible
random event trace, tracks the per-node energy on the StrongARM + WLAN device
model, and compares the total against what re-running authenticated BD for
every event would have cost (the closed-form Table 5 baseline).

Run with:  python examples/manet_energy_simulation.py [num_events]
"""

from __future__ import annotations

import sys

from repro import DeviceProfile, GroupSession, Identity, SystemSetup, WLAN_SPECTRUM24
from repro.analysis import DynamicComplexityParams, dynamic_energy_table
from repro.mathutils.rand import DeterministicRNG
from repro.network.events import EventTraceGenerator, JoinEvent, LeaveEvent, MergeEvent, PartitionEvent


def main(num_events: int = 12) -> None:
    setup = SystemSetup.from_param_sets("small-512", "gq-512")
    device = DeviceProfile(transceiver=WLAN_SPECTRUM24)
    members = [Identity(f"sensor-{i:02d}") for i in range(9)]
    session = GroupSession.establish(setup, members, device=device, seed="manet")
    print(f"Initial group: {len(session.members)} nodes, agreed: {session.all_agree()}")

    generator = EventTraceGenerator(
        DeterministicRNG("manet-trace"),
        join_weight=4, leave_weight=4, merge_weight=1, partition_weight=1,
        merge_size=3, partition_size=2, name_prefix="mobile",
    )
    trace = generator.trace(session.members, num_events)

    labels = {JoinEvent: "join", LeaveEvent: "leave", MergeEvent: "merge", PartitionEvent: "partition"}
    counts = {"join": 0, "leave": 0, "merge": 0, "partition": 0}
    for step, event in enumerate(trace, start=1):
        kind = labels[type(event)]
        counts[kind] += 1
        session.apply_event(event)
        assert session.all_agree(), f"group disagreed after event {step}"
        print(f"  event {step:2d}: {kind:9s} -> {len(session.members):2d} members, key rotated")

    print(f"\nEvent mix: {counts}")
    report = session.energy_report()
    total = sum(b.total_j for b in report.values())
    busiest = max(report, key=lambda name: report[name].total_j)
    quietest = min(report, key=lambda name: report[name].total_j)
    print(f"Total energy across the group: {total:.3f} J over {len(trace)} events + initial GKA")
    print(f"  busiest node : {busiest:12s} {report[busiest].total_j:.4f} J")
    print(f"  quietest node: {quietest:12s} {report[quietest].total_j:.4f} J")

    # What the same churn would cost per event if the group re-ran
    # authenticated BD instead (paper Table 5 model, scaled to this group size).
    params = DynamicComplexityParams(n=len(session.members), m=3, ld=2)
    baseline = dynamic_energy_table(params)
    per_event_baseline = baseline[("bd-rerun", "join", "incumbent")]
    print(
        f"\nFor comparison, ONE BD re-execution at this group size costs every node "
        f"~{per_event_baseline:.3f} J — {len(trace)} events would cost "
        f"~{per_event_baseline * len(trace):.2f} J per node, versus "
        f"{report[busiest].total_j:.3f} J for the busiest node here."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
