#!/usr/bin/env python3
"""Multi-tier topologies: what a satellite relay costs each protocol.

The paper's MANET is flat; real deployments are tiered — a dense ground
segment with an aerial or satellite relay bridging detached squads.  This
sweep runs the same churn workload over three topologies:

* ``flat``      — everyone on the 2 Mbps ground class (the classic domain);
* ``sat``       — one member homed behind a clean GEO relay (1 Mbps uplink,
  10 Mbps downlink, 250 ms one-way propagation), bridged by the controller
  acting as gateway;
* ``sat-bursty`` — the same relay with a Gilbert–Elliott fading channel
  (8% long-run loss in ~5-copy bursts).

Two questions the grid answers:

* which protocols *survive* a 500 ms round trip — round-heavy protocols pay
  the propagation delay once per round, so completion latency separates the
  two-round proposed protocol from the chattier baselines;
* who degrades gracefully under burst loss — correlated fades strand whole
  rounds at once, surfacing as timeout waves rather than the smeared-out
  retries i.i.d. loss produces.

CSV/JSON exports land in ``examples/out/`` (override with ``TIER_SWEEP_OUT``).

Run with:  PYTHONPATH=src python examples/tier_sweep.py
"""

from __future__ import annotations

import os

from repro.campaign import CampaignSpec, run_campaign

PROTOCOLS = ("proposed-gka", "bd-unauthenticated", "ssn")

#: One satellite-homed member; the controller doubles as the ground↔sat
#: gateway, so schedule churn (which never removes the controller) cannot
#: strand the relay tier.
def _tier_spec(sat_class: str) -> dict:
    return {
        "tiers": [["ground", "ground"], ["sat", sat_class]],
        "members": {"sat": 1},
        "gateways": {"ground:sat": 1},
    }


SPEC = CampaignSpec(
    name="tier-sweep",
    protocols=PROTOCOLS,
    group_sizes=(8,),
    schedule={"kind": "bursts", "bursts": 2, "burst_size": 1, "period": 20.0},
    tiers={
        "flat": {"tiers": [["ground", "ground"]]},
        "sat": _tier_spec("satellite"),
        "sat-bursty": _tier_spec("satellite-bursty"),
    },
    engines=("tiered",),
    replications=2,
    seed="tier-sweep",
)

COLUMNS = ("sim_latency_s", "timeouts", "energy_j", "bits_with_retries", "agreed")


def main() -> None:
    workers = int(os.environ.get("CAMPAIGN_WORKERS", 0)) or (os.cpu_count() or 1)
    out_dir = os.environ.get("TIER_SWEEP_OUT") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "out"
    )
    os.makedirs(out_dir, exist_ok=True)

    result = run_campaign(SPEC, workers=workers)
    assert result.failures() == []
    print(f"campaign: {SPEC.name} ({len(result.rows)} cells, {workers} workers)")

    for column in COLUMNS:
        print()
        print(f"mean {column} (protocol × tiers):")
        table = result.pivot("protocol", "tiers", column)
        tiers = sorted(name for name, _ in SPEC.tiers)
        header = f"  {'protocol':<20}" + "".join(f"{t:>12}" for t in tiers)
        print(header)
        print("  " + "-" * (len(header) - 2))
        for protocol in PROTOCOLS:
            cells = "".join(f"{table[protocol].get(t, float('nan')):>12.4g}" for t in tiers)
            print(f"  {protocol:<20}{cells}")

    csv_path = os.path.join(out_dir, "tier_sweep.csv")
    json_path = os.path.join(out_dir, "tier_sweep.json")
    result.to_csv(csv_path)
    result.to_json(json_path)
    print()
    print(f"rows exported to {csv_path} and {json_path}")

    latency = result.pivot("protocol", "tiers", "sim_latency_s")
    print()
    print("satellite tax (relay latency / flat latency):")
    for protocol in PROTOCOLS:
        row = latency[protocol]
        if row.get("flat"):
            print(f"  {protocol:<20}{row['sat'] / row['flat']:>8.1f}x")


if __name__ == "__main__":
    main()
