#!/usr/bin/env python3
"""Secure group messaging on top of the agreed key.

The GKA protocol's job ends with a shared group element K; an application then
derives symmetric keys from it and protects its payload traffic.  This example
shows the full path: establish the group, derive an authenticated-encryption
envelope, exchange a few chat messages, rotate the key when membership changes
and demonstrate that a departed member can no longer read new traffic.

Run with:  python examples/secure_group_messaging.py
"""

from __future__ import annotations

from repro import GroupSession, Identity, SystemSetup
from repro.exceptions import DecryptionError
from repro.mathutils.rand import DeterministicRNG


def main() -> None:
    setup = SystemSetup.from_param_sets("small-512", "gq-512")
    alice, bob, carol, dave = (Identity(n) for n in ("alice", "bob", "carol", "dave"))
    session = GroupSession.establish(setup, [alice, bob, carol, dave], seed=42)
    rng = DeterministicRNG("chat-nonces")

    # --- everyone encrypts under the group key ------------------------------
    envelope = session.envelope()
    sealed = envelope.seal(b"meeting at noon, channel 7", alice.to_bytes(), rng)
    print(f"alice -> group : {len(sealed.ciphertext)} ciphertext bytes, {sealed.wire_bits} bits on air")
    for reader in (bob, carol, dave):
        plaintext = envelope.open(sealed, alice.to_bytes())
        print(f"  {reader.name:6s} reads: {plaintext.decode()}")

    # --- dave leaves; the group re-keys with the Leave protocol -------------
    old_envelope = envelope
    session.leave(dave)
    new_envelope = session.envelope()
    print(f"\ndave left -> group re-keyed ({len(session.members)} members). All agree: {session.all_agree()}")

    sealed2 = new_envelope.seal(b"dave is gone, rotate to channel 9", bob.to_bytes(), rng)
    print(f"bob -> group   : {sealed2.wire_bits} bits on air")
    print(f"  carol reads: {new_envelope.open(sealed2, bob.to_bytes()).decode()}")

    # Dave still holds the *old* key; it must not decrypt the new traffic.
    try:
        old_envelope.open(sealed2, bob.to_bytes())
        raise SystemExit("SECURITY FAILURE: departed member decrypted new traffic")
    except DecryptionError:
        print("  dave (departed) cannot decrypt the new traffic — key independence holds")

    # --- a newcomer joins and can read traffic from now on ------------------
    erin = Identity("erin")
    session.join(erin)
    freshest = session.envelope()
    sealed3 = freshest.seal(b"welcome erin", carol.to_bytes(), rng)
    print(f"\nerin joined -> group re-keyed ({len(session.members)} members)")
    print(f"  erin reads: {freshest.open(sealed3, carol.to_bytes()).decode()}")
    # ...but not the pre-join message (backward secrecy at the application layer).
    try:
        freshest.open(sealed, alice.to_bytes())
        raise SystemExit("SECURITY FAILURE: new key decrypted old traffic")
    except DecryptionError:
        print("  erin cannot decrypt traffic sent before the join")


if __name__ == "__main__":
    main()
