#!/usr/bin/env python3
"""Fleet demo: a campaign served to local socket workers, streamed live.

Where ``examples/campaign_sweep.py`` shards cells over a process pool,
this demo runs the same kind of grid through :mod:`repro.fleet`: a
controller owns the cell queue and forked workers connect to it over TCP,
streaming result rows back one at a time.  What the fleet adds:

* **live progress** — the controller knows exactly what is done, cached,
  in flight and pending, and estimates the finish time (printed below as
  the campaign runs);
* **fault tolerance** — a worker that dies mid-cell is detected (EOF or
  heartbeat silence) and its cell is requeued to a healthy worker;
* **the same determinism** — the assembled result is bit-identical to
  ``run_campaign(workers=1)``, asserted at the end.

The multi-machine version is the same architecture with real hosts::

    python -m repro.fleet controller --spec campaign.json --port 7600
    python -m repro.fleet worker --connect controller-host:7600   # per box

Run with:  PYTHONPATH=src python examples/fleet_campaign.py
"""

from __future__ import annotations

import os

from repro.campaign import CampaignSpec, plan_campaign, run_campaign
from repro.fleet import run_fleet_campaign

SPEC = CampaignSpec(
    name="fleet-demo",
    protocols=("proposed-gka", "bd-unauthenticated", "ssn"),
    group_sizes=(8,),
    losses=(0.0, 0.1),
    schedule={"kind": "poisson", "length": 6, "join_rate": 2.0, "leave_rate": 2.0},
    adversaries={"none": None, "inject": "inject"},
    seed="fleet-demo",
)


def main() -> None:
    workers = int(os.environ.get("FLEET_WORKERS", 0)) or min(os.cpu_count() or 1, 4)

    # The pre-flight plan: what the controller will queue (and what a cache
    # would already cover — same report as `python -m repro.campaign --dry-run`).
    print(plan_campaign(SPEC).describe())
    print()

    # Stream one progress line per completed cell while the fleet runs.
    seen = [0]

    def stream(snapshot) -> None:
        if snapshot.done > seen[0]:
            seen[0] = snapshot.done
            print(f"  {snapshot.render()}")

    print(f"serving {len(SPEC.cells())} cells to {workers} local socket worker(s):")
    result = run_fleet_campaign(SPEC, workers=workers, on_progress=stream)
    print()
    print(result.summary())

    print()
    print(result.pivot_table("protocol", "loss", "energy_j"))
    print()
    print(result.pivot_table("protocol", "adversary", "messages"))

    # Security straight off the grid: the proposed protocol detects the
    # injected-share attack; unauthenticated BD silently breaks under it.
    verdicts = {
        (row["protocol"], row["adversary"]): row["security_verdict"]
        for row in result.ok_rows()
    }
    assert verdicts[("proposed-gka", "inject")] == "detected"
    assert verdicts[("bd-unauthenticated", "inject")] == "broken"
    print()
    print("security : proposed-gka detects injection; bd-unauthenticated breaks")

    # The fleet's reason to exist is that this assert can never fire: the
    # socket boundary changes how fast rows arrive, never what they contain.
    serial = run_campaign(SPEC, workers=1)
    assert result.deterministic_rows() == serial.deterministic_rows()
    print()
    print(f"determinism: fleet result bit-identical to a serial run "
          f"across {len(result.rows)} cells")


if __name__ == "__main__":
    main()
