#!/usr/bin/env python3
"""Hierarchical GKA demo: the flat-vs-cluster crossover, as a campaign grid.

A hierarchy is not free — establishing ``cluster-tree[bd]`` costs the same
sub-protocol runs over every member *plus* the inter-cluster key tree.  Its
payoff is rekeying: a membership event re-runs one ~sqrt(n)-member cluster
and refreshes the O(log n) dirty tree path instead of re-running the whole
group.  So under churn there is a crossover group size above which the
hierarchical variants move less traffic than their flat counterparts — this
sweep locates it mechanically.

The grid drives the flat protocols (``bd-unauthenticated``, ``proposed-gka``)
and their hierarchical wrappers (``cluster-tree[bd]``, ``cluster-tree[gka]``)
through the same Poisson churn scenario across group sizes, sharded over
worker processes with per-cell seeds, and pivots total on-air traffic by
protocol × size.

Run with:  PYTHONPATH=src python examples/cluster_sweep.py
"""

from __future__ import annotations

import os

from repro.campaign import CampaignSpec, run_campaign

PAIRS = (
    ("bd-unauthenticated", "cluster-tree[bd]"),
    ("proposed-gka", "cluster-tree[gka]"),
)

SPEC = CampaignSpec(
    name="cluster-crossover",
    protocols=tuple(name for pair in PAIRS for name in pair),
    group_sizes=(8, 16, 32, 64),
    losses=(0.0,),
    schedule={"kind": "poisson", "length": 8, "join_rate": 2.0, "leave_rate": 2.0},
    seed="cluster-crossover",
)


def main() -> None:
    workers = int(os.environ.get("CAMPAIGN_WORKERS", 0)) or (os.cpu_count() or 1)
    out_dir = os.environ.get("CLUSTER_SWEEP_OUT") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "out"
    )
    os.makedirs(out_dir, exist_ok=True)

    print(f"grid: {len(SPEC.cells())} cells, {workers} worker(s)")
    result = run_campaign(SPEC, workers=workers)
    print(result.summary())
    print()
    print(result.pivot_table("protocol", "group_size", "bits"))
    print()
    print(result.pivot_table("protocol", "group_size", "messages"))

    csv_path = os.path.join(out_dir, "cluster_sweep.csv")
    result.to_csv(csv_path)
    print()
    print(f"exported: {csv_path}")

    # Locate each pair's crossover: the smallest size where the hierarchical
    # variant moves less total traffic than its flat counterpart.
    bits = {
        (row["protocol"], row["group_size"]): row["bits"]
        for row in result.ok_rows()
    }
    sizes = sorted(SPEC.group_sizes)
    assert all(row["agreed"] for row in result.ok_rows())
    assert not result.failures()
    for flat, cluster in PAIRS:
        wins = [n for n in sizes if bits[(cluster, n)] < bits[(flat, n)]]
        crossover = wins[0] if wins else None
        print(
            f"{cluster} vs {flat}: crossover at n={crossover} "
            f"(largest-size traffic ratio "
            f"{bits[(flat, sizes[-1])] / bits[(cluster, sizes[-1])]:.1f}x)"
        )
        # The headline claim: by the top of the grid the hierarchy wins.
        assert bits[(cluster, sizes[-1])] < bits[(flat, sizes[-1])]


if __name__ == "__main__":
    main()
