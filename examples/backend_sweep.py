#!/usr/bin/env python3
"""Crypto-backend sweep: the same campaign grid under pure vs native.

Backends are bit-identical — switching to the gmpy2-backed ``native``
backend changes *host wall time only*, never a row's metrics. This sweep
demonstrates both halves of that contract on a small campaign: the engine
axis carries one entry per backend (the ``crypto_backend`` engine-spec key),
so every (protocol, group size) workload runs once under each backend, and
the script then

* asserts the result metrics are identical across the backend legs, and
* prints the per-leg wall times, where the native leg pulls ahead on
  machines with gmpy2 installed (without it, ``native`` degrades to pure
  and the wall times simply match).

Run with:  PYTHONPATH=src python examples/backend_sweep.py
"""

from __future__ import annotations

import os
from collections import defaultdict

from repro.backends import create_backend, native_available
from repro.campaign import CampaignSpec, run_campaign

BACKENDS = ("pure", "native")

SPEC = CampaignSpec(
    name="backend-sweep",
    protocols=("proposed-gka", "bd-dsa", "bd-ecdsa"),
    group_sizes=(6, 10, 14),
    engines=tuple(
        {"latency": "instant", "crypto_backend": name} for name in BACKENDS
    ),
    seed="backend-sweep",
)


def main() -> None:
    if native_available():
        print("native backend: gmpy2 available")
    else:
        print("native backend: gmpy2 NOT installed — it will degrade to pure "
              f"(actually running: {create_backend('native').name})")
    workers = int(os.environ.get("CAMPAIGN_WORKERS", 0)) or 1
    result = run_campaign(SPEC, workers=workers)
    print(result.summary())
    assert not result.failures()

    # Group each workload's rows by backend leg and compare.
    by_leg = defaultdict(dict)  # (protocol, group_size) -> engine label -> row
    walls = defaultdict(float)  # engine label -> summed wall seconds
    for row in result.rows:
        by_leg[(row["protocol"], row["group_size"])][row["engine"]] = row
        walls[row["engine"]] += row["wall_seconds"]

    compared = ("energy_j", "messages", "bits", "key_fingerprint", "final_size")
    for workload, legs in sorted(by_leg.items()):
        rows = list(legs.values())
        for metric in compared:
            values = {row[metric] for row in rows}
            assert len(values) == 1, f"{workload} {metric} differs across backends: {values}"
    print(f"\nbit-identical across backends: {len(by_leg)} workloads × "
          f"{len(compared)} metrics checked")

    print(f"\n{'engine leg':<40} {'wall s':>8}")
    for label, wall in sorted(walls.items()):
        print(f"{label:<40} {wall:>8.2f}")

    print()
    print(result.pivot_table("protocol", "group_size", "energy_j"))


if __name__ == "__main__":
    main()
