#!/usr/bin/env python3
"""Quickstart: establish a secure group, handle membership changes, read the
energy bill.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DeviceProfile, GroupSession, Identity, SystemSetup, WLAN_SPECTRUM24


def main() -> None:
    # 1. System setup — the PKG generates the GQ parameters and the Schnorr
    #    group exactly as the paper's Setup describes (1024-bit p, 160-bit q,
    #    1024-bit GQ modulus).  Named parameter sets are deterministic, so the
    #    run is reproducible.
    setup = SystemSetup.from_param_sets("ipps2006-1024", "gq-1024")
    print("System parameters:", setup.describe())

    # 2. Initial group key agreement among eight wireless nodes.
    members = [Identity(f"node-{i:02d}") for i in range(8)]
    device = DeviceProfile(transceiver=WLAN_SPECTRUM24)
    session = GroupSession.establish(setup, members, device=device, seed=2006)
    assert session.all_agree()
    print(f"\nEstablished a group of {len(session.members)} nodes.")
    print(f"Group key (truncated): {hex(session.group_key)[:34]}...")
    print(f"Derived AES key:       {session.symmetric_key().hex()}")

    # 3. Dynamic membership: a node joins, another leaves.
    session.join(Identity("latecomer"))
    print(f"\nAfter join:  {len(session.members)} members, key changed, all agree: {session.all_agree()}")
    session.leave(members[3])
    print(f"After leave: {len(session.members)} members, all agree: {session.all_agree()}")

    # 4. Energy accounting per node (StrongARM + Spectrum24 WLAN card).
    print("\nPer-node energy so far (J):")
    report = session.energy_report()
    for name in sorted(report):
        breakdown = report[name]
        print(
            f"  {name:10s} total={breakdown.total_j:8.4f}"
            f"  compute={breakdown.computation_j:8.4f}"
            f"  tx={breakdown.tx_j:8.5f}  rx={breakdown.rx_j:8.5f}"
        )


if __name__ == "__main__":
    main()
