#!/usr/bin/env python3
"""Campaign demo: a protocol × loss × group-size grid, sharded and cached.

This replaces the hand-rolled serial loops the earlier sweep examples used:
declare the axes once, let :func:`repro.campaign.run_campaign` expand them
into seeded cells and shard the cells over worker processes, then slice the
long-form rows with the pivot helpers.  Three properties make this the
production path:

* **speed** — cells run ``CAMPAIGN_WORKERS`` at a time (default: all cores);
* **determinism** — each cell's seed derives from the master seed + cell key,
  so the parallel rows are bit-identical to a serial run (asserted below);
* **resumability** — with ``CAMPAIGN_CACHE`` set, re-running an edited spec
  recomputes only the changed cells.

Run with:  PYTHONPATH=src python examples/campaign_sweep.py
"""

from __future__ import annotations

import os

from repro.campaign import CampaignSpec, run_campaign

SPEC = CampaignSpec(
    name="campaign-demo",
    protocols=("proposed-gka", "bd-unauthenticated", "bd-ecdsa", "ssn"),
    group_sizes=(8, 12),
    losses=(0.0, 0.1, 0.2),
    schedule={"kind": "poisson", "length": 8, "join_rate": 2.0, "leave_rate": 2.0},
    adversaries={"none": None, "inject": "inject"},
    seed="campaign-demo",
)


def main() -> None:
    workers = int(os.environ.get("CAMPAIGN_WORKERS", 0)) or (os.cpu_count() or 1)
    cache_dir = os.environ.get("CAMPAIGN_CACHE")
    out_dir = os.environ.get("CAMPAIGN_SWEEP_OUT") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "out"
    )
    os.makedirs(out_dir, exist_ok=True)

    print(f"grid: {len(SPEC.cells())} cells, {workers} worker(s)")
    result = run_campaign(SPEC, workers=workers, cache_dir=cache_dir)
    print(result.summary())

    print()
    print(result.pivot_table("protocol", "loss", "energy_j"))
    print()
    print(result.pivot_table("protocol", "group_size", "messages"))

    csv_path = os.path.join(out_dir, "campaign_demo.csv")
    json_path = os.path.join(out_dir, "campaign_demo.json")
    result.to_csv(csv_path)
    result.to_json(json_path)
    print()
    print(f"exported: {csv_path}, {json_path}")

    # The determinism contract, demonstrated: a serial re-run of the same
    # spec produces bit-identical rows (host wall time aside).
    serial = run_campaign(SPEC, workers=1, cache_dir=None)
    assert serial.deterministic_rows() == result.deterministic_rows()
    print(f"determinism: serial re-run bit-identical across {len(result.rows)} cells")

    # Headline numbers straight off the grid: under injection the proposed
    # protocol detects and aborts while unauthenticated BD silently breaks.
    verdicts = {
        (row["protocol"], row["adversary"]): row["security_verdict"]
        for row in result.ok_rows()
    }
    assert verdicts[("proposed-gka", "inject")] == "detected"
    assert verdicts[("bd-unauthenticated", "inject")] == "broken"
    print("security : proposed-gka detects injection; bd-unauthenticated breaks")


if __name__ == "__main__":
    main()
