#!/usr/bin/env python3
"""Scenario engine demo: the same churn workload under every protocol.

The paper's comparison is "proposed vs baselines under dynamic membership".
This example declares three scenarios — steady Poisson churn, bursty
partitions on a lossy medium, and a steady trickle of merging sub-groups —
and drives each through the proposed protocol and two baselines selected *by
registry name*, then prints side-by-side energy/message reports.

Each comparison is also exported in machine-readable form: one CSV of
cross-protocol totals per scenario plus a JSON drill-down of the proposed
protocol's per-event records (set ``SCENARIO_SWEEP_OUT`` to choose the
output directory).

Run with:  PYTHONPATH=src python examples/scenario_sweep.py
"""

from __future__ import annotations

import os

from repro import SystemSetup, available_protocols
from repro.sim import (
    BurstPartitions,
    PeriodicMerges,
    PoissonChurn,
    Scenario,
    ScenarioRunner,
    comparison_csv,
    comparison_table,
)

#: Registry names — no protocol class is imported anywhere in this script.
PROTOCOLS = ["proposed", "bd", "ssn"]

SCENARIOS = [
    Scenario(
        name="steady-churn",
        initial_size=12,
        schedule=PoissonChurn(length=15, join_rate=3.0, leave_rate=3.0),
        seed="sweep-a",
    ),
    Scenario(
        name="bursty-lossy",
        initial_size=12,
        schedule=BurstPartitions(bursts=3, burst_size=3, period=30.0),
        seed="sweep-b",
        loss_probability=0.15,
    ),
    Scenario(
        name="merging-swarms",
        initial_size=6,
        schedule=PeriodicMerges(merges=4, merge_size=3, period=60.0),
        seed="sweep-c",
    ),
]


def main() -> None:
    setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
    print("Registered protocols:", ", ".join(available_protocols()))
    runner = ScenarioRunner(setup)
    out_dir = os.environ.get("SCENARIO_SWEEP_OUT", ".")

    for scenario in SCENARIOS:
        reports = runner.run_all(list(PROTOCOLS), scenario)
        print()
        print(comparison_table(reports))
        csv_path = os.path.join(out_dir, f"{scenario.name}.csv")
        comparison_csv(reports, csv_path)
        json_path = os.path.join(out_dir, f"{scenario.name}_proposed.json")
        reports[0].to_json(json_path)
        print(f"exported: {csv_path}, {json_path}")

    # Drill into one report: per-kind averages for the proposed protocol
    # under steady churn (the shape of the paper's Table 5, per event kind).
    report = runner.run("proposed", SCENARIOS[0])
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
