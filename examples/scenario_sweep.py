#!/usr/bin/env python3
"""Scenario sweeps as campaigns: three churn workloads, one worker pool.

The paper's comparison is "proposed vs baselines under dynamic membership".
The original version of this example drove each scenario through each
protocol in a hand-rolled serial loop; it is now three
:class:`~repro.campaign.CampaignSpec` declarations — steady Poisson churn,
bursty partitions on a lossy medium, and a steady trickle of merging
sub-groups — executed by the sharded campaign runner.  Same numbers (each
cell is the same ``ScenarioRunner`` run), arbitrarily many cores.

Each campaign's long-form rows are exported as CSV/JSON (set
``SCENARIO_SWEEP_OUT`` to choose the output directory) and the side-by-side
energy/message comparison is printed from the row aggregation.

Run with:  PYTHONPATH=src python examples/scenario_sweep.py
"""

from __future__ import annotations

import os

from repro import available_protocols
from repro.campaign import CampaignSpec, run_campaign

#: Registry names — no protocol class is imported anywhere in this script.
PROTOCOLS = ("proposed-gka", "bd-unauthenticated", "ssn")

CAMPAIGNS = [
    CampaignSpec(
        name="steady-churn",
        protocols=PROTOCOLS,
        group_sizes=(12,),
        schedule={"kind": "poisson", "length": 15, "join_rate": 3.0, "leave_rate": 3.0},
        seed="sweep-a",
    ),
    CampaignSpec(
        name="bursty-lossy",
        protocols=PROTOCOLS,
        group_sizes=(12,),
        losses=(0.15,),
        schedule={"kind": "bursts", "bursts": 3, "burst_size": 3, "period": 30.0},
        seed="sweep-b",
    ),
    CampaignSpec(
        name="merging-swarms",
        protocols=PROTOCOLS,
        group_sizes=(6,),
        schedule={"kind": "merges", "merges": 4, "merge_size": 3, "period": 60.0},
        seed="sweep-c",
    ),
]

COLUMNS = ("energy_j", "messages", "bits", "bits_with_retries", "agreed")


def main() -> None:
    print("Registered protocols:", ", ".join(available_protocols()))
    workers = int(os.environ.get("CAMPAIGN_WORKERS", 0)) or (os.cpu_count() or 1)
    out_dir = os.environ.get("SCENARIO_SWEEP_OUT") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "out"
    )
    os.makedirs(out_dir, exist_ok=True)

    for spec in CAMPAIGNS:
        result = run_campaign(spec, workers=workers)
        assert result.failures() == []
        print()
        print(f"campaign: {spec.name} ({len(result.rows)} cells, {workers} workers)")
        header = f"{'protocol':<20}" + "".join(f"{c:>18}" for c in COLUMNS)
        print(header)
        print("-" * len(header))
        for row in result.rows:
            line = f"{row['protocol']:<20}"
            for column in COLUMNS:
                value = row[column]
                line += f"{value:>18.6f}" if isinstance(value, float) else f"{value!s:>18}"
            print(line)

        csv_path = os.path.join(out_dir, f"{spec.name}.csv")
        result.to_csv(csv_path)
        json_path = os.path.join(out_dir, f"{spec.name}.json")
        result.to_json(json_path)
        print(f"exported: {csv_path}, {json_path}")

    # Drill into one cell the way the old serial loop drilled into one
    # report: per-kind cost shape for the proposed protocol under steady
    # churn (the shape of the paper's Table 5) via the scenario engine.
    from repro import SystemSetup
    from repro.sim import ScenarioRunner
    from repro.sim.specio import build_scenario

    setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
    cell = CAMPAIGNS[0].cells()[0]  # proposed-gka under steady-churn
    report = ScenarioRunner(setup).run(
        cell.axes["protocol"], build_scenario(dict(cell.payload["scenario"]))
    )
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
