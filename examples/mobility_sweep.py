#!/usr/bin/env python3
"""Mobility sweep: emergent churn and relay cost vs transmit range.

The paper's MANET story made physical: 20 nodes do a random-waypoint walk
over a 500x500 m field.  Radio links derive from distance, broadcasts are
relayed hop by hop (each relay charged real transmit/receive energy), and
partitions/merges are *emitted by the connectivity monitor* as the topology
changes — no hand-written churn schedule anywhere in this file.

The sweep varies the transmit range: short ranges mean deeper floods (more
relay energy) and more frequent partitions; long ranges approach the
single-hop degenerate case.  For each range the proposed protocol and two
baselines run the identical emergent event stream, and the comparison is
printed and exported to CSV/JSON.

Run with:  PYTHONPATH=src python examples/mobility_sweep.py
"""

from __future__ import annotations

import os

from repro import SystemSetup
from repro.mobility import Area, MobilityConfig, RandomWaypoint
from repro.sim import Scenario, ScenarioRunner, comparison_csv, comparison_table

PROTOCOLS = ["proposed", "bd", "ssn"]
TX_RANGES = [140.0, 180.0, 240.0]
SEED = "mobility-sweep"


def sweep_scenario(tx_range: float) -> Scenario:
    return Scenario(
        name=f"rwp-range-{tx_range:g}",
        initial_size=20,
        mobility=MobilityConfig(
            model=RandomWaypoint(min_speed=2.0, max_speed=10.0),
            area=Area(500.0, 500.0),
            tx_range=tx_range,
            duration=120.0,
            tick=2.0,
            edge_loss=0.1,
            settle_ticks=2,
        ),
        seed=SEED,
    )


def main() -> None:
    setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
    runner = ScenarioRunner(setup)
    out_dir = os.environ.get("MOBILITY_SWEEP_OUT", ".")

    for tx_range in TX_RANGES:
        scenario = sweep_scenario(tx_range)
        events = scenario.build_events()
        kinds = [event.kind for event in events]
        print()
        print(
            f"range {tx_range:g}m: initial group {len(scenario.initial_members())}"
            f"/{scenario.initial_size}, emergent events: "
            + (", ".join(kinds) if kinds else "none")
        )
        reports = runner.run_all(list(PROTOCOLS), scenario)
        print(comparison_table(reports))

        csv_path = os.path.join(out_dir, f"mobility_range_{tx_range:g}.csv")
        comparison_csv(reports, csv_path)
        json_path = os.path.join(out_dir, f"mobility_range_{tx_range:g}_proposed.json")
        reports[0].to_json(json_path)
        print(f"exported: {csv_path}, {json_path}")


if __name__ == "__main__":
    main()
