#!/usr/bin/env python3
"""Mobility sweep as a campaign: emergent churn and relay cost vs tx range.

The paper's MANET story made physical: 20 nodes do a random-waypoint walk
over a 500x500 m field.  Radio links derive from distance, broadcasts are
relayed hop by hop (each relay charged real transmit/receive energy), and
partitions/merges are *emitted by the connectivity monitor* as the topology
changes — no hand-written churn schedule anywhere in this file.

The sweep varies the transmit range as a named mobility axis: short ranges
mean deeper floods (more relay energy) and more frequent partitions; long
ranges approach the single-hop degenerate case.  The campaign runner shards
the protocol × range grid over worker processes; for each range every
protocol still runs the identical emergent event stream (same named seed per
scenario), so the pivot below is the old side-by-side comparison at pool
speed.

Run with:  PYTHONPATH=src python examples/mobility_sweep.py
"""

from __future__ import annotations

import os

from repro.campaign import CampaignSpec, run_campaign

PROTOCOLS = ("proposed-gka", "bd-unauthenticated", "ssn")
TX_RANGES = (140.0, 180.0, 240.0)
SEED = "mobility-sweep"


def mobility_spec(tx_range: float) -> dict:
    return {
        "model": "random-waypoint",
        "min_speed": 2.0,
        "max_speed": 10.0,
        "area": [500.0, 500.0],
        "tx_range": tx_range,
        "duration": 120.0,
        "tick": 2.0,
        "edge_loss": 0.1,
        "settle_ticks": 2,
    }


SPEC = CampaignSpec(
    name="mobility-sweep",
    protocols=PROTOCOLS,
    group_sizes=(20,),
    mobilities={f"range-{r:g}m": mobility_spec(r) for r in TX_RANGES},
    seed=SEED,
)


def main() -> None:
    workers = int(os.environ.get("CAMPAIGN_WORKERS", 0)) or (os.cpu_count() or 1)
    out_dir = os.environ.get("MOBILITY_SWEEP_OUT") or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "out"
    )
    os.makedirs(out_dir, exist_ok=True)

    result = run_campaign(SPEC, workers=workers)
    assert result.failures() == []
    print(result.summary())
    print()
    print(result.pivot_table("protocol", "mobility", "energy_j"))
    print()
    print(result.pivot_table("protocol", "mobility", "relay_energy_j"))
    print()
    print(result.pivot_table("protocol", "mobility", "mean_hops", fmt="{:.2f}"))

    csv_path = os.path.join(out_dir, "mobility_sweep.csv")
    json_path = os.path.join(out_dir, "mobility_sweep.json")
    result.to_csv(csv_path)
    result.to_json(json_path)
    print()
    print(f"exported: {csv_path}, {json_path}")

    # Physics sanity straight off the rows: shrinking the radio range can
    # only deepen the floods, never flatten them.
    hops = result.pivot("protocol", "mobility", "mean_hops")
    for protocol in PROTOCOLS:
        assert hops[protocol]["range-140m"] >= hops[protocol]["range-240m"]


if __name__ == "__main__":
    main()
