#!/usr/bin/env python3
"""Reproduce the paper's comparison from the command line.

Prints Table 1 (complexity), the Figure 1 energy curves (CSV + ASCII chart)
and Table 5 (dynamic-protocol energy), then runs all five initial-GKA
protocols on a small simulated network to show that the measured per-node
energy ordering matches the closed-form model.

Run with:  python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro import DeviceProfile, Identity, SystemSetup, WLAN_SPECTRUM24
from repro.analysis import (
    TABLE1_METRICS,
    PAPER_TABLE5_J,
    dynamic_energy_table,
    figure1_report,
    format_table,
    table1_complexity,
)
from repro.baselines import AuthenticatedBDProtocol, SSNProtocol
from repro.core import ProposedGKAProtocol


def print_table1(n: int = 100) -> None:
    table = table1_complexity(n)
    rows = [[protocol] + [table[protocol][metric] for metric in TABLE1_METRICS] for protocol in table]
    print(format_table(["protocol"] + list(TABLE1_METRICS), rows, title=f"Table 1 (n = {n})"))
    print()


def print_figure1() -> None:
    print(figure1_report())
    print()


def print_table5() -> None:
    ours = dynamic_energy_table()
    rows = [
        [*key, ours[key], PAPER_TABLE5_J[key]]
        for key in PAPER_TABLE5_J
    ]
    print(
        format_table(
            ["protocol", "event", "role", "ours (J)", "paper (J)"],
            rows,
            title="Table 5 — dynamic protocols (n=100, m=20, ld=20, WLAN)",
        )
    )
    print()


def simulate_initial_protocols(n: int = 6) -> None:
    setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
    device = DeviceProfile(transceiver=WLAN_SPECTRUM24)
    members = [Identity(f"cmp-{i}") for i in range(n)]
    protocols = {
        "proposed": ProposedGKAProtocol(setup),
        "bd-ecdsa": AuthenticatedBDProtocol(setup, "ecdsa"),
        "bd-dsa": AuthenticatedBDProtocol(setup, "dsa"),
        "bd-sok": AuthenticatedBDProtocol(setup, "sok"),
        "ssn": SSNProtocol(setup),
    }
    rows = []
    for name, protocol in protocols.items():
        result = protocol.run(members, seed=7)
        assert result.all_agree()
        worst = max(device.total_j(rec) for rec in result.state.recorders().values())
        rows.append([name, worst, result.total_messages()])
    rows.sort(key=lambda row: row[1])
    print(
        format_table(
            ["protocol", "max per-node energy (J)", "messages"],
            rows,
            title=f"Simulated initial GKA on {n} nodes (test-sized parameters, WLAN)",
        )
    )
    assert rows[0][0] == "proposed", "the proposed protocol should be the cheapest"


def main() -> None:
    print_table1()
    print_figure1()
    print_table5()
    simulate_initial_protocols()


if __name__ == "__main__":
    main()
