"""Latency × loss as a campaign grid across three protocols on the kernel.

The paper's energy tables say nothing about *how long* key agreement takes on
a MANET radio; the reactive engine makes that observable.  This sweep is the
campaign runner's natural shape: link latency is the ``engines`` axis
(``fixed:<seconds>`` profiles), loss is the ``losses`` axis, and every
(protocol, latency, loss) cell runs the same churn scenario on the
virtual-time kernel — sharded over worker processes instead of the old
triple-nested serial loop.  The pivot shows how the proposed scheme's
constant round count keeps its completion time flat while re-running
baselines pay rounds × delay on every membership event.

Run with::

    PYTHONPATH=src python examples/latency_sweep.py

Set ``LATENCY_SWEEP_OUT=/some/dir`` to also write the grid as CSV.
"""

from __future__ import annotations

import os

from repro.campaign import CampaignSpec, run_campaign

PROTOCOLS = ("proposed-gka", "bd-unauthenticated", "ssn")
LATENCIES_S = (0.005, 0.02, 0.05)
LOSSES = (0.0, 0.1, 0.2)

SPEC = CampaignSpec(
    name="latency-sweep",
    protocols=PROTOCOLS,
    group_sizes=(8,),
    losses=LOSSES,
    schedule={"kind": "poisson", "length": 6, "join_rate": 2.0, "leave_rate": 2.0},
    engines=tuple(
        {"latency": f"fixed:{delay:g}", "round_timeout_s": 1.0} for delay in LATENCIES_S
    ),
    seed="latency-sweep",
)


def main() -> None:
    workers = int(os.environ.get("CAMPAIGN_WORKERS", 0)) or (os.cpu_count() or 1)
    result = run_campaign(SPEC, workers=workers)
    assert result.failures() == []
    print(result.summary())
    print()
    print(result.pivot_table("protocol", "engine", "sim_latency_s", fmt="{:.3f}"))
    print()
    print(result.pivot_table("protocol", "loss", "timeouts", fmt="{:.1f}"))
    print()
    print(result.pivot_table("protocol", "loss", "energy_j"))

    out_dir = os.environ.get("LATENCY_SWEEP_OUT")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "latency_sweep.csv")
        result.to_csv(path)
        print(f"\nwrote {path}")

    # Headline: at the slowest lossy grid point the proposed protocol's
    # dedicated dynamic sub-protocols finish far sooner in virtual time than
    # the baselines' full re-executions.
    slowest_engine = SPEC.engine_label(SPEC.engines[-1])
    worst = [
        row
        for row in result.rows
        if row["engine"] == slowest_engine and row["loss"] == max(LOSSES)
    ]
    proposed = next(row for row in worst if row["protocol"] == "proposed-gka")
    slowest = max(worst, key=lambda row: row["sim_latency_s"])
    print(
        f"\nAt {max(LATENCIES_S) * 1000:g} ms/hop and {max(LOSSES):.0%} loss: "
        f"proposed completes the scenario in {proposed['sim_latency_s']:.3f} virtual s "
        f"vs {slowest['sim_latency_s']:.3f} s for {slowest['protocol']}."
    )


if __name__ == "__main__":
    main()
