"""Sweep link latency × loss across three protocols on the event kernel.

The paper's energy tables say nothing about *how long* key agreement takes on
a MANET radio; the reactive engine makes that observable.  This example runs
the proposed ID-based GKA, plain BD and SSN through the same churn scenario
at every (link latency, loss probability) grid point and prints the virtual
completion time (``sim_latency_s``), the round timeouts fired while losses
were recovered, and the group energy — showing how the proposed scheme's
constant round count keeps its latency flat while re-running baselines pay
rounds × delay on every membership event.

Run with::

    PYTHONPATH=src python examples/latency_sweep.py

Set ``LATENCY_SWEEP_OUT=/some/dir`` to also write the grid as CSV.
"""

from __future__ import annotations

import csv
import os
from typing import List

from repro import EngineConfig, FixedLatency, SystemSetup
from repro.sim import PoissonChurn, Scenario, ScenarioRunner

PROTOCOLS = ("proposed", "bd", "ssn")
LATENCIES_S = (0.005, 0.02, 0.05)
LOSSES = (0.0, 0.1, 0.2)


def build_scenario(loss: float) -> Scenario:
    return Scenario(
        name=f"latency-sweep-loss{loss:g}",
        initial_size=8,
        schedule=PoissonChurn(length=6, join_rate=2.0, leave_rate=2.0),
        loss_probability=loss,
        seed="latency-sweep",
    )


def main() -> None:
    setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
    rows: List[dict] = []
    header = (
        f"{'latency s/hop':>13} {'loss':>5} {'protocol':<18} "
        f"{'sim s':>8} {'timeouts':>8} {'energy J':>10} {'msgs':>6}"
    )
    print(header)
    print("-" * len(header))
    for loss in LOSSES:
        scenario = build_scenario(loss)
        for delay in LATENCIES_S:
            runner = ScenarioRunner(
                setup,
                engine=EngineConfig(latency=FixedLatency(delay), round_timeout_s=1.0),
            )
            for protocol in PROTOCOLS:
                report = runner.run(protocol, scenario)
                rows.append(
                    {
                        "latency_s": delay,
                        "loss": loss,
                        "protocol": report.protocol,
                        "sim_latency_s": report.total_sim_latency_s,
                        "timeouts": report.total_timeouts,
                        "energy_j": report.total_energy_j,
                        "messages": report.total_messages,
                    }
                )
                print(
                    f"{delay:>13g} {loss:>5g} {report.protocol:<18} "
                    f"{report.total_sim_latency_s:>8.3f} {report.total_timeouts:>8} "
                    f"{report.total_energy_j:>10.4f} {report.total_messages:>6}"
                )
    out_dir = os.environ.get("LATENCY_SWEEP_OUT")
    if out_dir:
        path = os.path.join(out_dir, "latency_sweep.csv")
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        print(f"\nwrote {path}")

    # Headline: at the slowest lossy grid point the proposed protocol's
    # dedicated dynamic sub-protocols finish far sooner in virtual time than
    # the baselines' full re-executions.
    worst = [r for r in rows if r["latency_s"] == max(LATENCIES_S) and r["loss"] == max(LOSSES)]
    proposed = next(r for r in worst if r["protocol"] == "proposed-gka")
    slowest = max(worst, key=lambda r: r["sim_latency_s"])
    print(
        f"\nAt {max(LATENCIES_S) * 1000:g} ms/hop and {max(LOSSES):.0%} loss: "
        f"proposed completes the scenario in {proposed['sim_latency_s']:.3f} virtual s "
        f"vs {slowest['sim_latency_s']:.3f} s for {slowest['protocol']}."
    )


if __name__ == "__main__":
    main()
