"""Private Key Generators (PKGs) for the two ID-based schemes.

In ID-based cryptography the PKG plays the role a CA plays in certificate
systems: it holds a master secret and derives each user's private key from
their identity.  The paper uses two ID-based schemes:

* the GQ variant (the proposed protocol's signature) — master key is the RSA
  trapdoor ``(p', q', d)``; a user's key is ``S_ID = H(ID)^d mod n``;
* SOK (the pairing baseline) — master key is a scalar ``s``; a user's key is
  ``D_ID = s·H1(ID)``.

Both PKGs enforce that extraction only happens for identities present in an
:class:`~repro.pki.identity.IdentityRegistry` (the paper's "The PKG verifies
the given user identity ID").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..exceptions import ParameterError
from ..groups.pairing import SimulatedPairingGroup
from ..groups.params import PAPER_GQ_SET, get_gq_modulus
from ..groups.schnorr import SchnorrGroup
from ..hashing.hashfuncs import HashFunction
from ..mathutils.modular import crt
from ..mathutils.primes import RSAModulus
from ..mathutils.rand import DeterministicRNG
from ..signatures.gq import GQParameters, GQPrivateKey
from ..signatures.sok import SOKMasterKey, SOKPrivateKey, SOKSignatureScheme
from .identity import Identity, IdentityRegistry

__all__ = ["PrivateKeyGenerator", "SOKPrivateKeyGenerator"]


class PrivateKeyGenerator:
    """The GQ PKG: holds the master trapdoor and extracts ``S_ID`` values.

    Parameters
    ----------
    modulus:
        The RSA-style modulus with its factorisation and exponents (the
        master key material ``(p', q', d)`` plus public ``(n, e)``).
    hash_function:
        The system hash ``H``; its output length is the security parameter
        ``l`` (160 bits for the paper's setup).
    registry:
        Identity registry consulted before every extraction.
    """

    def __init__(
        self,
        modulus: Optional[RSAModulus] = None,
        hash_function: Optional[HashFunction] = None,
        registry: Optional[IdentityRegistry] = None,
        *,
        param_set: str = PAPER_GQ_SET,
    ) -> None:
        self._modulus = modulus or get_gq_modulus(param_set)
        self._hash = hash_function or HashFunction(output_bits=160)
        self.registry = registry or IdentityRegistry()
        self._issued: Dict[str, GQPrivateKey] = {}

    # ------------------------------------------------------------ public API
    @property
    def params(self) -> GQParameters:
        """The public parameters ``(n, e, H)`` distributed to every user.

        The same object is returned on every access so that its memoised
        ``H(ID)`` values survive across protocol runs.
        """
        cached = getattr(self, "_params", None)
        if cached is None:
            cached = GQParameters(n=self._modulus.n, e=self._modulus.e, hash_function=self._hash)
            self._params = cached
        return cached

    def extract(self, identity: Identity) -> GQPrivateKey:
        """Extract ``S_ID = H(ID)^d mod n`` for a registered identity.

        The exponentiation is performed via CRT over the factorisation of
        ``n`` — the PKG knows ``p'`` and ``q'``, so this is both faithful to
        how a real PKG operates and noticeably faster for 1024-bit moduli.
        """
        if identity not in self.registry:
            raise ParameterError(
                f"identity {identity.name!r} is not registered with the PKG; register it first"
            )
        cached = self._issued.get(identity.name)
        if cached is not None:
            return cached
        n, d = self._modulus.n, self._modulus.d
        p, q = self._modulus.p, self._modulus.q
        hid = self._hash.identity_to_zn(identity.to_bytes(), n)
        secret_p = pow(hid % p, d % (p - 1), p)
        secret_q = pow(hid % q, d % (q - 1), q)
        secret = crt([secret_p, secret_q], [p, q])
        key = GQPrivateKey(identity=identity.to_bytes(), secret=secret)
        self._issued[identity.name] = key
        return key

    def register_and_extract(self, identity: Identity) -> GQPrivateKey:
        """Convenience: register the identity then extract its key."""
        self.registry.register(identity)
        return self.extract(identity)

    @property
    def issued_count(self) -> int:
        """Number of distinct identities that have received keys."""
        return len(self._issued)


class SOKPrivateKeyGenerator:
    """The PKG of the SOK pairing-based baseline."""

    def __init__(
        self,
        pairing_group: SimulatedPairingGroup,
        rng: DeterministicRNG,
        registry: Optional[IdentityRegistry] = None,
    ) -> None:
        self.pairing_group = pairing_group
        self.registry = registry or IdentityRegistry()
        self.scheme = SOKSignatureScheme(pairing_group)
        self._master = self.scheme.generate_master_key(rng)
        self._issued: Dict[str, SOKPrivateKey] = {}

    @property
    def master_public(self) -> SOKMasterKey:
        """The master key object; only its ``public`` component should be shared."""
        return self._master

    def extract(self, identity: Identity) -> SOKPrivateKey:
        """Extract ``D_ID = s·H1(ID)`` for a registered identity."""
        if identity not in self.registry:
            raise ParameterError(
                f"identity {identity.name!r} is not registered with the SOK PKG"
            )
        cached = self._issued.get(identity.name)
        if cached is not None:
            return cached
        key = self.scheme.extract(self._master, identity.to_bytes())
        self._issued[identity.name] = key
        return key

    def register_and_extract(self, identity: Identity) -> SOKPrivateKey:
        """Convenience: register the identity then extract its key."""
        self.registry.register(identity)
        return self.extract(identity)
