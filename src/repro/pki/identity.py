"""User identities.

The paper works with "32-bit identities" ``U_i = ID_i``.  :class:`Identity`
keeps both the human-readable name (used by examples and reports) and the
canonical 32-bit wire encoding (used for hashing, signing and message-size
accounting).  An :class:`IdentityRegistry` assigns the 32-bit values
deterministically and guards against collisions — a necessity because every
ID-based public key is literally a hash of the identity bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..exceptions import ParameterError
from ..hashing.sha256 import sha256_digest

__all__ = ["Identity", "IdentityRegistry", "IDENTITY_BITS"]

#: Wire size of an identity, per the paper's Extract step ("the 32-bit identity").
IDENTITY_BITS = 32


@dataclass(frozen=True, order=True)
class Identity:
    """A protocol participant's identity.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"node-07"``.
    value:
        The 32-bit identity value actually hashed and transmitted.  If not
        supplied it is derived deterministically from ``name``.
    """

    name: str
    value: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("identity name must be non-empty")
        if self.value == -1:
            derived = int.from_bytes(sha256_digest(self.name.encode("utf-8"))[:4], "big")
            object.__setattr__(self, "value", derived)
        if not 0 <= self.value < 2**IDENTITY_BITS:
            raise ParameterError("identity value must fit in 32 bits")

    def to_bytes(self) -> bytes:
        """Canonical 4-byte wire encoding (what ``H(ID)`` actually hashes)."""
        return self.value.to_bytes(IDENTITY_BITS // 8, "big")

    @property
    def wire_bits(self) -> int:
        """Size contributed to a message when the identity is transmitted."""
        return IDENTITY_BITS

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Identity({self.name!r}, 0x{self.value:08x})"


class IdentityRegistry:
    """Tracks the identities known to a deployment and prevents collisions.

    The PKG consults the registry during Extract ("The PKG verifies the given
    user identity ID"): extraction is refused for identities that were never
    registered, and registration is refused when the 32-bit value collides
    with a different name.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, Identity] = {}
        self._by_value: Dict[int, Identity] = {}

    def register(self, identity: Identity) -> Identity:
        """Register an identity, returning it for chaining.

        Registering the same identity twice is a no-op; registering a new
        name whose 32-bit value collides with an existing one raises
        :class:`ParameterError`.
        """
        existing = self._by_name.get(identity.name)
        if existing is not None:
            if existing.value != identity.value:
                raise ParameterError(f"identity {identity.name!r} already registered with a different value")
            return existing
        holder = self._by_value.get(identity.value)
        if holder is not None and holder.name != identity.name:
            raise ParameterError(
                f"identity value 0x{identity.value:08x} collides between "
                f"{holder.name!r} and {identity.name!r}"
            )
        self._by_name[identity.name] = identity
        self._by_value[identity.value] = identity
        return identity

    def create(self, name: str) -> Identity:
        """Create-and-register an identity by name."""
        return self.register(Identity(name))

    def create_many(self, count: int, prefix: str = "node") -> List[Identity]:
        """Create ``count`` identities named ``{prefix}-000`` ... (a common need in sweeps)."""
        return [self.create(f"{prefix}-{i:03d}") for i in range(count)]

    def get(self, name: str) -> Identity:
        """Look up a registered identity by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ParameterError(f"unknown identity {name!r}") from None

    def is_registered(self, identity: Identity) -> bool:
        """Whether this exact identity has been registered."""
        return self._by_name.get(identity.name) == identity

    def __contains__(self, identity: Identity) -> bool:
        return self.is_registered(identity)

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[Identity]:
        return iter(self._by_name.values())
