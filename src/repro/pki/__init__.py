"""Identities, ID-based private key generators, and the certificate authority."""

from .ca import Certificate, CertificateAuthority, DSA_CERT_BYTES, ECDSA_CERT_BYTES
from .identity import IDENTITY_BITS, Identity, IdentityRegistry
from .pkg import PrivateKeyGenerator, SOKPrivateKeyGenerator

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "DSA_CERT_BYTES",
    "ECDSA_CERT_BYTES",
    "IDENTITY_BITS",
    "Identity",
    "IdentityRegistry",
    "PrivateKeyGenerator",
    "SOKPrivateKeyGenerator",
]
