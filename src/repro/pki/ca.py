"""Certificate authority and lightweight certificates.

The certificate-based baselines (BD + ECDSA, BD + DSA) require every user to
transmit its certificate and to receive and verify ``n - 1`` certificates from
the other group members (Table 1, rows "Cert Tx/Rx/Ver").  The paper charges
these at fixed wire sizes — a 263-byte DSA certificate and an 86-byte ECDSA
certificate (Table 3) — which correspond to a minimal certificate carrying the
subject identity, the subject public key, a validity field and the CA's
signature.

:class:`Certificate` is exactly that minimal structure; its ``wire_bits`` uses
the paper's fixed sizes when the underlying scheme matches (so the energy
numbers line up) while the actual bytes are still real, verifiable data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..exceptions import ParameterError, VerificationError
from ..groups.elliptic import ECPoint
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import encode_fields, int_to_bytes
from ..signatures.base import Signature
from ..signatures.dsa import DSAKeyPair, DSASignatureScheme
from ..signatures.ecdsa import ECDSAKeyPair, ECDSASignatureScheme
from .identity import Identity

__all__ = ["Certificate", "CertificateAuthority", "DSA_CERT_BYTES", "ECDSA_CERT_BYTES"]

#: Paper Table 3: "263-Bytes DSA cert" and "86-Bytes ECDSA cert".
DSA_CERT_BYTES = 263
ECDSA_CERT_BYTES = 86


@dataclass(frozen=True)
class Certificate:
    """A minimal certificate: subject, public key, validity, CA signature."""

    subject: Identity
    scheme: str
    public_key_encoding: bytes
    validity: str
    ca_signature: Signature
    issuer: str

    def tbs_bytes(self) -> bytes:
        """The "to-be-signed" byte string covered by the CA's signature."""
        return encode_fields(
            [
                self.subject.to_bytes(),
                self.scheme.encode("ascii"),
                self.public_key_encoding,
                self.validity.encode("ascii"),
                self.issuer.encode("ascii"),
            ]
        )

    @property
    def wire_bits(self) -> int:
        """Transmitted certificate size in bits.

        Uses the paper's nominal sizes (263 B for DSA, 86 B for ECDSA) so the
        communication-energy figures match Table 3; other schemes fall back to
        the actual encoded size.
        """
        if self.scheme == "dsa":
            return 8 * DSA_CERT_BYTES
        if self.scheme == "ecdsa":
            return 8 * ECDSA_CERT_BYTES
        return 8 * len(self.tbs_bytes()) + self.ca_signature.wire_bits


class CertificateAuthority:
    """Issues and verifies certificates for the certificate-based baselines.

    Parameters
    ----------
    scheme:
        The signature scheme the CA itself signs with (and the scheme whose
        public keys it certifies — the paper pairs DSA certs with DSA user
        keys and ECDSA certs with ECDSA user keys).
    rng:
        Deterministic randomness for the CA key and issued signatures.
    """

    def __init__(
        self,
        scheme: Union[DSASignatureScheme, ECDSASignatureScheme],
        rng: DeterministicRNG,
        name: str = "repro-root-ca",
    ) -> None:
        self.scheme = scheme
        self.name = name
        self._rng = rng
        self._keypair = scheme.generate_keypair(rng)
        self._issued: Dict[str, Certificate] = {}

    # ------------------------------------------------------------------ keys
    @property
    def public_key(self):
        """The CA verification key that every node is provisioned with."""
        return self._keypair.public

    # ----------------------------------------------------------------- issue
    @staticmethod
    def encode_public_key(public_key) -> bytes:
        """Canonical encoding of a user's public key for inclusion in a cert."""
        if isinstance(public_key, ECPoint):
            if public_key.is_infinity:
                raise ParameterError("cannot certify the point at infinity")
            size = (public_key.curve.p.bit_length() + 7) // 8
            return int_to_bytes(public_key.x, size) + int_to_bytes(public_key.y, size)
        if isinstance(public_key, int):
            return int_to_bytes(public_key)
        raise ParameterError(f"unsupported public key type {type(public_key)!r}")

    def issue(self, subject: Identity, public_key, validity: str = "2006-01-01/2007-01-01") -> Certificate:
        """Issue a certificate binding ``subject`` to ``public_key``."""
        encoding = self.encode_public_key(public_key)
        unsigned = Certificate(
            subject=subject,
            scheme=self.scheme.name,
            public_key_encoding=encoding,
            validity=validity,
            ca_signature=Signature(scheme=self.scheme.name, components={}, wire_bits=0),
            issuer=self.name,
        )
        signature = self.scheme.sign(self._keypair, unsigned.tbs_bytes(), self._rng)
        certificate = Certificate(
            subject=subject,
            scheme=self.scheme.name,
            public_key_encoding=encoding,
            validity=validity,
            ca_signature=signature,
            issuer=self.name,
        )
        self._issued[subject.name] = certificate
        return certificate

    # ---------------------------------------------------------------- verify
    def verify(self, certificate: Certificate) -> bool:
        """Verify the CA signature on a certificate (a "Cert Ver" in Table 1)."""
        if certificate.issuer != self.name:
            return False
        return self.scheme.verify(self._keypair.public, certificate.tbs_bytes(), certificate.ca_signature)

    def verify_or_raise(self, certificate: Certificate) -> None:
        """Like :meth:`verify` but raising :class:`VerificationError` on failure."""
        if not self.verify(certificate):
            raise VerificationError(
                f"certificate for {certificate.subject.name!r} failed verification"
            )

    def issued(self, subject: Identity) -> Optional[Certificate]:
        """Return the most recent certificate issued to ``subject``, if any."""
        return self._issued.get(subject.name)
