"""HMAC-SHA256, built on the library's own SHA-256.

Used by :mod:`repro.symmetric.authenc` to provide the integrity half of the
``E_K(m)`` encrypt-then-MAC construction that the dynamic protocols rely on:
the paper checks "if the identity ... is decrypted correctly to ensure the
validity of K*", which only makes sense if the symmetric encryption is
authenticated — so the reproduction makes that authentication explicit.
"""

from __future__ import annotations

from .sha256 import PureSHA256

__all__ = ["hmac_sha256", "verify_hmac"]

_BLOCK_SIZE = 64
_IPAD = bytes([0x36]) * _BLOCK_SIZE
_OPAD = bytes([0x5C]) * _BLOCK_SIZE


def _prepare_key(key: bytes) -> bytes:
    if len(key) > _BLOCK_SIZE:
        key = PureSHA256(key).digest()
    return key + b"\x00" * (_BLOCK_SIZE - len(key))


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """Return ``HMAC-SHA256(key, message)`` (32 bytes)."""
    padded = _prepare_key(key)
    inner_key = bytes(a ^ b for a, b in zip(padded, _IPAD))
    outer_key = bytes(a ^ b for a, b in zip(padded, _OPAD))
    inner = PureSHA256(inner_key)
    inner.update(message)
    outer = PureSHA256(outer_key)
    outer.update(inner.digest())
    return outer.digest()


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time-ish comparison of an HMAC tag."""
    expected = hmac_sha256(key, message)
    if len(expected) != len(tag):
        return False
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    return diff == 0
