"""Hashing substrate: from-scratch SHA-256, the paper's ``H``, HMAC, and KDFs."""

from .hashfuncs import HashFunction, default_hash
from .hmac_impl import hmac_sha256, verify_hmac
from .kdf import derive_key, derive_key_from_group_element, hkdf_expand, hkdf_extract
from .sha256 import PureSHA256, sha256_digest

__all__ = [
    "HashFunction",
    "default_hash",
    "hmac_sha256",
    "verify_hmac",
    "derive_key",
    "derive_key_from_group_element",
    "hkdf_expand",
    "hkdf_extract",
    "PureSHA256",
    "sha256_digest",
]
