"""A from-scratch SHA-256 implementation.

The library's default hash ``H`` is SHA-256.  The standard-library
:mod:`hashlib` is of course available, but the reproduction implements the
compression function itself so that (a) the substrate is self-contained as the
task requires, and (b) the unit tests can cross-check our implementation
against :mod:`hashlib` on random inputs — a useful canary for byte-ordering
bugs elsewhere in the wire format.

The public API mirrors :mod:`hashlib`: ``PureSHA256(data).digest()`` /
``.hexdigest()``, plus an incremental ``update``.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable

__all__ = ["PureSHA256", "sha256_digest"]


_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_MASK = 0xFFFFFFFF


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK


class PureSHA256:
    """Incremental SHA-256 (FIPS 180-4) over arbitrary byte strings."""

    digest_size = 32
    block_size = 64
    name = "sha256"

    def __init__(self, data: bytes = b"") -> None:
        self._h = list(_H0)
        self._pending = b""
        self._length = 0
        if data:
            self.update(data)

    def copy(self) -> "PureSHA256":
        """Return an independent copy of the running state."""
        clone = PureSHA256()
        clone._h = list(self._h)
        clone._pending = self._pending
        clone._length = self._length
        return clone

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("PureSHA256.update expects bytes")
        data = bytes(data)
        self._length += len(data)
        buffer = self._pending + data
        offset = 0
        while offset + 64 <= len(buffer):
            self._compress(buffer[offset : offset + 64])
            offset += 64
        self._pending = buffer[offset:]

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block)) + [0] * 48
        for i in range(16, 64):
            s0 = _rotr(w[i - 15], 7) ^ _rotr(w[i - 15], 18) ^ (w[i - 15] >> 3)
            s1 = _rotr(w[i - 2], 17) ^ _rotr(w[i - 2], 19) ^ (w[i - 2] >> 10)
            w[i] = (w[i - 16] + s0 + w[i - 7] + s1) & _MASK
        a, b, c, d, e, f, g, h = self._h
        for i in range(64):
            s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = (h + s1 + ch + _K[i] + w[i]) & _MASK
            s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (s0 + maj) & _MASK
            h, g, f, e, d, c, b, a = (
                g,
                f,
                e,
                (d + temp1) & _MASK,
                c,
                b,
                a,
                (temp1 + temp2) & _MASK,
            )
        self._h = [
            (x + y) & _MASK
            for x, y in zip(self._h, (a, b, c, d, e, f, g, h))
        ]

    def digest(self) -> bytes:
        """Return the 32-byte digest of everything absorbed so far."""
        # Work on a copy so the object remains updatable afterwards.
        clone = self.copy()
        bit_length = clone._length * 8
        clone._pending += b"\x80"
        while (len(clone._pending) % 64) != 56:
            clone._pending += b"\x00"
        clone._pending += struct.pack(">Q", bit_length)
        buffer = clone._pending
        for offset in range(0, len(buffer), 64):
            clone._compress(buffer[offset : offset + 64])
        return struct.pack(">8I", *clone._h)

    def hexdigest(self) -> str:
        """Hex form of :meth:`digest`."""
        return self.digest().hex()


def sha256_digest(*parts: bytes) -> bytes:
    """One-shot SHA-256 of the concatenation of ``parts``.

    Delegates to :mod:`hashlib`'s C implementation: the output is the same
    function bit for bit (the tests cross-check :class:`PureSHA256` against
    :mod:`hashlib` and this helper against both), and this one-shot path sits
    under every challenge hash and identity mapping — at scenario scale it
    runs millions of times, where the pure-Python compression loop would
    dominate the whole simulation.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.digest()
