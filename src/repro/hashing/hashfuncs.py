"""The hash function ``H`` of the paper and friends.

The paper's Setup selects "a one way hash function H : {0,1}* -> {0,1}^l
where l is a security parameter".  The protocols then use ``H`` in three
distinct roles:

* ``H(ID)`` mapped into ``Z_n^*`` — the identity public key of the GQ scheme,
* ``H(T, Z)`` / ``H(tau^e, M)`` — the *challenge* ``c`` of the GQ signature,
  an ``l``-bit string interpreted as an integer exponent,
* general message hashing inside DSA/ECDSA and the HMAC construction.

:class:`HashFunction` packages these roles with explicit domain separation so
that, e.g., an identity hash can never collide with a challenge hash — a
standard hygiene measure the 2006 paper leaves implicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..exceptions import ParameterError
from ..mathutils.serialization import bytes_to_int, encode_fields, int_to_bytes
from .sha256 import PureSHA256, sha256_digest

__all__ = ["HashFunction", "default_hash"]


@dataclass(frozen=True)
class HashFunction:
    """A configurable-output-length hash built on SHA-256.

    Parameters
    ----------
    output_bits:
        The paper's security parameter ``l``; the challenge ``c`` and all
        digests produced by :meth:`digest` are exactly this many bits.  The
        paper's energy tables use 160-bit challenges (the GQ signature is
        ``s`` = 1024 bits + ``c`` = 160 bits), so 160 is the default used by
        the named parameter sets.
    """

    output_bits: int = 160

    def __post_init__(self) -> None:
        if self.output_bits <= 0:
            raise ParameterError("output_bits must be positive")
        if self.output_bits > 4096:
            raise ParameterError("output_bits unreasonably large")

    # ------------------------------------------------------------------ core
    @property
    def output_bytes(self) -> int:
        """Number of whole bytes needed to carry :attr:`output_bits`."""
        return (self.output_bits + 7) // 8

    def _xof(self, domain: bytes, data: bytes, length: int) -> bytes:
        """Fixed-output expansion: SHA-256 in counter mode, ``length`` bytes."""
        out = bytearray()
        counter = 0
        while len(out) < length:
            out += sha256_digest(domain, counter.to_bytes(4, "big"), data)
            counter += 1
        return bytes(out[:length])

    def digest(self, *parts: bytes, domain: bytes = b"repro/H") -> bytes:
        """``H(parts)`` truncated/expanded to :attr:`output_bits` bits."""
        data = encode_fields(list(parts))
        raw = self._xof(domain, data, self.output_bytes)
        excess = self.output_bytes * 8 - self.output_bits
        if excess:
            # Clear the top bits so the integer value is < 2**output_bits.
            first = raw[0] & (0xFF >> excess)
            raw = bytes([first]) + raw[1:]
        return raw

    def digest_int(self, *parts: bytes, domain: bytes = b"repro/H") -> int:
        """Digest interpreted as a non-negative integer ``< 2**output_bits``."""
        return bytes_to_int(self.digest(*parts, domain=domain))

    # ------------------------------------------------------- specialised uses
    def challenge(self, *parts: bytes) -> int:
        """The GQ challenge ``c = H(...)`` as an ``l``-bit integer."""
        return self.digest_int(*parts, domain=b"repro/GQ-challenge")

    def identity_to_zn(self, identity: bytes, n: int) -> int:
        """Map an identity string into ``Z_n^*`` (the GQ public key ``H(ID)``).

        Rejection-samples SHA-256 counter-mode output until the value is in
        ``[2, n-1]`` and coprime to ``n``; for an honest RSA modulus the first
        draw virtually always succeeds.
        """
        if n <= 3:
            raise ParameterError("modulus too small for identity hashing")
        nbytes = (n.bit_length() + 7) // 8
        counter = 0
        while True:
            raw = self._xof(b"repro/ID-to-Zn", encode_fields([identity, int_to_bytes(counter)]), nbytes)
            value = bytes_to_int(raw) % n
            if 2 <= value < n and _coprime(value, n):
                return value
            counter += 1

    def hash_to_zq(self, *parts: bytes, q: int) -> int:
        """Map input onto ``Z_q`` (used by DSA/ECDSA message digests)."""
        if q <= 1:
            raise ParameterError("q must exceed 1")
        return self.digest_int(*parts, domain=b"repro/H-to-Zq") % q

    def map_to_point_index(self, identity: bytes, order: int) -> int:
        """The "MapToPoint" style hash of the SOK baseline.

        Our pairing substrate represents G1 elements by exponents of a fixed
        generator (see :mod:`repro.groups.pairing`), so MapToPoint reduces to
        hashing onto ``Z_order``; the *energy* cost of a real MapToPoint is
        charged separately by the energy model.
        """
        if order <= 1:
            raise ParameterError("order must exceed 1")
        value = self.digest_int(identity, domain=b"repro/MapToPoint") % order
        return value if value != 0 else 1

    def __call__(self, *parts: bytes) -> bytes:
        """Alias for :meth:`digest` so ``H(m)`` reads like the paper."""
        return self.digest(*parts)


def _coprime(a: int, b: int) -> bool:
    import math

    return math.gcd(a, b) == 1


def default_hash(output_bits: int = 160) -> HashFunction:
    """The library-wide default ``H`` (160-bit output, matching the paper)."""
    return HashFunction(output_bits=output_bits)
