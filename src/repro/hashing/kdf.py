"""Key derivation from group elements.

The group key ``K`` agreed by the protocols is an element of the order-``q``
subgroup of ``Z_p^*`` (a ~1024-bit integer).  Applications need fixed-length
symmetric keys, and the dynamic protocols need to use the *current* group key
``K`` as an AES key for ``E_K(...)``.  :func:`derive_key` bridges the two with
an HKDF-like extract-and-expand construction over the library's SHA-256.
"""

from __future__ import annotations

from ..exceptions import ParameterError
from ..mathutils.serialization import int_to_bytes
from .hmac_impl import hmac_sha256

__all__ = ["hkdf_extract", "hkdf_expand", "derive_key", "derive_key_from_group_element"]


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract (RFC 5869) with HMAC-SHA256."""
    if not salt:
        salt = b"\x00" * 32
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand (RFC 5869) with HMAC-SHA256."""
    if length <= 0:
        raise ParameterError("length must be positive")
    if length > 255 * 32:
        raise ParameterError("HKDF-Expand output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(pseudo_random_key, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def derive_key(secret: bytes, *, info: bytes = b"repro/kdf", salt: bytes = b"", length: int = 16) -> bytes:
    """Derive a ``length``-byte symmetric key from arbitrary secret bytes."""
    return hkdf_expand(hkdf_extract(salt, secret), info, length)


def derive_key_from_group_element(element: int, *, info: bytes = b"repro/group-key", length: int = 16) -> bytes:
    """Derive a symmetric key from a group element (the agreed group key K)."""
    if element <= 0:
        raise ParameterError("group element must be positive")
    return derive_key(int_to_bytes(element), info=info, length=length)
