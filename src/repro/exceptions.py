"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so applications can catch library failures with a single
``except`` clause while still being able to distinguish the broad failure
classes that matter operationally:

* parameter / configuration problems (:class:`ParameterError`),
* cryptographic verification failures (:class:`VerificationError` and its
  subclasses), which in the protocols trigger the paper's "all members will
  retransmit again" behaviour rather than crashing a node,
* protocol-state violations (:class:`ProtocolError`), e.g. feeding a Round 2
  message to a party still waiting for Round 1,
* simulated-network delivery problems (:class:`NetworkError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class ParameterError(ReproError):
    """Invalid, inconsistent, or unsupported cryptographic parameters."""


class SerializationError(ReproError):
    """Raised when wire-format encoding or decoding fails."""


class VerificationError(ReproError):
    """A cryptographic check failed (signature, MAC, identity binding...)."""


class SignatureError(VerificationError):
    """A digital signature failed to verify."""


class BatchVerificationError(SignatureError):
    """The aggregate/batch signature check of the proposed protocol failed.

    In the paper this is equation (2): when it does not hold, every member
    retransmits its Round 2 message.
    """


class KeyConfirmationError(VerificationError):
    """Key material failed its consistency check (e.g. Lemma 1: prod X_i != 1)."""


class DecryptionError(VerificationError):
    """Authenticated decryption failed (bad key, tampered ciphertext, or the
    embedded identity did not match the expected sender)."""


class ProtocolError(ReproError):
    """The protocol state machine was driven out of order or with bad input."""


class MembershipError(ProtocolError):
    """A dynamic membership operation referenced a user not in (or already in)
    the group."""


class NetworkError(ReproError):
    """Simulated network failure (undeliverable message, unknown node...)."""


class FleetError(ReproError):
    """Distributed campaign orchestration failure (controller/worker layer).

    Raised for *host*-side problems — a malformed frame, a worker talking a
    different protocol version, a controller with no workers left — never for
    a cell whose simulation failed (those become ``error`` rows, exactly as
    in the single-machine campaign runner)."""


class EnergyModelError(ReproError):
    """The energy accounting layer was asked for an unknown operation or
    device."""
