"""Simulated wireless nodes.

A :class:`Node` couples an identity with the bookkeeping the experiments need:
a :class:`~repro.energy.accounting.CostRecorder` for operation/bit tallies, an
inbox of received messages, and (optionally) a
:class:`~repro.energy.accounting.DeviceProfile` describing its hardware so the
reports can print per-node Joules directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..energy.accounting import CostRecorder, DeviceProfile, EnergyBreakdown
from ..exceptions import NetworkError
from ..pki.identity import Identity
from .message import Message

__all__ = ["Node"]


class Node:
    """One wireless device participating in the protocols."""

    def __init__(self, identity: Identity, device: Optional[DeviceProfile] = None) -> None:
        self.identity = identity
        self.device = device
        self.recorder = CostRecorder(owner=identity.name)
        self.inbox: List[Message] = []

    # --------------------------------------------------------------- traffic
    def deliver(self, message: Message) -> None:
        """Accept a message from the medium (reception cost already charged)."""
        self.inbox.append(message)

    def drain_inbox(self, round_label: Optional[str] = None) -> List[Message]:
        """Remove and return inbox messages (optionally only one round's worth)."""
        if round_label is None:
            messages, self.inbox = self.inbox, []
            return messages
        kept: List[Message] = []
        taken: List[Message] = []
        for message in self.inbox:
            (taken if message.round_label == round_label else kept).append(message)
        self.inbox = kept
        return taken

    def peek_inbox(self, round_label: Optional[str] = None) -> List[Message]:
        """Return (without removing) inbox messages, optionally filtered by round."""
        if round_label is None:
            return list(self.inbox)
        return [m for m in self.inbox if m.round_label == round_label]

    # ---------------------------------------------------------------- energy
    def energy(self, device: Optional[DeviceProfile] = None) -> EnergyBreakdown:
        """Price this node's recorded costs on its own (or a supplied) device profile."""
        profile = device or self.device
        if profile is None:
            raise NetworkError(
                f"node {self.identity.name} has no device profile; pass one explicitly"
            )
        return profile.price(self.recorder)

    def reset_costs(self) -> None:
        """Clear the recorder (used between experiment phases)."""
        self.recorder = CostRecorder(owner=self.identity.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.identity.name})"
