"""Protocol messages with exact wire sizes.

The energy analysis charges every transmitted and received *bit*, so messages
are represented structurally: a :class:`Message` is a named collection of
:class:`MessagePart` entries, each of which knows its own size in bits.  The
parts mirror the concatenations written in the paper (``m_i = U_i || z_i ||
t_i`` and so on), and the message's total ``wire_bits`` is what the simulated
transceivers charge.

Parts hold the actual values (integers, byte strings, signatures, sealed
envelopes), so receivers operate on real data rather than on size
placeholders — tampering tests flip real bits and real verifications fail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..exceptions import ParameterError
from ..pki.identity import Identity
from ..signatures.base import Signature
from ..symmetric.authenc import AuthenticatedCiphertext

__all__ = ["MessagePart", "Message", "group_element_part", "identity_part", "signature_part", "envelope_part"]

PartValue = Union[int, bytes, Signature, AuthenticatedCiphertext, "Identity"]


@dataclass(frozen=True)
class MessagePart:
    """One named component of a message and its wire size in bits."""

    name: str
    value: PartValue
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ParameterError("part size cannot be negative")


def identity_part(identity: Identity, name: str = "identity") -> MessagePart:
    """A transmitted identity (32 bits, per the paper)."""
    return MessagePart(name=name, value=identity, bits=identity.wire_bits)


def group_element_part(name: str, value: int, element_bits: int) -> MessagePart:
    """A group element (``z_i``, ``X_i``, ``t_i``...) transmitted at its nominal size."""
    if value < 0:
        raise ParameterError("group elements are non-negative")
    return MessagePart(name=name, value=value, bits=element_bits)


def signature_part(signature: Signature, name: str = "signature") -> MessagePart:
    """A digital signature at its scheme's nominal wire size."""
    return MessagePart(name=name, value=signature, bits=signature.wire_bits)


def envelope_part(envelope: AuthenticatedCiphertext, name: str = "envelope") -> MessagePart:
    """An authenticated symmetric ciphertext ``E_K(...)`` at its real size."""
    return MessagePart(name=name, value=envelope, bits=envelope.wire_bits)


@dataclass(frozen=True)
class Message:
    """A broadcast or unicast protocol message.

    Attributes
    ----------
    sender:
        Identity of the transmitting node.
    round_label:
        Which protocol round produced the message (``"round1"``, ``"join-round2"``...).
    parts:
        The ordered message components.
    recipients:
        ``None`` for a broadcast; otherwise the explicit list of recipients
        (the Join protocol's final message ``m'''_n`` is unicast to ``U_{n+1}``).
    """

    sender: Identity
    round_label: str
    parts: Tuple[MessagePart, ...]
    recipients: Optional[Tuple[Identity, ...]] = None

    def __post_init__(self) -> None:
        names = [part.name for part in self.parts]
        if len(names) != len(set(names)):
            raise ParameterError(f"duplicate part names in message: {names}")

    # ------------------------------------------------------------------ size
    @property
    def wire_bits(self) -> int:
        """Total transmitted size of the message in bits."""
        return sum(part.bits for part in self.parts)

    @property
    def is_broadcast(self) -> bool:
        """Whether the message is addressed to the whole group."""
        return self.recipients is None

    # ---------------------------------------------------------------- access
    def part(self, name: str) -> MessagePart:
        """Return the named part, raising :class:`ParameterError` if missing."""
        for part in self.parts:
            if part.name == name:
                return part
        raise ParameterError(f"message from {self.sender} has no part {name!r}")

    def value(self, name: str) -> PartValue:
        """Return the named part's value."""
        return self.part(name).value

    def has_part(self, name: str) -> bool:
        """Whether the message carries a part with this name."""
        return any(part.name == name for part in self.parts)

    def part_names(self) -> List[str]:
        """Names of all parts in order."""
        return [part.name for part in self.parts]

    def addressed_to(self, identity: Identity) -> bool:
        """Whether ``identity`` should receive this message."""
        if self.sender == identity:
            return False
        if self.recipients is None:
            return True
        return identity in self.recipients

    @classmethod
    def broadcast(cls, sender: Identity, round_label: str, parts: Sequence[MessagePart]) -> "Message":
        """Convenience constructor for a broadcast message."""
        return cls(sender=sender, round_label=round_label, parts=tuple(parts), recipients=None)

    @classmethod
    def unicast(
        cls, sender: Identity, recipient: Identity, round_label: str, parts: Sequence[MessagePart]
    ) -> "Message":
        """Convenience constructor for a single-recipient message."""
        return cls(
            sender=sender,
            round_label=round_label,
            parts=tuple(parts),
            recipients=(recipient,),
        )
