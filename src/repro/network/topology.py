"""Ring topology management.

Both BD and the proposed protocol "consider a ring structure among the users
of G where the users' indices can be considered on the circulation of
{1, ..., n}".  :class:`RingTopology` owns that ordering: neighbour lookup with
wrap-around, the index conventions ``r_0 = r_n`` / ``r_{n+1} = r_1``, and the
ring surgery performed by the dynamic protocols (insert a joining node between
``U_n`` and ``U_1``, remove leaving nodes, splice two rings for a merge,
split a ring for a partition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import MembershipError, ParameterError
from ..pki.identity import Identity

__all__ = ["RingTopology"]


class RingTopology:
    """An ordered ring of identities with 1-based paper-style indexing."""

    def __init__(self, members: Sequence[Identity]) -> None:
        if len(members) < 2:
            raise ParameterError("a group needs at least two members")
        names = [m.name for m in members]
        if len(names) != len(set(names)):
            raise ParameterError("duplicate members in ring")
        self._members: List[Identity] = list(members)

    # ----------------------------------------------------------------- views
    @property
    def members(self) -> List[Identity]:
        """Members in ring order, ``U_1`` first."""
        return list(self._members)

    @property
    def size(self) -> int:
        """Group size ``n``."""
        return len(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Identity]:
        return iter(self._members)

    def __contains__(self, identity: Identity) -> bool:
        return any(m.name == identity.name for m in self._members)

    # --------------------------------------------------------------- indexing
    def index_of(self, identity: Identity) -> int:
        """The paper-style 1-based index of ``identity``."""
        for position, member in enumerate(self._members, start=1):
            if member.name == identity.name:
                return position
        raise MembershipError(f"{identity.name!r} is not in the group")

    def member_at(self, index: int) -> Identity:
        """The member with 1-based index ``index`` (wrapping around the ring)."""
        return self._members[(index - 1) % len(self._members)]

    def controller(self) -> Identity:
        """``U_1``, which the paper designates as the trusted controller."""
        return self._members[0]

    def last(self) -> Identity:
        """``U_n``, the other actively involved node in the Join protocol."""
        return self._members[-1]

    def left_neighbour(self, identity: Identity) -> Identity:
        """``U_{i-1}`` with wrap-around (``U_0 = U_n``)."""
        return self.member_at(self.index_of(identity) - 1)

    def right_neighbour(self, identity: Identity) -> Identity:
        """``U_{i+1}`` with wrap-around (``U_{n+1} = U_1``)."""
        return self.member_at(self.index_of(identity) + 1)

    def odd_indexed(self, exclude: Iterable[Identity] = ()) -> List[Identity]:
        """Members with odd 1-based index, minus any excluded identities.

        These are the users who refresh their exponents in the Leave and
        Partition protocols.
        """
        excluded = {identity.name for identity in exclude}
        return [
            member
            for position, member in enumerate(self._members, start=1)
            if position % 2 == 1 and member.name not in excluded
        ]

    def even_indexed(self, exclude: Iterable[Identity] = ()) -> List[Identity]:
        """Members with even 1-based index, minus any excluded identities."""
        excluded = {identity.name for identity in exclude}
        return [
            member
            for position, member in enumerate(self._members, start=1)
            if position % 2 == 0 and member.name not in excluded
        ]

    # ------------------------------------------------------------ ring surgery
    def with_join(self, new_member: Identity) -> "RingTopology":
        """The ring after ``new_member`` joins between ``U_n`` and ``U_1``."""
        if new_member in self:
            raise MembershipError(f"{new_member.name!r} is already a group member")
        return RingTopology(self._members + [new_member])

    def with_leave(self, leaving: Identity) -> "RingTopology":
        """The ring after ``leaving`` departs (order of the rest preserved)."""
        if leaving not in self:
            raise MembershipError(f"{leaving.name!r} is not a group member")
        remaining = [m for m in self._members if m.name != leaving.name]
        if len(remaining) < 2:
            raise MembershipError("cannot shrink the group below two members")
        return RingTopology(remaining)

    def with_partition(self, leaving: Sequence[Identity]) -> "RingTopology":
        """The ring after every identity in ``leaving`` departs."""
        leaving_names = {identity.name for identity in leaving}
        unknown = leaving_names - {m.name for m in self._members}
        if unknown:
            raise MembershipError(f"not group members: {sorted(unknown)}")
        remaining = [m for m in self._members if m.name not in leaving_names]
        if len(remaining) < 2:
            raise MembershipError("cannot shrink the group below two members")
        return RingTopology(remaining)

    def merged_with(self, other: "RingTopology") -> "RingTopology":
        """The ring ``G' = G_A ∪ G_B`` with group B appended after ``U_n``."""
        overlap = {m.name for m in self._members} & {m.name for m in other._members}
        if overlap:
            raise MembershipError(f"groups overlap: {sorted(overlap)}")
        return RingTopology(self._members + other._members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingTopology({[m.name for m in self._members]})"
