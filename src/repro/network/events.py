"""Dynamic group-membership events and event-trace generation.

Wireless networks "have dynamic network topology" — users join and leave,
networks merge and partition.  The examples and the ablation benchmarks drive
the dynamic protocols with *traces* of such events; this module defines the
event types and a deterministic trace generator with configurable event mix,
so the long-running MANET simulation example exercises all four dynamic
protocols in realistic proportions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..exceptions import ParameterError
from ..mathutils.rand import DeterministicRNG
from ..pki.identity import Identity

__all__ = [
    "JoinEvent",
    "LeaveEvent",
    "MergeEvent",
    "PartitionEvent",
    "MembershipEvent",
    "EventTraceGenerator",
    "membership_after",
]


@dataclass(frozen=True)
class JoinEvent:
    """A single user joins the group."""

    joining: Identity
    kind: str = field(default="join", init=False)


@dataclass(frozen=True)
class LeaveEvent:
    """A single user leaves the group."""

    leaving: Identity
    kind: str = field(default="leave", init=False)


@dataclass(frozen=True)
class MergeEvent:
    """Another group (given by its member list) merges into this one."""

    other_group: tuple
    kind: str = field(default="merge", init=False)


@dataclass(frozen=True)
class PartitionEvent:
    """Several users leave at once (a network partition)."""

    leaving: tuple
    kind: str = field(default="partition", init=False)


MembershipEvent = Union[JoinEvent, LeaveEvent, MergeEvent, PartitionEvent]


def membership_after(members: Sequence[Identity], event: MembershipEvent) -> List[Identity]:
    """The member list after applying ``event`` (ring order preserved).

    This is the single definition of each event's effect on membership; the
    trace generator and the protocols' re-execution fallback
    (:meth:`repro.core.base.Protocol.apply_event`) both use it.
    """
    if isinstance(event, JoinEvent):
        return list(members) + [event.joining]
    if isinstance(event, LeaveEvent):
        return [m for m in members if m.name != event.leaving.name]
    if isinstance(event, MergeEvent):
        return list(members) + list(event.other_group)
    if isinstance(event, PartitionEvent):
        gone = {identity.name for identity in event.leaving}
        return [m for m in members if m.name not in gone]
    raise ParameterError(f"unknown membership event {event!r}")


class EventTraceGenerator:
    """Generates a reproducible sequence of membership events.

    Parameters
    ----------
    rng:
        Deterministic randomness source.
    join_weight / leave_weight / merge_weight / partition_weight:
        Relative frequencies of the four event types.
    merge_size / partition_size:
        How many users a merge brings in / a partition removes (bounded by
        what the current group can support).
    """

    def __init__(
        self,
        rng: DeterministicRNG,
        *,
        join_weight: float = 4.0,
        leave_weight: float = 4.0,
        merge_weight: float = 1.0,
        partition_weight: float = 1.0,
        merge_size: int = 3,
        partition_size: int = 3,
        name_prefix: str = "dyn",
    ) -> None:
        weights = (join_weight, leave_weight, merge_weight, partition_weight)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ParameterError("event weights must be non-negative and not all zero")
        self._rng = rng
        self._weights = weights
        self.merge_size = max(1, merge_size)
        self.partition_size = max(1, partition_size)
        self._name_prefix = name_prefix
        self._fresh_counter = 0

    # ------------------------------------------------------------------ util
    def _fresh_identity(self) -> Identity:
        self._fresh_counter += 1
        return Identity(f"{self._name_prefix}-{self._fresh_counter:04d}")

    def _pick_kind(self) -> str:
        total = sum(self._weights)
        draw = self._rng.randbelow(1_000_000) / 1_000_000.0 * total
        kinds = ("join", "leave", "merge", "partition")
        accumulated = 0.0
        for kind, weight in zip(kinds, self._weights):
            accumulated += weight
            if draw < accumulated:
                return kind
        return kinds[-1]

    # ------------------------------------------------------------------ main
    def next_event(self, current_members: Sequence[Identity], min_group_size: int = 3) -> MembershipEvent:
        """Generate the next event, respecting the minimum viable group size."""
        members = list(current_members)
        kind = self._pick_kind()
        # Shrinking events need enough members to leave behind a valid group.
        if kind == "leave" and len(members) - 1 < min_group_size:
            kind = "join"
        if kind == "partition" and len(members) - self.partition_size < min_group_size:
            kind = "join"
        if kind == "join":
            return JoinEvent(joining=self._fresh_identity())
        if kind == "leave":
            victim = self._rng.choice(members[1:])  # never evict the controller U_1
            return LeaveEvent(leaving=victim)
        if kind == "merge":
            other = tuple(self._fresh_identity() for _ in range(max(2, self.merge_size)))
            return MergeEvent(other_group=other)
        leaving = tuple(self._rng.sample(members[1:], min(self.partition_size, len(members) - min_group_size)))
        return PartitionEvent(leaving=leaving)

    def trace(self, initial_members: Sequence[Identity], length: int, min_group_size: int = 3) -> List[MembershipEvent]:
        """Generate a whole trace, tracking the evolving membership as it goes."""
        if length < 0:
            raise ParameterError("trace length cannot be negative")
        members = list(initial_members)
        events: List[MembershipEvent] = []
        for _ in range(length):
            event = self.next_event(members, min_group_size=min_group_size)
            events.append(event)
            members = membership_after(members, event)
        return events
