"""Simulated wireless network: messages, nodes, broadcast medium, ring
topology, and dynamic-membership event traces."""

from .events import (
    EventTraceGenerator,
    JoinEvent,
    LeaveEvent,
    MembershipEvent,
    MergeEvent,
    PartitionEvent,
)
from .medium import BroadcastMedium, DeliveryReceipt, LinkModel, UniformLink
from .message import (
    Message,
    MessagePart,
    envelope_part,
    group_element_part,
    identity_part,
    signature_part,
)
from .node import Node
from .tiers import (
    LINK_CLASSES,
    GilbertElliott,
    GilbertElliottLink,
    LinkClass,
    TierConfig,
    TieredLink,
    TierMap,
)
from .topology import RingTopology

__all__ = [
    "GilbertElliott",
    "GilbertElliottLink",
    "LINK_CLASSES",
    "LinkClass",
    "TierConfig",
    "TierMap",
    "TieredLink",
    "EventTraceGenerator",
    "JoinEvent",
    "LeaveEvent",
    "MembershipEvent",
    "MergeEvent",
    "PartitionEvent",
    "BroadcastMedium",
    "DeliveryReceipt",
    "LinkModel",
    "UniformLink",
    "Message",
    "MessagePart",
    "envelope_part",
    "group_element_part",
    "identity_part",
    "signature_part",
    "Node",
    "RingTopology",
]
