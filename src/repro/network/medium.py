"""The simulated broadcast medium.

Wireless group-key protocols are broadcast protocols: one transmission is
received by every other node in range.  :class:`BroadcastMedium` models that —
the sender is charged one transmission of the message's size, every recipient
is charged one reception — and optionally injects message loss, in which case
the sender retransmits (charging everyone again) until the message gets
through or the retry budget is exhausted.  That is exactly the retransmission
behaviour the paper appeals to when a verification fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..exceptions import NetworkError
from ..mathutils.rand import DeterministicRNG
from ..pki.identity import Identity
from .message import Message
from .node import Node

__all__ = ["LinkModel", "UniformLink", "BroadcastMedium", "DeliveryReceipt"]


class LinkModel:
    """Per-pair radio link characteristics, keyed by node identity *names*.

    The broadcast medium consults its link model to decide which attached
    nodes a transmission can reach at all (:meth:`reachable`) and how likely
    a given directed link is to drop a copy (:meth:`loss_probability`).  The
    base class is the fully-connected lossless ether; :class:`UniformLink`
    reproduces the classic single-knob uniform-loss medium; distance-dependent
    radio links over moving nodes live in :mod:`repro.mobility.radio`.
    """

    def reachable(self, sender: str, receiver: str) -> bool:
        """Whether ``receiver`` can hear ``sender`` at all right now."""
        return True

    def loss_probability(self, sender: str, receiver: str) -> float:
        """Probability that one copy on the ``sender -> receiver`` link is lost."""
        return 0.0

    def bind(self, rng: "DeterministicRNG") -> None:
        """Receive the medium's ``links`` RNG child at attach time.

        The medium forks a *named* child of its own RNG and hands it to the
        link model here, so stateful models (the Gilbert–Elliott chains in
        :mod:`repro.network.tiers`) get deterministic randomness without
        ever touching the medium's own loss-draw stream.  Stateless models
        ignore the call.
        """

    def describe(self) -> str:
        """One-line summary used in reports."""
        return type(self).__name__


class UniformLink(LinkModel):
    """The degenerate link model: everyone reachable, one global loss knob."""

    def __init__(self, loss_probability: float = 0.0) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise NetworkError("loss probability must be in [0, 1)")
        self.loss = loss_probability

    def loss_probability(self, sender: str, receiver: str) -> float:
        return self.loss

    def describe(self) -> str:
        return f"uniform(loss={self.loss:g})"


@dataclass
class DeliveryReceipt:
    """What happened to one send: attempts used and who received it.

    ``hops``/``transmissions``/``relay_bits`` describe the physical delivery
    path: a single-hop broadcast domain uses ``hops=1`` and one transmission
    per attempt with no relay traffic; a multi-hop medium
    (:class:`repro.mobility.relay.MultiHopMedium`) reports the flood depth,
    every physical transmission (origin plus relays, including retry waves)
    and the bits transmitted by relays on the origin's behalf.
    """

    message: Message
    attempts: int
    delivered_to: List[Identity]
    hops: int = 1
    transmissions: int = 0
    relay_bits: int = 0
    #: flood depth at which each receiver first decoded the message (multi-hop
    #: media only; empty on a single-hop domain, where every receiver is at
    #: ``hops``).  The engine's latency models read this for per-receiver
    #: delivery delays.
    hop_by_receiver: Dict[str, int] = field(default_factory=dict)


class BroadcastMedium:
    """A single-hop broadcast domain connecting a set of nodes.

    Parameters
    ----------
    loss_probability:
        Probability that a given transmission attempt is lost (applied to the
        whole broadcast, modelling a collision / deep fade at the sender).
    max_retries:
        How many times a lost transmission is retried before
        :class:`NetworkError` is raised.
    rng:
        Randomness source for loss decisions (deterministic, like everything
        else in the library).
    link_model:
        Per-pair :class:`LinkModel` hook.  The default is
        ``UniformLink(loss_probability)``, which keeps the historic behaviour
        exactly: every attached node reachable, loss drawn once per broadcast
        attempt.  Passing an explicit :class:`UniformLink` makes it the single
        source of truth for the loss knob.  Any other link model contributes
        *reachability filtering only* on this single-hop medium — per-link
        loss draws and relaying need
        :class:`repro.mobility.relay.MultiHopMedium`.
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        max_retries: int = 10,
        rng: Optional[DeterministicRNG] = None,
        link_model: Optional[LinkModel] = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise NetworkError("loss probability must be in [0, 1)")
        if isinstance(link_model, UniformLink):
            # One source of truth: an explicit uniform link carries the knob.
            loss_probability = link_model.loss
        self.loss_probability = loss_probability
        self.max_retries = max_retries
        self.link_model = link_model if link_model is not None else UniformLink(loss_probability)
        # `is None`, not truthiness: a caller-supplied RNG must never be
        # silently swapped for the default just because it tests falsy.
        self._rng = rng if rng is not None else DeterministicRNG("medium", label="medium")
        # fork() is a pure function of the seed, so binding the link model's
        # named child never advances (or otherwise perturbs) the medium's
        # own draw stream — pre-tier runs stay bit-identical.
        self.link_model.bind(self._rng.fork("links"))
        self._nodes: Dict[str, Node] = {}
        self.transcript: List[Message] = []
        self.receipts: List[DeliveryReceipt] = []
        #: read-only observers called after every physical send — the
        #: adversary subsystem's eavesdropping hook.  Taps must not mutate
        #: anything: they see the message and its receipt, nothing more, so
        #: an attached tap can never perturb energy ledgers or loss draws.
        self.taps: List[Callable[[Message, DeliveryReceipt], None]] = []

    def add_tap(self, tap: Callable[[Message, DeliveryReceipt], None]) -> None:
        """Attach a read-only observer of every send (see ``taps``)."""
        self.taps.append(tap)

    def _finalize(self, message: Message, receipt: DeliveryReceipt) -> DeliveryReceipt:
        """Record a completed send and notify the taps."""
        self.transcript.append(message)
        self.receipts.append(receipt)
        for tap in self.taps:
            tap(message, receipt)
        return receipt

    # ----------------------------------------------------------- membership
    def attach(self, node: Node) -> Node:
        """Attach a node to the broadcast domain."""
        self._nodes[node.identity.name] = node
        return node

    def detach(self, identity: Identity) -> None:
        """Remove a node (it stops receiving and being charged)."""
        self._nodes.pop(identity.name, None)

    def node(self, identity: Identity) -> Node:
        """Look up an attached node."""
        try:
            return self._nodes[identity.name]
        except KeyError:
            raise NetworkError(f"node {identity.name!r} is not attached to the medium") from None

    @property
    def nodes(self) -> List[Node]:
        """All attached nodes."""
        return list(self._nodes.values())

    def __contains__(self, identity: Identity) -> bool:
        return identity.name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------ send
    def _attempt_lost(self) -> bool:
        if self.loss_probability <= 0.0:
            return False
        draw = self._rng.randbelow(1_000_000) / 1_000_000.0
        return draw < self.loss_probability

    def send(self, message: Message) -> DeliveryReceipt:
        """Transmit a message, charging sender and receivers, with retries on loss.

        Performs up to ``max_retries + 1`` physical attempts: the initial
        transmission plus ``max_retries`` retries, every one of them charged
        to the sender's (and each listening receiver's) energy ledger.  Only
        when the last retry is also lost does :class:`NetworkError` surface.
        """
        sender = self.node(message.sender)
        # Validate deliverability before anything is charged, so a failed
        # send is side-effect-free: a single-hop domain has no relays, and an
        # addressed member out of direct range could never be served —
        # silently skipping it would surface much later as a confusing
        # protocol failure.  Multi-hop delivery lives in
        # repro.mobility.relay.MultiHopMedium.
        for node in self._nodes.values():
            if not message.addressed_to(node.identity):
                continue
            if not self.link_model.reachable(message.sender.name, node.identity.name):
                raise NetworkError(
                    f"{node.identity.name} is out of direct range of "
                    f"{message.sender.name} and this single-hop medium cannot "
                    "relay; use MultiHopMedium for multi-hop topologies"
                )
        attempts = 0
        while True:
            attempts += 1
            sender.recorder.record_tx(message.wire_bits)
            if not self._attempt_lost():
                break
            if attempts > self.max_retries:
                raise NetworkError(
                    f"message from {message.sender.name} lost {attempts} times; giving up"
                )
        delivered: List[Identity] = []
        for node in self._nodes.values():
            if not message.addressed_to(node.identity):
                continue
            # Receivers pay for every attempt they had to listen to; with the
            # default lossless medium this is exactly one reception.
            node.recorder.record_rx(message.wire_bits * attempts, messages=attempts)
            node.deliver(message)
            delivered.append(node.identity)
        receipt = DeliveryReceipt(
            message=message,
            attempts=attempts,
            delivered_to=delivered,
            hops=1,
            transmissions=attempts,
            relay_bits=0,
        )
        return self._finalize(message, receipt)

    def transmit(self, message: Message) -> DeliveryReceipt:
        """One *single* physical broadcast attempt (no retries, no raising).

        This is the engine's latency-mode primitive: the sender is charged
        one transmission, every addressed node in range is charged one
        reception (it was listening whether or not its copy decoded), and
        lost or out-of-range copies simply do not appear in ``delivered_to``
        — recovery is the protocol machines' job, via round timeouts and
        retransmission waves in virtual time.  Loss is drawn once per
        broadcast from the uniform knob (a collision / deep fade at the
        sender) and, for non-uniform link models, once more per directed
        link.  The legacy :meth:`send` keeps its immediate-retry semantics
        for synchronous execution.
        """
        sender = self.node(message.sender)
        sender.recorder.record_tx(message.wire_bits)
        attempt_lost = self._attempt_lost()
        per_link = not isinstance(self.link_model, UniformLink)
        delivered: List[Identity] = []
        for node in self._nodes.values():
            if not message.addressed_to(node.identity):
                continue
            if not self.link_model.reachable(message.sender.name, node.identity.name):
                continue
            node.recorder.record_rx(message.wire_bits)
            if attempt_lost:
                continue
            if per_link:
                loss = self.link_model.loss_probability(
                    message.sender.name, node.identity.name
                )
                if loss > 0.0 and self._rng.randbelow(1_000_000) / 1_000_000.0 < loss:
                    continue
            node.deliver(message)
            delivered.append(node.identity)
        receipt = DeliveryReceipt(
            message=message,
            attempts=1,
            delivered_to=delivered,
            hops=1,
            transmissions=1,
            relay_bits=0,
        )
        return self._finalize(message, receipt)

    def broadcast_all(self, messages: List[Message]) -> List[DeliveryReceipt]:
        """Send a batch of messages (one protocol round) in order."""
        return [self.send(message) for message in messages]

    # ------------------------------------------------------------- reporting
    def total_messages(self) -> int:
        """Number of distinct messages placed on the medium."""
        return len(self.transcript)

    def total_bits(self, *, include_retries: bool = False) -> int:
        """Total bits placed on the medium.

        By default each message counts once, whatever it took to deliver.
        With ``include_retries=True`` every physical on-air copy counts —
        retransmissions here, relay copies too on a multi-hop medium — so the
        figure matches the transmission bits the senders' (and relays')
        recorders were actually charged, which is what energy reports for
        lossy scenarios must use.
        """
        if include_retries:
            return sum(
                receipt.message.wire_bits * receipt.transmissions for receipt in self.receipts
            )
        return sum(message.wire_bits for message in self.transcript)

    def total_transmissions(self) -> int:
        """Physical transmissions: every on-air copy, including retries and relays."""
        return sum(receipt.transmissions for receipt in self.receipts)

    def total_relay_bits(self) -> int:
        """Bits transmitted by relay nodes on behalf of other senders."""
        return sum(receipt.relay_bits for receipt in self.receipts)

    def messages_for_round(self, round_label: str) -> List[Message]:
        """All transcript messages belonging to one round."""
        return [m for m in self.transcript if m.round_label == round_label]
