"""The simulated broadcast medium.

Wireless group-key protocols are broadcast protocols: one transmission is
received by every other node in range.  :class:`BroadcastMedium` models that —
the sender is charged one transmission of the message's size, every recipient
is charged one reception — and optionally injects message loss, in which case
the sender retransmits (charging everyone again) until the message gets
through or the retry budget is exhausted.  That is exactly the retransmission
behaviour the paper appeals to when a verification fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import NetworkError
from ..mathutils.rand import DeterministicRNG
from ..pki.identity import Identity
from .message import Message
from .node import Node

__all__ = ["BroadcastMedium", "DeliveryReceipt"]


@dataclass
class DeliveryReceipt:
    """What happened to one send: attempts used and who received it."""

    message: Message
    attempts: int
    delivered_to: List[Identity]


class BroadcastMedium:
    """A single-hop broadcast domain connecting a set of nodes.

    Parameters
    ----------
    loss_probability:
        Probability that a given transmission attempt is lost (applied to the
        whole broadcast, modelling a collision / deep fade at the sender).
    max_retries:
        How many times a lost transmission is retried before
        :class:`NetworkError` is raised.
    rng:
        Randomness source for loss decisions (deterministic, like everything
        else in the library).
    """

    def __init__(
        self,
        loss_probability: float = 0.0,
        max_retries: int = 10,
        rng: Optional[DeterministicRNG] = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise NetworkError("loss probability must be in [0, 1)")
        self.loss_probability = loss_probability
        self.max_retries = max_retries
        self._rng = rng or DeterministicRNG("medium", label="medium")
        self._nodes: Dict[str, Node] = {}
        self.transcript: List[Message] = []
        self.receipts: List[DeliveryReceipt] = []

    # ----------------------------------------------------------- membership
    def attach(self, node: Node) -> Node:
        """Attach a node to the broadcast domain."""
        self._nodes[node.identity.name] = node
        return node

    def detach(self, identity: Identity) -> None:
        """Remove a node (it stops receiving and being charged)."""
        self._nodes.pop(identity.name, None)

    def node(self, identity: Identity) -> Node:
        """Look up an attached node."""
        try:
            return self._nodes[identity.name]
        except KeyError:
            raise NetworkError(f"node {identity.name!r} is not attached to the medium") from None

    @property
    def nodes(self) -> List[Node]:
        """All attached nodes."""
        return list(self._nodes.values())

    def __contains__(self, identity: Identity) -> bool:
        return identity.name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------ send
    def _attempt_lost(self) -> bool:
        if self.loss_probability <= 0.0:
            return False
        draw = self._rng.randbelow(1_000_000) / 1_000_000.0
        return draw < self.loss_probability

    def send(self, message: Message) -> DeliveryReceipt:
        """Transmit a message, charging sender and receivers, with retries on loss."""
        sender = self.node(message.sender)
        attempts = 0
        while True:
            attempts += 1
            sender.recorder.record_tx(message.wire_bits)
            if not self._attempt_lost():
                break
            if attempts > self.max_retries:
                raise NetworkError(
                    f"message from {message.sender.name} lost {attempts} times; giving up"
                )
        delivered: List[Identity] = []
        for node in self._nodes.values():
            if not message.addressed_to(node.identity):
                continue
            # Receivers pay for every attempt they had to listen to; with the
            # default lossless medium this is exactly one reception.
            node.recorder.record_rx(message.wire_bits * attempts, messages=attempts)
            node.deliver(message)
            delivered.append(node.identity)
        receipt = DeliveryReceipt(message=message, attempts=attempts, delivered_to=delivered)
        self.transcript.append(message)
        self.receipts.append(receipt)
        return receipt

    def broadcast_all(self, messages: List[Message]) -> List[DeliveryReceipt]:
        """Send a batch of messages (one protocol round) in order."""
        return [self.send(message) for message in messages]

    # ------------------------------------------------------------- reporting
    def total_messages(self) -> int:
        """Number of distinct messages placed on the medium."""
        return len(self.transcript)

    def total_bits(self, *, include_retries: bool = False) -> int:
        """Total bits placed on the medium.

        By default each message counts once, whatever it took to deliver.
        With ``include_retries=True`` every retransmitted copy counts too, so
        on a lossy medium the figure matches the transmission bits the
        senders' recorders were actually charged — which is what energy
        reports for lossy scenarios must use.
        """
        if include_retries:
            return sum(receipt.message.wire_bits * receipt.attempts for receipt in self.receipts)
        return sum(message.wire_bits for message in self.transcript)

    def messages_for_round(self, round_label: str) -> List[Message]:
        """All transcript messages belonging to one round."""
        return [m for m in self.transcript if m.round_label == round_label]
