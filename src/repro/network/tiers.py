"""Multi-tier link classes and Gilbert–Elliott burst loss.

The flat broadcast domain and the 2-D radio field both assume one *kind* of
link.  Real MANET deployments are tiered: a dense ground segment, a sparse
aerial relay tier, and (for the delay-tolerant extreme) a satellite relay —
each with its own bitrate, propagation delay and loss behaviour.  This module
supplies the descriptors and link models for such topologies:

* :class:`LinkClass` — one kind of link: per-direction bitrate, a fixed
  propagation delay and a loss model (an i.i.d. float or a
  :class:`GilbertElliott` burst-loss parameter set);
* :class:`GilbertElliott` / :class:`GilbertElliottLink` — the classic
  two-state (good/bad) Markov burst-loss channel, one deterministic chain per
  directed link, seeded from the medium's named RNG children;
* :class:`TierMap` / :class:`TierConfig` — node-to-tier assignment with
  *gateway* nodes homed in one tier but participating in others; floods
  cross tiers only through gateways;
* :class:`TieredLink` — the :class:`~repro.network.medium.LinkModel` gluing
  the above together: reachability from shared tiers, loss from the link
  class of the pair.

Determinism: chain randomness comes from a *named* child of the medium's RNG
(``links``), forked per directed link, so attaching burst-loss chains never
perturbs the medium's own loss draws — the degenerate configurations stay
bit-identical to the historic uniform-loss paths — and chain state survives
membership churn (detaching a node does not reset its links' chains).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import NetworkError, ParameterError
from ..mathutils.rand import DeterministicRNG
from .medium import LinkModel

__all__ = [
    "GilbertElliott",
    "GilbertElliottLink",
    "LinkClass",
    "LINK_CLASSES",
    "TierConfig",
    "TierMap",
    "TieredLink",
    "resolve_link_class",
    "link_class_to_spec",
]


# ------------------------------------------------------------ Gilbert–Elliott
@dataclass(frozen=True)
class GilbertElliott:
    """Two-state burst-loss channel parameters.

    The chain has a *good* state (per-copy loss ``loss_good``) and a *bad*
    state (``loss_bad``).  Each physical copy advances the chain one step:
    from good it enters bad with probability ``p_enter_bad``; once bad it
    stays for a geometric number of copies with mean ``burst_length`` (the
    exit probability is ``1 / burst_length``).

    ``burst_length == 1`` is the memoryless boundary — bad spells last a
    single copy, so the chain carries no correlation and the model degrades
    to i.i.d. draws at the stationary loss rate (:attr:`iid_loss`), letting
    the medium use its existing uniform-loss path bit-for-bit.  The same
    holds when ``p_enter_bad == 0`` (never leaves good) or when the two
    states share one loss value.
    """

    loss_good: float = 0.0
    loss_bad: float = 1.0
    p_enter_bad: float = 0.0
    burst_length: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_good < 1.0:
            raise ParameterError("loss_good must be in [0, 1)")
        if not 0.0 <= self.loss_bad <= 1.0:
            raise ParameterError("loss_bad must be in [0, 1]")
        if not 0.0 <= self.p_enter_bad < 1.0:
            raise ParameterError("p_enter_bad must be in [0, 1)")
        if self.burst_length < 1.0:
            raise ParameterError("burst_length must be at least 1 copy")

    @classmethod
    def iid(cls, loss: float) -> "GilbertElliott":
        """The degenerate single-state case: the existing i.i.d. loss knob."""
        if not 0.0 <= loss < 1.0:
            raise ParameterError("loss probability must be in [0, 1)")
        return cls(loss_good=loss, loss_bad=loss, p_enter_bad=0.0, burst_length=1.0)

    @classmethod
    def from_loss_rate(
        cls,
        loss: float,
        burst_length: float,
        *,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> "GilbertElliott":
        """Parameters hitting a long-run ``loss`` rate with the given bursts.

        Solves the stationary balance for ``p_enter_bad`` so that the mean
        per-copy loss equals ``loss`` while bad spells average
        ``burst_length`` copies.
        """
        if loss_bad <= loss_good:
            raise ParameterError("loss_bad must exceed loss_good for a burst model")
        if not loss_good <= loss <= loss_bad:
            raise ParameterError("target loss must lie between loss_good and loss_bad")
        bad_fraction = (loss - loss_good) / (loss_bad - loss_good)
        if bad_fraction >= 1.0:
            raise ParameterError("target loss pins the chain in the bad state")
        p_exit = 1.0 / burst_length
        p_enter = bad_fraction * p_exit / (1.0 - bad_fraction)
        if p_enter >= 1.0:
            raise ParameterError(
                f"loss={loss:g} with burst_length={burst_length:g} needs "
                "p_enter_bad >= 1; lengthen the bursts or lower the target"
            )
        return cls(
            loss_good=loss_good,
            loss_bad=loss_bad,
            p_enter_bad=p_enter,
            burst_length=burst_length,
        )

    @property
    def p_exit_bad(self) -> float:
        """Per-copy probability of leaving the bad state."""
        return 1.0 / self.burst_length

    @property
    def is_iid(self) -> bool:
        """Whether the chain carries no burst correlation (see class docs)."""
        return (
            self.p_enter_bad == 0.0
            or self.loss_good == self.loss_bad
            or self.burst_length == 1.0
        )

    @property
    def bad_fraction(self) -> float:
        """Stationary probability of the bad state."""
        if self.p_enter_bad == 0.0:
            return 0.0
        return self.p_enter_bad / (self.p_enter_bad + self.p_exit_bad)

    @property
    def iid_loss(self) -> float:
        """The stationary mean per-copy loss (the i.i.d. equivalent rate)."""
        pi = self.bad_fraction
        return pi * self.loss_bad + (1.0 - pi) * self.loss_good

    def to_spec(self) -> Dict[str, float]:
        """The explicit JSON-able field dict (see :mod:`repro.sim.specio`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_spec(cls, spec: Mapping) -> "GilbertElliott":
        """Build from a spec dict.

        Accepts the explicit field form (:meth:`to_spec`) or the shorthand
        ``{"loss": rate, "burst_length": mean}`` resolved through
        :meth:`from_loss_rate`.
        """
        spec = dict(spec)
        if "loss" in spec:
            loss = float(spec.pop("loss"))
            burst = float(spec.pop("burst_length", 5.0))
            if spec:
                raise ParameterError(
                    f"unknown gilbert-elliott shorthand keys: {sorted(spec)}"
                )
            return cls.from_loss_rate(loss, burst)
        unknown = set(spec) - set(cls.__dataclass_fields__)
        if unknown:
            raise ParameterError(f"unknown gilbert-elliott keys: {sorted(unknown)}")
        return cls(**{key: float(value) for key, value in spec.items()})

    def describe(self) -> str:
        if self.is_iid:
            return f"ge-iid(loss={self.iid_loss:g})"
        return (
            f"ge(good={self.loss_good:g}, bad={self.loss_bad:g}, "
            f"enter={self.p_enter_bad:g}, burst={self.burst_length:g})"
        )


class _Chain:
    """One directed link's live two-state chain (good=False / bad=True)."""

    __slots__ = ("params", "_rng", "bad")

    def __init__(self, params: GilbertElliott, rng: DeterministicRNG) -> None:
        self.params = params
        self._rng = rng
        self.bad = False

    def step(self) -> float:
        """Advance one copy and return the loss probability it sees.

        Exactly one RNG draw per copy, whatever the state — the chain's
        stream position is a pure function of how many copies crossed the
        link, so runs with identical traffic replay identical states.
        """
        draw = self._rng.randbelow(1 << 53) / float(1 << 53)
        if self.bad:
            if draw < self.params.p_exit_bad:
                self.bad = False
        elif draw < self.params.p_enter_bad:
            self.bad = True
        return self.params.loss_bad if self.bad else self.params.loss_good


class _ChainStore:
    """Lazily-created per-directed-link chains over one bound RNG.

    Chains are keyed by ``(sender, receiver)`` and forked from a *named*
    child of the store's RNG, so the set of links exercised never perturbs
    any other stream and chain state persists across membership churn.
    """

    def __init__(self, rng: Optional[DeterministicRNG] = None) -> None:
        self._rng = rng
        self._chains: Dict[Tuple[str, str], _Chain] = {}

    def bind(self, rng: DeterministicRNG) -> None:
        # `is None`: an explicitly supplied RNG must survive the medium's
        # own bind call (direct construction in tests, shared stores).
        if self._rng is None:
            self._rng = rng

    def step(self, params: GilbertElliott, sender: str, receiver: str) -> float:
        key = (sender, receiver)
        chain = self._chains.get(key)
        if chain is None:
            if self._rng is None:
                raise NetworkError(
                    "burst-loss chains need randomness: attach the link model "
                    "to a medium (which binds its 'links' RNG child) or pass "
                    "an rng explicitly"
                )
            chain = _Chain(params, self._rng.fork(f"ge/{sender}->{receiver}"))
            self._chains[key] = chain
        return chain.step()

    def states(self) -> Dict[Tuple[str, str], str]:
        """Snapshot of every live chain's state (test/debug hook)."""
        return {
            key: ("bad" if chain.bad else "good")
            for key, chain in sorted(self._chains.items())
        }


class GilbertElliottLink(LinkModel):
    """Burst loss on every directed link of an (optionally wrapped) model.

    One independent :class:`GilbertElliott` chain per directed link, seeded
    deterministically from the medium's ``links`` RNG child.  With an
    ``inner`` link model (e.g. a :class:`~repro.mobility.radio.RadioLink`),
    reachability comes from the inner model and the two loss processes
    compound; without one the ether is fully connected and the chain is the
    only loss source.

    Degenerate parameters (:attr:`GilbertElliott.is_iid`) never create
    chains and never draw randomness — the model is then exactly the
    constant-probability link the medium already knows how to drive.
    """

    def __init__(
        self,
        params: GilbertElliott,
        inner: Optional[LinkModel] = None,
        *,
        rng: Optional[DeterministicRNG] = None,
    ) -> None:
        self.params = params
        self.inner = inner
        self._chains = _ChainStore(rng)

    def bind(self, rng: DeterministicRNG) -> None:
        self._chains.bind(rng)
        if self.inner is not None:
            self.inner.bind(rng.fork("inner"))

    def reachable(self, sender: str, receiver: str) -> bool:
        if self.inner is not None:
            return self.inner.reachable(sender, receiver)
        return True

    def loss_probability(self, sender: str, receiver: str) -> float:
        """Stateful: each call is one physical copy advancing the chain."""
        if self.params.is_iid:
            burst = self.params.iid_loss
        else:
            burst = self._chains.step(self.params, sender, receiver)
        if self.inner is None:
            return burst
        inner = self.inner.loss_probability(sender, receiver)
        # Independent loss processes compound: survive both or lose the copy.
        return 1.0 - (1.0 - burst) * (1.0 - inner)

    def chain_states(self) -> Dict[Tuple[str, str], str]:
        """Per-directed-link chain states (test/debug hook)."""
        return self._chains.states()

    def describe(self) -> str:
        if self.inner is not None:
            return f"{self.params.describe()} over {self.inner.describe()}"
        return self.params.describe()


# ----------------------------------------------------------------- link class
@dataclass(frozen=True)
class LinkClass:
    """One kind of link: rates, propagation and loss, shared by a tier.

    ``bitrate_bps`` is the rate an ordinary member achieves transmitting on
    this link class (the *uplink* on asymmetric classes); ``reverse_bps``,
    when set, is the faster rate of deliveries descending toward lower tiers
    (the satellite downlink).  ``loss`` is either an i.i.d. per-copy float
    or a :class:`GilbertElliott` parameter set.
    """

    name: str
    bitrate_bps: float
    reverse_bps: Optional[float] = None
    propagation_delay_s: float = 0.0
    loss: Union[float, GilbertElliott] = 0.0

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ParameterError("link class bitrate must be positive")
        if self.reverse_bps is not None and self.reverse_bps <= 0:
            raise ParameterError("link class reverse bitrate must be positive")
        if self.propagation_delay_s < 0:
            raise ParameterError("propagation delay cannot be negative")
        if isinstance(self.loss, (int, float)) and not isinstance(self.loss, bool):
            loss = float(self.loss)
            if not 0.0 <= loss < 1.0:
                raise ParameterError("link class loss must be in [0, 1)")
            object.__setattr__(self, "loss", loss)
        elif not isinstance(self.loss, GilbertElliott):
            raise ParameterError(
                "link class loss must be a float or GilbertElliott parameters"
            )

    def rate_bps(self, *, descending: bool = False) -> float:
        """The serialization rate for one delivery direction."""
        if descending and self.reverse_bps is not None:
            return self.reverse_bps
        return self.bitrate_bps

    @property
    def iid_loss(self) -> Optional[float]:
        """The constant loss rate, or ``None`` when genuinely bursty."""
        if isinstance(self.loss, GilbertElliott):
            return self.loss.iid_loss if self.loss.is_iid else None
        return self.loss

    def describe(self) -> str:
        loss = self.loss.describe() if isinstance(self.loss, GilbertElliott) else f"{self.loss:g}"
        reverse = f"/{self.reverse_bps:g}" if self.reverse_bps is not None else ""
        return (
            f"{self.name}({self.bitrate_bps:g}{reverse} bps, "
            f"{self.propagation_delay_s * 1000.0:g} ms, loss={loss})"
        )


#: Named presets for the common tiers.  The satellite classes carry the
#: asymmetric 1 Mbps uplink / 10 Mbps downlink and a GEO-like 250 ms one-way
#: propagation; the ``-bursty`` variant adds correlated fades.
LINK_CLASSES: Dict[str, LinkClass] = {
    "ground": LinkClass("ground", bitrate_bps=2_000_000.0, propagation_delay_s=0.001),
    "aerial": LinkClass("aerial", bitrate_bps=1_000_000.0, propagation_delay_s=0.02),
    "satellite": LinkClass(
        "satellite",
        bitrate_bps=1_000_000.0,
        reverse_bps=10_000_000.0,
        propagation_delay_s=0.25,
    ),
    "satellite-bursty": LinkClass(
        "satellite-bursty",
        bitrate_bps=1_000_000.0,
        reverse_bps=10_000_000.0,
        propagation_delay_s=0.25,
        loss=GilbertElliott.from_loss_rate(0.08, 5.0),
    ),
}


def resolve_link_class(spec: object) -> LinkClass:
    """A :class:`LinkClass` from a preset name, field dict or instance."""
    if isinstance(spec, LinkClass):
        return spec
    if isinstance(spec, str):
        try:
            return LINK_CLASSES[spec]
        except KeyError:
            raise ParameterError(
                f"unknown link class preset {spec!r}; known: {sorted(LINK_CLASSES)}"
            ) from None
    if isinstance(spec, Mapping):
        spec = dict(spec)
        loss = spec.pop("loss", 0.0)
        if isinstance(loss, Mapping):
            loss = GilbertElliott.from_spec(loss)
        unknown = set(spec) - set(LinkClass.__dataclass_fields__)
        if unknown:
            raise ParameterError(f"unknown link class keys: {sorted(unknown)}")
        return LinkClass(loss=loss, **spec)
    raise ParameterError(f"cannot build a link class from {spec!r}")


def link_class_to_spec(cls: LinkClass) -> object:
    """Invert :func:`resolve_link_class` (presets collapse to their names)."""
    preset = LINK_CLASSES.get(cls.name)
    if preset is not None and preset == cls:
        return cls.name
    spec: Dict[str, object] = {"name": cls.name, "bitrate_bps": cls.bitrate_bps}
    if cls.reverse_bps is not None:
        spec["reverse_bps"] = cls.reverse_bps
    if cls.propagation_delay_s != 0.0:
        spec["propagation_delay_s"] = cls.propagation_delay_s
    if isinstance(cls.loss, GilbertElliott):
        spec["loss"] = cls.loss.to_spec()
    elif cls.loss != 0.0:
        spec["loss"] = cls.loss
    return spec


# ------------------------------------------------------------------- tier map
class TierMap:
    """Resolved node-to-tier assignment plus per-pair overrides.

    Tiers are ordered (their *rank*); every node has one *home* tier and
    gateways additionally participate in others.  Two nodes share a link iff
    they share a tier (or have an explicit pair override) — floods therefore
    cross tiers only through gateway nodes.  Nodes the map has never heard
    of (churn arrivals) live in the default (first) tier.
    """

    def __init__(
        self,
        classes: Mapping[str, LinkClass],
        home: Mapping[str, str],
        *,
        extra: Optional[Mapping[str, Tuple[str, ...]]] = None,
        overrides: Optional[Mapping[Tuple[str, str], LinkClass]] = None,
    ) -> None:
        if not classes:
            raise ParameterError("a tier map needs at least one tier")
        self.classes: Dict[str, LinkClass] = dict(classes)
        self.rank: Dict[str, int] = {name: i for i, name in enumerate(self.classes)}
        self.default_tier = next(iter(self.classes))
        self.home: Dict[str, str] = dict(home)
        self.extra: Dict[str, Tuple[str, ...]] = dict(extra or {})
        # Overrides apply to the unordered pair: store both orientations.
        self.overrides: Dict[Tuple[str, str], LinkClass] = {}
        for (a, b), cls in (overrides or {}).items():
            self.overrides[(a, b)] = cls
            self.overrides[(b, a)] = cls
        for node, tier in self.home.items():
            if tier not in self.classes:
                raise ParameterError(f"node {node!r} homed in unknown tier {tier!r}")
        for node, tiers in self.extra.items():
            for tier in tiers:
                if tier not in self.classes:
                    raise ParameterError(
                        f"gateway {node!r} bridges unknown tier {tier!r}"
                    )

    # ---------------------------------------------------------- membership
    def home_tier(self, node: str) -> str:
        """The node's home tier (default tier for unknown/churn nodes)."""
        return self.home.get(node, self.default_tier)

    def tiers_of(self, node: str) -> Tuple[str, ...]:
        """Every tier the node participates in, home first."""
        return (self.home_tier(node),) + self.extra.get(node, ())

    def is_gateway(self, node: str) -> bool:
        return len(self.tiers_of(node)) > 1

    def gateways(self) -> List[str]:
        """Every multi-homed node, sorted."""
        return sorted(node for node in self.extra if self.extra[node])

    def home_class(self, node: str) -> LinkClass:
        return self.classes[self.home_tier(node)]

    # --------------------------------------------------------------- links
    def link_class(self, a: str, b: str) -> Optional[LinkClass]:
        """The class of the direct ``a``–``b`` link, ``None`` if unlinked.

        Pair overrides win; otherwise the pair links over the first-listed
        (lowest-rank) tier both participate in.
        """
        override = self.overrides.get((a, b))
        if override is not None:
            return override
        shared = set(self.tiers_of(a)) & set(self.tiers_of(b))
        if not shared:
            return None
        tier = min(shared, key=self.rank.__getitem__)
        return self.classes[tier]

    def latency_terms(self, sender: str, receiver: str) -> Tuple[float, float, bool]:
        """``(rate_bps, propagation_s, cross_tier)`` for one delivery.

        Directly-linked pairs use their link class, with the descending rate
        when the sender's home tier outranks the receiver's.  Pairs with no
        shared tier (their copies travel through gateways) are charged at
        the *slower* of the two home classes with both propagation delays —
        the conservative bound the gateway path cannot beat.
        """
        descending = self.rank[self.home_tier(sender)] > self.rank[self.home_tier(receiver)]
        cls = self.link_class(sender, receiver)
        if cls is not None:
            cross = self.home_tier(sender) != self.home_tier(receiver)
            return cls.rate_bps(descending=descending), cls.propagation_delay_s, cross
        ca = self.home_class(sender)
        cb = self.home_class(receiver)
        rate = min(ca.rate_bps(descending=descending), cb.rate_bps(descending=descending))
        return rate, ca.propagation_delay_s + cb.propagation_delay_s, True

    def describe(self) -> str:
        tiers = ", ".join(
            f"{name}[{sum(1 for t in self.home.values() if t == name)}]"
            for name in self.classes
        )
        return f"tiers({tiers}; gateways={len(self.gateways())})"


class TieredLink(LinkModel):
    """The :class:`~repro.network.medium.LinkModel` over a :class:`TierMap`.

    Reachability: the pair shares a tier (or has an override).  Loss: the
    link class's knob — a constant, or one :class:`GilbertElliott` chain per
    directed link (seeded from the medium's ``links`` RNG child; degenerate
    parameter sets never draw randomness).
    """

    def __init__(
        self, tier_map: TierMap, *, rng: Optional[DeterministicRNG] = None
    ) -> None:
        self.tier_map = tier_map
        self._chains = _ChainStore(rng)

    def bind(self, rng: DeterministicRNG) -> None:
        self._chains.bind(rng)

    def reachable(self, sender: str, receiver: str) -> bool:
        if sender == receiver:
            return False
        return self.tier_map.link_class(sender, receiver) is not None

    def loss_probability(self, sender: str, receiver: str) -> float:
        """Stateful for bursty classes: each call is one physical copy."""
        cls = self.tier_map.link_class(sender, receiver)
        if cls is None:
            return 1.0
        if isinstance(cls.loss, GilbertElliott):
            if cls.loss.is_iid:
                return cls.loss.iid_loss
            return self._chains.step(cls.loss, sender, receiver)
        return cls.loss

    def chain_states(self) -> Dict[Tuple[str, str], str]:
        """Per-directed-link chain states (test/debug hook)."""
        return self._chains.states()

    def describe(self) -> str:
        return self.tier_map.describe()


# ---------------------------------------------------------------- tier config
@dataclass(frozen=True)
class TierConfig:
    """Declarative, spec-serializable tier layout for a scenario.

    Attributes
    ----------
    tiers:
        Ordered ``(tier_name, link_class)`` pairs — a mapping, or a sequence
        of pairs; classes may be preset names, field dicts or
        :class:`LinkClass` instances.  The first tier is the *default*: it
        absorbs every node not explicitly placed elsewhere (including churn
        arrivals).
    members:
        Per-tier node counts for the non-default tiers (``{tier: count}``).
        Assignment is deterministic in universe order: non-default tiers are
        filled from the *end* of the member list (the controller,
        ``member-000``, always stays in the default tier), in listed tier
        order.
    gateways:
        ``{"tierA:tierB": count}`` — how many nodes homed in ``tierA``
        additionally participate in ``tierB``.  Chosen as the *first*
        ``count`` nodes assigned to ``tierA``: when ``tierA`` is the default
        tier that starts with the controller, whom schedule churn never
        removes, so the bridge survives partisan bursts (drop a gateway
        explicitly — an override or a leave event — to study bridge loss).
    overrides:
        ``{"nodeA|nodeB": link_class}`` explicit per-pair classes.
    max_hops:
        Flood TTL on the resulting :class:`~repro.mobility.tiered.TieredMedium`.
    loss_floor:
        Floor applied to every *constant* class loss (the campaign ``loss``
        axis folds in here); Gilbert–Elliott classes already model loss and
        are left alone.
    """

    tiers: Tuple[Tuple[str, LinkClass], ...]
    members: Tuple[Tuple[str, int], ...] = ()
    gateways: Tuple[Tuple[str, str, int], ...] = ()
    overrides: Tuple[Tuple[str, str, LinkClass], ...] = ()
    max_hops: int = 4
    loss_floor: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "tiers", self._normalize_tiers(self.tiers))
        names = [name for name, _ in self.tiers]
        if len(set(names)) != len(names):
            raise ParameterError(f"tier names must be unique, got {names}")
        known = set(names)
        object.__setattr__(self, "members", self._normalize_members(self.members, known, names[0]))
        object.__setattr__(self, "gateways", self._normalize_gateways(self.gateways, known))
        object.__setattr__(self, "overrides", self._normalize_overrides(self.overrides))
        if self.max_hops < 1:
            raise ParameterError("max_hops must be at least 1")
        if not 0.0 <= self.loss_floor < 1.0:
            raise ParameterError("loss_floor must be in [0, 1)")
        if self.loss_floor > 0.0:
            floored = tuple(
                (name, self._floor_class(cls)) for name, cls in self.tiers
            )
            object.__setattr__(self, "tiers", floored)

    # ------------------------------------------------------- normalization
    @staticmethod
    def _normalize_tiers(value: object) -> Tuple[Tuple[str, LinkClass], ...]:
        if isinstance(value, Mapping):
            items: Sequence = list(value.items())
        elif isinstance(value, Sequence) and not isinstance(value, str):
            items = list(value)
        else:
            raise ParameterError("tiers must be a mapping or (name, class) pairs")
        if not items:
            raise ParameterError("a tier config needs at least one tier")
        normalized = []
        for entry in items:
            if isinstance(entry, str):
                # Bare preset name: the tier is named after its class.
                normalized.append((entry, resolve_link_class(entry)))
                continue
            if not isinstance(entry, Sequence) or len(entry) != 2:
                raise ParameterError(
                    f"tier entries must be names or (name, class) pairs, got {entry!r}"
                )
            name, cls = entry
            normalized.append((str(name), resolve_link_class(cls)))
        return tuple(normalized)

    @staticmethod
    def _normalize_members(
        value: object, known: set, default: str
    ) -> Tuple[Tuple[str, int], ...]:
        if isinstance(value, Mapping):
            items = list(value.items())
        else:
            items = [tuple(entry) for entry in value]
        normalized = []
        for tier, count in items:
            tier = str(tier)
            if tier not in known:
                raise ParameterError(f"members references unknown tier {tier!r}")
            if tier == default:
                raise ParameterError(
                    f"the default tier {default!r} takes the remaining members; "
                    "size the others instead"
                )
            count = int(count)
            if count < 1:
                raise ParameterError(f"tier {tier!r} member count must be positive")
            normalized.append((tier, count))
        return tuple(normalized)

    @staticmethod
    def _normalize_gateways(value: object, known: set) -> Tuple[Tuple[str, str, int], ...]:
        if isinstance(value, Mapping):
            items = []
            for key, count in value.items():
                parts = str(key).split(":")
                if len(parts) != 2:
                    raise ParameterError(
                        f"gateway keys are 'tierA:tierB', got {key!r}"
                    )
                items.append((parts[0], parts[1], count))
        else:
            items = [tuple(entry) for entry in value]
        normalized = []
        for home, bridged, count in items:
            home, bridged = str(home), str(bridged)
            if home not in known or bridged not in known:
                raise ParameterError(
                    f"gateway {home}:{bridged} references an unknown tier"
                )
            if home == bridged:
                raise ParameterError("a gateway must bridge two distinct tiers")
            count = int(count)
            if count < 1:
                raise ParameterError("gateway counts must be positive")
            normalized.append((home, bridged, count))
        return tuple(normalized)

    @staticmethod
    def _normalize_overrides(value: object) -> Tuple[Tuple[str, str, LinkClass], ...]:
        if isinstance(value, Mapping):
            items = []
            for key, cls in value.items():
                parts = str(key).split("|")
                if len(parts) != 2:
                    raise ParameterError(
                        f"override keys are 'nodeA|nodeB', got {key!r}"
                    )
                items.append((parts[0], parts[1], cls))
        else:
            items = [tuple(entry) for entry in value]
        return tuple(
            (str(a), str(b), resolve_link_class(cls)) for a, b, cls in items
        )

    def _floor_class(self, cls: LinkClass) -> LinkClass:
        if isinstance(cls.loss, GilbertElliott) or cls.loss >= self.loss_floor:
            return cls
        return dataclasses.replace(cls, loss=self.loss_floor)

    # ------------------------------------------------------------ building
    @property
    def degenerate_loss(self) -> Optional[float]:
        """The single uniform loss knob this config collapses to, or ``None``.

        A one-tier config with no gateways or overrides and a constant (or
        i.i.d. Gilbert–Elliott) loss *is* the classic flat broadcast domain;
        the runner then builds the historic medium so such scenarios stay
        bit-identical to the pre-tier paths.
        """
        if len(self.tiers) != 1 or self.gateways or self.overrides:
            return None
        return self.tiers[0][1].iid_loss

    def build_map(self, names: Sequence[str]) -> TierMap:
        """Assign ``names`` (universe order) to tiers; see class docs."""
        classes = dict(self.tiers)
        pool = list(names)
        home: Dict[str, str] = {}
        assigned: Dict[str, List[str]] = {tier: [] for tier in classes}
        for tier, count in self.members:
            if count >= len(pool):
                raise ParameterError(
                    f"tier {tier!r} wants {count} members but only "
                    f"{len(pool)} remain (the default tier cannot be empty)"
                )
            taken = pool[-count:]
            del pool[-count:]
            for node in taken:
                home[node] = tier
            assigned[tier] = taken
        default = self.tiers[0][0]
        for node in pool:
            home[node] = default
        assigned[default] = list(pool)
        extra: Dict[str, Tuple[str, ...]] = {}
        for home_tier, bridged, count in self.gateways:
            candidates = assigned[home_tier]
            if count > len(candidates):
                raise ParameterError(
                    f"gateway {home_tier}:{bridged} wants {count} nodes but "
                    f"tier {home_tier!r} only has {len(candidates)}"
                )
            for node in candidates[:count]:
                extra[node] = extra.get(node, ()) + (bridged,)
        overrides = {(a, b): cls for a, b, cls in self.overrides}
        return TierMap(classes, home, extra=extra, overrides=overrides)

    def to_spec(self) -> Dict[str, object]:
        """The JSON-able spec dict (see :mod:`repro.sim.specio`)."""
        spec: Dict[str, object] = {
            "tiers": [[name, link_class_to_spec(cls)] for name, cls in self.tiers],
        }
        if self.members:
            spec["members"] = {tier: count for tier, count in self.members}
        if self.gateways:
            spec["gateways"] = {
                f"{home}:{bridged}": count for home, bridged, count in self.gateways
            }
        if self.overrides:
            spec["overrides"] = {
                f"{a}|{b}": link_class_to_spec(cls) for a, b, cls in self.overrides
            }
        if self.max_hops != 4:
            spec["max_hops"] = self.max_hops
        if self.loss_floor != 0.0:
            spec["loss_floor"] = self.loss_floor
        return spec

    def describe(self) -> str:
        tiers = ", ".join(name for name, _ in self.tiers)
        return f"tiers[{tiers}]"
