"""DSA over a Schnorr group (the "BD with 1024-bit DSA" baseline).

Standard FIPS-186 style DSA: the public key is ``y = g^x mod p`` in the same
kind of (1024-bit ``p``, 160-bit ``q``) group the GKA uses; a signature is the
pair ``(r, s)`` of two 160-bit values, i.e. 320 bits on the wire, matching the
paper's Table 3 footnote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..backends.registry import active_backend
from ..exceptions import ParameterError
from ..groups.schnorr import SchnorrGroup
from ..hashing.hashfuncs import HashFunction
from ..mathutils.modular import modinv
from ..mathutils.rand import DeterministicRNG
from .base import BatchItem, KeyPair, OperationCount, Signature, SignatureScheme

__all__ = ["DSASignatureScheme", "DSAKeyPair"]

#: Verification memo bound (see DSASignatureScheme.verify); entries are only
#: re-hit within one broadcast round, so overflow simply resets the memo.
_VERIFY_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class DSAKeyPair:
    """A DSA key pair: private ``x`` and public ``y = g^x mod p``."""

    private: int
    public: int


class DSASignatureScheme(SignatureScheme):
    """DSA signing/verification over a :class:`SchnorrGroup`."""

    name = "dsa"

    def __init__(self, group: SchnorrGroup, hash_function: HashFunction | None = None) -> None:
        self.group = group
        self.hash_function = hash_function or HashFunction(output_bits=group.q_bits)
        #: (y, message, r, s) -> outcome; see :meth:`verify`.
        self._verify_cache: dict = {}

    # -------------------------------------------------------------- key mgmt
    def generate_keypair(self, rng: DeterministicRNG) -> DSAKeyPair:
        """Generate ``x`` uniform in ``Z_q^*`` and ``y = g^x``."""
        x = self.group.random_exponent(rng)
        y = self.group.exp_g(x)
        return DSAKeyPair(private=x, public=y)

    # -------------------------------------------------------------- interface
    @property
    def signature_bits(self) -> int:
        """Two ``|q|``-bit values (320 bits for the paper's 160-bit ``q``)."""
        return 2 * self.group.q_bits

    def sign(self, private_key, message: bytes, rng: DeterministicRNG) -> Signature:
        """Produce ``(r, s)`` with ``r = (g^k mod p) mod q``.

        The full commitment ``v = g^k mod p`` rides along in the signature's
        ``aux`` mapping: ``r`` alone cannot be lifted back to the group
        element the batch equation needs, so :meth:`batch_verify` consumes
        ``v`` where present (and falls back to per-item verification where
        not).  Like the verification memo, this is a host-side detail —
        ``wire_bits`` stays the paper's 320 bits, ``v`` never reaches the
        wire encoding or the energy model, and transcripts are unchanged.
        """
        x = private_key.private if isinstance(private_key, DSAKeyPair) else int(private_key)
        q = self.group.q
        digest = self.hash_function.hash_to_zq(message, q=q)
        while True:
            k = self.group.random_exponent(rng)
            v = self.group.exp_g(k)
            r = v % q
            if r == 0:
                continue
            s = (modinv(k, q) * (digest + x * r)) % q
            if s != 0:
                break
        return Signature(
            scheme=self.name,
            components={"r": r, "s": s},
            wire_bits=self.signature_bits,
            aux={"v": v},
        )

    def verify(self, public_key, message: bytes, signature: Signature) -> bool:
        """Standard DSA verification: check ``r == (g^{u1} y^{u2} mod p) mod q``.

        Verification is a pure function of ``(y, message, r, s)`` and in the
        broadcast protocols every one of the ``n - 1`` receivers verifies the
        *same* triple, so the outcome is memoised per scheme instance.  Each
        receiver still records its own verification cost — the memo saves
        simulation host time, not modelled device energy.
        """
        y = public_key.public if isinstance(public_key, DSAKeyPair) else int(public_key)
        q = self.group.q
        r, s = signature.component("r"), signature.component("s")
        if not (0 < r < q and 0 < s < q):
            return False
        key = (y, message, r, s)
        cached = self._verify_cache.get(key)
        if cached is not None:
            return cached
        result = self._verify_uncached(y, message, r, s)
        if len(self._verify_cache) >= _VERIFY_CACHE_LIMIT:
            # Entries are only ever re-hit within one broadcast round; a full
            # reset on overflow keeps memory bounded over long scenario sweeps.
            self._verify_cache.clear()
        self._verify_cache[key] = result
        return result

    def _verify_uncached(self, y: int, message: bytes, r: int, s: int) -> bool:
        q = self.group.q
        digest = self.hash_function.hash_to_zq(message, q=q)
        try:
            w = modinv(s, q)
        except ParameterError:
            return False
        u1 = (digest * w) % q
        u2 = (r * w) % q
        v = (self.group.exp_g(u1) * self.group.power(y, u2)) % self.group.p % q
        return v == r

    def _memoise(self, key: tuple, result: bool) -> bool:
        if len(self._verify_cache) >= _VERIFY_CACHE_LIMIT:
            self._verify_cache.clear()
        self._verify_cache[key] = result
        return result

    # --------------------------------------------------------- batch verify
    has_batch_form = True

    def batch_verify(
        self, items: Sequence[BatchItem], rng: DeterministicRNG, **kwargs: object
    ) -> List[bool]:
        """Small-exponent batch test over a random linear combination.

        With ``v_i = g^{k_i} mod p`` recovered from each signature's aux data,
        a valid signature satisfies ``v_i == g^{u1_i} · y_i^{u2_i} mod p``, so
        for random 64-bit coefficients ``l_i`` the whole batch satisfies::

            prod v_i^{l_i}  ==  g^{sum l_i·u1_i mod q} · prod y_i^{l_i·u2_i mod q}

        — two simultaneous multi-exponentiations replacing ``2·k`` full ones.
        Items that fail structural checks, lack a consistent commitment, or
        hit the verification memo never enter the combination; they take the
        per-item path, so accept/reject decisions are always exactly those of
        loop verification.  When a combined check fails, the batch is bisected
        until the culprits are isolated by ground-truth individual verifies.
        """
        if kwargs:
            raise ParameterError(f"unknown verify options: {sorted(kwargs)}")
        q, p = self.group.q, self.group.p
        results: List[Optional[bool]] = [None] * len(items)
        pending: List[tuple] = []  # (index, y, message, r, s, v, u1, u2)
        for index, (public_key, message, signature) in enumerate(items):
            y = public_key.public if isinstance(public_key, DSAKeyPair) else int(public_key)
            r, s = signature.component("r"), signature.component("s")
            if not (0 < r < q and 0 < s < q):
                results[index] = False
                continue
            cached = self._verify_cache.get((y, message, r, s))
            if cached is not None:
                results[index] = cached
                continue
            v = signature.aux.get("v")
            if not isinstance(v, int) or not 1 <= v < p or v % q != r:
                # No usable commitment: the per-item verify is ground truth.
                results[index] = self.verify(public_key, message, signature)
                continue
            digest = self.hash_function.hash_to_zq(message, q=q)
            try:
                w = modinv(s, q)
            except ParameterError:
                results[index] = self._memoise((y, message, r, s), False)
                continue
            pending.append((index, y, message, r, s, v, (digest * w) % q, (r * w) % q))
        self._batch_check(pending, results, rng)
        return [bool(outcome) for outcome in results]

    def _batch_check(
        self, entries: List[tuple], results: List[Optional[bool]], rng: DeterministicRNG
    ) -> None:
        """Combined check with bisection; fills ``results`` at entry indices."""
        if not entries:
            return
        if len(entries) == 1:
            index, y, message, r, s, _, _, _ = entries[0]
            results[index] = self._memoise(
                (y, message, r, s), self._verify_uncached(y, message, r, s)
            )
            return
        q, p = self.group.q, self.group.p
        coefficients = [1 + rng.randbelow((1 << 64) - 1) for _ in entries]
        commitment_bases: List[int] = []
        commitment_exps: List[int] = []
        key_bases: List[int] = []
        key_exps: List[int] = []
        combined_u1 = 0
        for (_, y, _, _, _, v, u1, u2), l in zip(entries, coefficients):
            commitment_bases.append(v)
            commitment_exps.append(l)
            key_bases.append(y)
            key_exps.append((l * u2) % q)
            combined_u1 = (combined_u1 + l * u1) % q
        # prod v_i^{l_i}  ==  g^{sum l_i·u1_i} · prod y_i^{l_i·u2_i}  (mod p)
        backend = active_backend()
        left = backend.multi_exp(commitment_bases, commitment_exps, p)
        right = (self.group.exp_g(combined_u1) * backend.multi_exp(key_bases, key_exps, p)) % p
        if left == right:
            for index, y, message, r, s, _, _, _ in entries:
                results[index] = self._memoise((y, message, r, s), True)
            return
        half = len(entries) // 2
        self._batch_check(entries[:half], results, rng)
        self._batch_check(entries[half:], results, rng)

    # ------------------------------------------------------------- op counts
    def sign_cost(self) -> OperationCount:
        """One modular exponentiation dominates DSA signing (Table 2: "Sign. Gen. DSA")."""
        return OperationCount(modexp=1, hash_calls=1, sign_gen=1)

    def verify_cost(self) -> OperationCount:
        """Two exponentiations dominate DSA verification (Table 2: "Sign. Ver. DSA")."""
        return OperationCount(modexp=2, hash_calls=1, sign_verify=1)
