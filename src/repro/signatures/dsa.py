"""DSA over a Schnorr group (the "BD with 1024-bit DSA" baseline).

Standard FIPS-186 style DSA: the public key is ``y = g^x mod p`` in the same
kind of (1024-bit ``p``, 160-bit ``q``) group the GKA uses; a signature is the
pair ``(r, s)`` of two 160-bit values, i.e. 320 bits on the wire, matching the
paper's Table 3 footnote.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ParameterError
from ..groups.schnorr import SchnorrGroup
from ..hashing.hashfuncs import HashFunction
from ..mathutils.modular import modinv
from ..mathutils.rand import DeterministicRNG
from .base import KeyPair, OperationCount, Signature, SignatureScheme

__all__ = ["DSASignatureScheme", "DSAKeyPair"]

#: Verification memo bound (see DSASignatureScheme.verify); entries are only
#: re-hit within one broadcast round, so overflow simply resets the memo.
_VERIFY_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class DSAKeyPair:
    """A DSA key pair: private ``x`` and public ``y = g^x mod p``."""

    private: int
    public: int


class DSASignatureScheme(SignatureScheme):
    """DSA signing/verification over a :class:`SchnorrGroup`."""

    name = "dsa"

    def __init__(self, group: SchnorrGroup, hash_function: HashFunction | None = None) -> None:
        self.group = group
        self.hash_function = hash_function or HashFunction(output_bits=group.q_bits)
        #: (y, message, r, s) -> outcome; see :meth:`verify`.
        self._verify_cache: dict = {}

    # -------------------------------------------------------------- key mgmt
    def generate_keypair(self, rng: DeterministicRNG) -> DSAKeyPair:
        """Generate ``x`` uniform in ``Z_q^*`` and ``y = g^x``."""
        x = self.group.random_exponent(rng)
        y = self.group.exp_g(x)
        return DSAKeyPair(private=x, public=y)

    # -------------------------------------------------------------- interface
    @property
    def signature_bits(self) -> int:
        """Two ``|q|``-bit values (320 bits for the paper's 160-bit ``q``)."""
        return 2 * self.group.q_bits

    def sign(self, private_key, message: bytes, rng: DeterministicRNG) -> Signature:
        """Produce ``(r, s)`` with ``r = (g^k mod p) mod q``."""
        x = private_key.private if isinstance(private_key, DSAKeyPair) else int(private_key)
        q = self.group.q
        digest = self.hash_function.hash_to_zq(message, q=q)
        while True:
            k = self.group.random_exponent(rng)
            r = self.group.exp_g(k) % q
            if r == 0:
                continue
            s = (modinv(k, q) * (digest + x * r)) % q
            if s != 0:
                break
        return Signature(scheme=self.name, components={"r": r, "s": s}, wire_bits=self.signature_bits)

    def verify(self, public_key, message: bytes, signature: Signature) -> bool:
        """Standard DSA verification: check ``r == (g^{u1} y^{u2} mod p) mod q``.

        Verification is a pure function of ``(y, message, r, s)`` and in the
        broadcast protocols every one of the ``n - 1`` receivers verifies the
        *same* triple, so the outcome is memoised per scheme instance.  Each
        receiver still records its own verification cost — the memo saves
        simulation host time, not modelled device energy.
        """
        y = public_key.public if isinstance(public_key, DSAKeyPair) else int(public_key)
        q = self.group.q
        r, s = signature.component("r"), signature.component("s")
        if not (0 < r < q and 0 < s < q):
            return False
        key = (y, message, r, s)
        cached = self._verify_cache.get(key)
        if cached is not None:
            return cached
        result = self._verify_uncached(y, message, r, s)
        if len(self._verify_cache) >= _VERIFY_CACHE_LIMIT:
            # Entries are only ever re-hit within one broadcast round; a full
            # reset on overflow keeps memory bounded over long scenario sweeps.
            self._verify_cache.clear()
        self._verify_cache[key] = result
        return result

    def _verify_uncached(self, y: int, message: bytes, r: int, s: int) -> bool:
        q = self.group.q
        digest = self.hash_function.hash_to_zq(message, q=q)
        try:
            w = modinv(s, q)
        except ParameterError:
            return False
        u1 = (digest * w) % q
        u2 = (r * w) % q
        v = (self.group.exp_g(u1) * self.group.power(y, u2)) % self.group.p % q
        return v == r

    # ------------------------------------------------------------- op counts
    def sign_cost(self) -> OperationCount:
        """One modular exponentiation dominates DSA signing (Table 2: "Sign. Gen. DSA")."""
        return OperationCount(modexp=1, hash_calls=1, sign_gen=1)

    def verify_cost(self) -> OperationCount:
        """Two exponentiations dominate DSA verification (Table 2: "Sign. Ver. DSA")."""
        return OperationCount(modexp=2, hash_calls=1, sign_verify=1)
