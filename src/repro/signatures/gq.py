"""The Guillou–Quisquater (GQ) ID-based signature variant of the paper.

Section 3 of the paper specifies the scheme the proposed protocol is built on:

* **Setup** — the PKG picks an RSA-style modulus ``n = p'·q'``, exponents
  ``e, d`` with ``e·d = 1 (mod phi(n))`` and a hash ``H``.
* **Extract** — the secret key for identity ``ID`` is ``S_ID = H(ID)^d mod n``.
* **Sign** — pick ``tau``, compute ``t = tau^e``, challenge ``c = H(t, M)``
  and response ``s = tau · S_ID^c mod n``; the signature is ``(s, c)``.
* **Verify** — accept iff ``c = H(s^e · H(ID)^{-c}, M)``.

The proposed GKA protocol does not use plain Sign/Verify for the Round 2
messages; it splits the signature into a Round 1 **commitment** ``t_i`` and a
Round 2 **response** ``s_i`` over the *common* challenge ``c = H(T, Z)``,
which allows every member to verify all other members with a **single batch
equation** (the paper's equation (2)):

    c = H( (prod s_i)^e · (prod H(U_i))^{-c} , Z )

This module provides both the plain scheme (used by the Join/Merge protocol
messages) and the split/batch operations (used by the initial GKA, Leave and
Partition protocols).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..backends.registry import active_backend
from ..exceptions import BatchVerificationError, ParameterError
from ..hashing.hashfuncs import HashFunction
from ..mathutils.modular import product_mod
from ..mathutils.primes import RSAModulus
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import int_to_bytes
from .base import OperationCount, Signature, SignatureScheme

__all__ = [
    "GQParameters",
    "GQPrivateKey",
    "GQSignatureScheme",
    "gq_commitment",
    "gq_response",
    "gq_batch_verify",
    "gq_signature_bits",
]


@dataclass(frozen=True)
class GQParameters:
    """Public GQ parameters ``(n, e, H)`` shared by all users.

    The master key ``(p', q', d)`` stays with the PKG
    (:class:`repro.pki.pkg.PrivateKeyGenerator`); user-side code only ever
    sees this object plus its own :class:`GQPrivateKey`.
    """

    n: int
    e: int
    hash_function: HashFunction

    def __post_init__(self) -> None:
        if self.n <= 3 or self.e <= 1:
            raise ParameterError("degenerate GQ parameters")

    @property
    def modulus_bits(self) -> int:
        """Bit size of the modulus ``n`` (1024 for the paper's parameters)."""
        return self.n.bit_length()

    @property
    def challenge_bits(self) -> int:
        """Bit size of the challenge ``c`` (the hash output length ``l``)."""
        return self.hash_function.output_bits

    def identity_public_key(self, identity: bytes) -> int:
        """The ID-derived public key ``H(ID) in Z_n^*``.

        Memoised: the map is a pure function of the identity bytes (given
        fixed ``n`` and ``H``), and batch verification evaluates it for every
        signer at every verifier — ``n^2`` times per protocol round — which
        at scenario scale would otherwise be dominated by hashing.
        """
        cache = self.__dict__.get("_hid_cache")
        if cache is None:
            cache = {}
            # Frozen dataclass: install the cache via object.__setattr__.
            object.__setattr__(self, "_hid_cache", cache)
        value = cache.get(identity)
        if value is None:
            value = cache[identity] = self.hash_function.identity_to_zn(identity, self.n)
        return value


@dataclass(frozen=True)
class GQPrivateKey:
    """A user's extracted secret ``S_ID = H(ID)^d mod n``."""

    identity: bytes
    secret: int

    def __repr__(self) -> str:  # avoid leaking the secret in logs
        return f"GQPrivateKey(identity={self.identity!r})"


def gq_signature_bits(params: GQParameters) -> int:
    """Wire size of a GQ signature ``(s, c)``: |n| + l bits (1184 in the paper)."""
    return params.modulus_bits + params.challenge_bits


class GQSignatureScheme(SignatureScheme):
    """Plain (non-batch) GQ signing and verification.

    Parameters
    ----------
    params:
        The public parameters issued by the PKG.
    """

    name = "gq"

    def __init__(self, params: GQParameters) -> None:
        self.params = params

    # -------------------------------------------------------------- interface
    @property
    def signature_bits(self) -> int:
        """Nominal wire size of one signature in bits."""
        return gq_signature_bits(self.params)

    def sign(self, private_key: GQPrivateKey, message: bytes, rng: DeterministicRNG) -> Signature:
        """Sign ``message``: ``t = tau^e``, ``c = H(t, M)``, ``s = tau·S_ID^c``."""
        n, e = self.params.n, self.params.e
        backend = active_backend()
        tau = rng.zn_star(n)
        t = backend.modexp(tau, e, n)
        c = self.params.hash_function.challenge(int_to_bytes(t), message)
        s = (tau * backend.modexp(private_key.secret, c, n)) % n
        return Signature(
            scheme=self.name,
            components={"s": s, "c": c},
            wire_bits=self.signature_bits,
        )

    def verify(self, public_key: bytes | int, message: bytes, signature: Signature) -> bool:
        """Verify ``(s, c)`` for an identity.

        ``public_key`` may be the identity bytes (hashed internally) or the
        pre-computed ``H(ID)`` integer.
        """
        n, e = self.params.n, self.params.e
        if isinstance(public_key, (bytes, bytearray)):
            hid = self.params.identity_public_key(bytes(public_key))
        else:
            hid = int(public_key) % n
        s = signature.component("s") % n
        c = signature.component("c")
        if s == 0:
            return False
        backend = active_backend()
        try:
            # One simultaneous multi-exp: s^e · H(ID)^{-c} mod n.
            check = backend.multi_exp([s, hid], [e, -c], n)
        except ParameterError:
            return False
        expected = self.params.hash_function.challenge(int_to_bytes(check), message)
        return expected == c

    # ------------------------------------------------------------- op counts
    def sign_cost(self) -> OperationCount:
        """One GQ signature generation (priced as one "GQ Sign" in Table 2)."""
        return OperationCount(modexp=2, hash_calls=1, sign_gen=1, modmul=1)

    def verify_cost(self) -> OperationCount:
        """One GQ signature verification (priced as one "GQ Verify" in Table 2)."""
        return OperationCount(modexp=2, hash_calls=1, sign_verify=1, modmul=1)


# ---------------------------------------------------------------------------
# Split/batch operations used by the GKA protocols
# ---------------------------------------------------------------------------

def gq_commitment(params: GQParameters, rng: DeterministicRNG) -> tuple:
    """Round 1 commitment: draw ``tau in Z_n^*`` and return ``(tau, t = tau^e mod n)``."""
    tau = rng.zn_star(params.n)
    t = active_backend().modexp(tau, params.e, params.n)
    return tau, t


def gq_response(params: GQParameters, private_key: GQPrivateKey, tau: int, challenge: int) -> int:
    """Round 2 response ``s_i = tau_i · S_Ui^c mod n`` for the common challenge."""
    return (tau * active_backend().modexp(private_key.secret, challenge, params.n)) % params.n


def gq_batch_verify(
    params: GQParameters,
    identities: Sequence[bytes],
    responses: Sequence[int],
    challenge: int,
    bound_data: bytes,
) -> bool:
    """The paper's batch verification equation (2).

    Checks ``challenge == H( (prod s_i)^e · (prod H(U_i))^{-c}, bound_data )``
    where ``bound_data`` is the byte encoding of ``Z`` (the product of all
    Round 1 keying materials), binding the signatures to the key agreement
    transcript.

    Returns ``True``/``False``; callers that must follow the paper's
    "all members will retransmit" behaviour raise
    :class:`~repro.exceptions.BatchVerificationError` on ``False``.
    """
    if len(identities) != len(responses):
        raise ParameterError("identities and responses must align")
    if not identities:
        raise ParameterError("batch verification needs at least one signer")
    n, e = params.n, params.e
    s_product = product_mod(responses, n)
    hid_product = product_mod(
        (params.identity_public_key(identity) for identity in identities), n
    )
    try:
        aggregate = active_backend().multi_exp(
            [s_product, hid_product], [e, -challenge], n
        )
    except ParameterError:
        return False
    expected = params.hash_function.challenge(int_to_bytes(aggregate), bound_data)
    return expected == challenge
