"""ECDSA (the "BD with 160-bit ECDSA" baseline).

Standard ECDSA over a named prime-field curve; with secp160r1 the signature is
two 160-bit scalars (320 bits), matching the paper's Table 3 footnote, and the
certificate carrying the public key is the 86-byte ECDSA certificate of
Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ParameterError
from ..groups.curves import SECP160R1
from ..groups.elliptic import ECPoint, EllipticCurve
from ..hashing.hashfuncs import HashFunction
from ..mathutils.modular import modinv
from ..mathutils.rand import DeterministicRNG
from .base import OperationCount, Signature, SignatureScheme

__all__ = ["ECDSASignatureScheme", "ECDSAKeyPair"]

#: Verification memo bound (see ECDSASignatureScheme.verify).
_VERIFY_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class ECDSAKeyPair:
    """An ECDSA key pair: private scalar ``d`` and public point ``Q = d·G``."""

    private: int
    public: ECPoint


class ECDSASignatureScheme(SignatureScheme):
    """ECDSA signing/verification over an :class:`EllipticCurve`."""

    name = "ecdsa"

    def __init__(self, curve: EllipticCurve = SECP160R1, hash_function: HashFunction | None = None) -> None:
        self.curve = curve
        self.hash_function = hash_function or HashFunction(output_bits=curve.n.bit_length())
        #: (Q, message, r, s) -> outcome; see :meth:`verify`.
        self._verify_cache: dict = {}

    # -------------------------------------------------------------- key mgmt
    def generate_keypair(self, rng: DeterministicRNG) -> ECDSAKeyPair:
        """Generate ``d`` uniform in ``[1, n-1]`` and ``Q = d·G``."""
        d = self.curve.random_scalar(rng)
        return ECDSAKeyPair(private=d, public=self.curve.generator.multiply(d))

    # -------------------------------------------------------------- interface
    @property
    def signature_bits(self) -> int:
        """Two scalars modulo the group order (320 bits on secp160r1)."""
        return 2 * self.curve.n.bit_length()

    def sign(self, private_key, message: bytes, rng: DeterministicRNG) -> Signature:
        """Produce ``(r, s)`` with ``r = (k·G).x mod n``."""
        d = private_key.private if isinstance(private_key, ECDSAKeyPair) else int(private_key)
        n = self.curve.n
        digest = self.hash_function.hash_to_zq(message, q=n)
        while True:
            k = self.curve.random_scalar(rng)
            point = self.curve.generator.multiply(k)
            r = point.x % n  # type: ignore[operator]
            if r == 0:
                continue
            s = (modinv(k, n) * (digest + r * d)) % n
            if s != 0:
                break
        return Signature(scheme=self.name, components={"r": r, "s": s}, wire_bits=self.signature_bits)

    def verify(self, public_key, message: bytes, signature: Signature) -> bool:
        """Standard ECDSA verification via ``u1·G + u2·Q``.

        Memoised per ``(Q, message, r, s)`` like the DSA scheme: in the
        broadcast protocols every receiver verifies the same triple, and the
        outcome is a pure function of it.  Each receiver still records its
        own verification cost — the memo saves simulation host time only.
        """
        q_point = public_key.public if isinstance(public_key, ECDSAKeyPair) else public_key
        if not isinstance(q_point, ECPoint):
            raise ParameterError("ECDSA public key must be an ECPoint")
        n = self.curve.n
        r, s = signature.component("r"), signature.component("s")
        if not (0 < r < n and 0 < s < n):
            return False
        key = ((q_point.x, q_point.y), message, r, s)
        cached = self._verify_cache.get(key)
        if cached is not None:
            return cached
        result = self._verify_uncached(q_point, message, r, s)
        if len(self._verify_cache) >= _VERIFY_CACHE_LIMIT:
            # Same bounded-memo policy as the DSA scheme.
            self._verify_cache.clear()
        self._verify_cache[key] = result
        return result

    def _verify_uncached(self, q_point: "ECPoint", message: bytes, r: int, s: int) -> bool:
        n = self.curve.n
        digest = self.hash_function.hash_to_zq(message, q=n)
        try:
            w = modinv(s, n)
        except ParameterError:
            return False
        u1 = (digest * w) % n
        u2 = (r * w) % n
        point = self.curve.generator.multiply(u1).add(q_point.multiply(u2))
        if point.is_infinity:
            return False
        return point.x % n == r  # type: ignore[operator]

    # ------------------------------------------------------------- op counts
    def sign_cost(self) -> OperationCount:
        """One scalar multiplication dominates (Table 2: "Sign. Gen. ECDSA")."""
        return OperationCount(scalar_mul=1, hash_calls=1, sign_gen=1)

    def verify_cost(self) -> OperationCount:
        """Two scalar multiplications dominate (Table 2: "Sign. Ver. ECDSA")."""
        return OperationCount(scalar_mul=2, hash_calls=1, sign_verify=1)
