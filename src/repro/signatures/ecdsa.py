"""ECDSA (the "BD with 160-bit ECDSA" baseline).

Standard ECDSA over a named prime-field curve; with secp160r1 the signature is
two 160-bit scalars (320 bits), matching the paper's Table 3 footnote, and the
certificate carrying the public key is the 86-byte ECDSA certificate of
Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..exceptions import ParameterError
from ..groups.curves import SECP160R1
from ..groups.elliptic import ECPoint, EllipticCurve, ec_multi_scalar
from ..hashing.hashfuncs import HashFunction
from ..mathutils.modular import modinv
from ..mathutils.rand import DeterministicRNG
from .base import BatchItem, OperationCount, Signature, SignatureScheme

__all__ = ["ECDSASignatureScheme", "ECDSAKeyPair"]

#: Verification memo bound (see ECDSASignatureScheme.verify).
_VERIFY_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class ECDSAKeyPair:
    """An ECDSA key pair: private scalar ``d`` and public point ``Q = d·G``."""

    private: int
    public: ECPoint


class ECDSASignatureScheme(SignatureScheme):
    """ECDSA signing/verification over an :class:`EllipticCurve`."""

    name = "ecdsa"

    def __init__(self, curve: EllipticCurve = SECP160R1, hash_function: HashFunction | None = None) -> None:
        self.curve = curve
        self.hash_function = hash_function or HashFunction(output_bits=curve.n.bit_length())
        #: (Q, message, r, s) -> outcome; see :meth:`verify`.
        self._verify_cache: dict = {}

    # -------------------------------------------------------------- key mgmt
    def generate_keypair(self, rng: DeterministicRNG) -> ECDSAKeyPair:
        """Generate ``d`` uniform in ``[1, n-1]`` and ``Q = d·G``."""
        d = self.curve.random_scalar(rng)
        return ECDSAKeyPair(private=d, public=self.curve.generator.multiply(d))

    # -------------------------------------------------------------- interface
    @property
    def signature_bits(self) -> int:
        """Two scalars modulo the group order (320 bits on secp160r1)."""
        return 2 * self.curve.n.bit_length()

    def sign(self, private_key, message: bytes, rng: DeterministicRNG) -> Signature:
        """Produce ``(r, s)`` with ``r = (k·G).x mod n``.

        The full commitment point ``R = k·G`` rides along in the signature's
        ``aux`` mapping (``vx``/``vy``): ``r`` keeps only ``R.x mod n``, which
        cannot be lifted back to the point the batch equation needs, so
        :meth:`batch_verify` consumes the aux point where present and falls
        back to per-item verification where not.  Host-side only —
        ``wire_bits`` stays the paper's two scalars and transcripts are
        unchanged.
        """
        d = private_key.private if isinstance(private_key, ECDSAKeyPair) else int(private_key)
        n = self.curve.n
        digest = self.hash_function.hash_to_zq(message, q=n)
        while True:
            k = self.curve.random_scalar(rng)
            point = self.curve.generator.multiply(k)
            r = point.x % n  # type: ignore[operator]
            if r == 0:
                continue
            s = (modinv(k, n) * (digest + r * d)) % n
            if s != 0:
                break
        return Signature(
            scheme=self.name,
            components={"r": r, "s": s},
            wire_bits=self.signature_bits,
            aux={"vx": point.x, "vy": point.y},  # type: ignore[dict-item]
        )

    def verify(self, public_key, message: bytes, signature: Signature) -> bool:
        """Standard ECDSA verification via ``u1·G + u2·Q``.

        Memoised per ``(Q, message, r, s)`` like the DSA scheme: in the
        broadcast protocols every receiver verifies the same triple, and the
        outcome is a pure function of it.  Each receiver still records its
        own verification cost — the memo saves simulation host time only.
        """
        q_point = public_key.public if isinstance(public_key, ECDSAKeyPair) else public_key
        if not isinstance(q_point, ECPoint):
            raise ParameterError("ECDSA public key must be an ECPoint")
        n = self.curve.n
        r, s = signature.component("r"), signature.component("s")
        if not (0 < r < n and 0 < s < n):
            return False
        key = ((q_point.x, q_point.y), message, r, s)
        cached = self._verify_cache.get(key)
        if cached is not None:
            return cached
        result = self._verify_uncached(q_point, message, r, s)
        if len(self._verify_cache) >= _VERIFY_CACHE_LIMIT:
            # Same bounded-memo policy as the DSA scheme.
            self._verify_cache.clear()
        self._verify_cache[key] = result
        return result

    def _verify_uncached(self, q_point: "ECPoint", message: bytes, r: int, s: int) -> bool:
        n = self.curve.n
        digest = self.hash_function.hash_to_zq(message, q=n)
        try:
            w = modinv(s, n)
        except ParameterError:
            return False
        u1 = (digest * w) % n
        u2 = (r * w) % n
        point = self.curve.generator.multiply(u1).add(q_point.multiply(u2))
        if point.is_infinity:
            return False
        return point.x % n == r  # type: ignore[operator]

    def _memoise(self, key: tuple, result: bool) -> bool:
        if len(self._verify_cache) >= _VERIFY_CACHE_LIMIT:
            self._verify_cache.clear()
        self._verify_cache[key] = result
        return result

    def _aux_commitment(self, signature: Signature, r: int) -> Optional[ECPoint]:
        """The signing commitment ``R = k·G`` from aux data, or ``None``.

        Only a point that is on the curve, finite and consistent with ``r``
        is usable; anything else (absent aux, tampered values) sends the item
        down the per-item path instead, which keeps semantics exact.
        """
        vx, vy = signature.aux.get("vx"), signature.aux.get("vy")
        if not isinstance(vx, int) or not isinstance(vy, int):
            return None
        try:
            point = self.curve.point(vx, vy)
        except ParameterError:
            return None
        if point.is_infinity or point.x % self.curve.n != r:  # type: ignore[operator]
            return None
        return point

    # --------------------------------------------------------- batch verify
    has_batch_form = True

    def batch_verify(
        self, items: Sequence[BatchItem], rng: DeterministicRNG, **kwargs: object
    ) -> List[bool]:
        """Small-exponent batch test over a random linear combination.

        With the commitment point ``R_i = k_i·G`` recovered from aux data, a
        valid signature satisfies ``R_i == u1_i·G + u2_i·Q_i``, so for random
        64-bit coefficients ``l_i`` the whole batch satisfies::

            sum l_i·R_i  ==  (sum l_i·u1_i mod n)·G + sum (l_i·u2_i mod n)·Q_i

        evaluated as **one** interleaved multi-scalar multiplication
        (:func:`repro.groups.elliptic.ec_multi_scalar`) instead of ``2·k``
        independent double-and-add ladders — the dominant saving on the pure
        backend, where every point operation pays a field inversion.  Items
        failing structural checks, without a consistent commitment, or
        already memoised skip the combination; a failed combined check is
        bisected down to ground-truth per-item verifies, so accept/reject
        decisions always match loop verification exactly.
        """
        if kwargs:
            raise ParameterError(f"unknown verify options: {sorted(kwargs)}")
        n = self.curve.n
        results: List[Optional[bool]] = [None] * len(items)
        pending: List[tuple] = []  # (index, Q, message, r, s, R, u1, u2)
        for index, (public_key, message, signature) in enumerate(items):
            q_point = public_key.public if isinstance(public_key, ECDSAKeyPair) else public_key
            if not isinstance(q_point, ECPoint):
                raise ParameterError("ECDSA public key must be an ECPoint")
            r, s = signature.component("r"), signature.component("s")
            if not (0 < r < n and 0 < s < n):
                results[index] = False
                continue
            cached = self._verify_cache.get(((q_point.x, q_point.y), message, r, s))
            if cached is not None:
                results[index] = cached
                continue
            commitment = self._aux_commitment(signature, r)
            if commitment is None:
                results[index] = self.verify(public_key, message, signature)
                continue
            digest = self.hash_function.hash_to_zq(message, q=n)
            try:
                w = modinv(s, n)
            except ParameterError:
                results[index] = self._memoise(((q_point.x, q_point.y), message, r, s), False)
                continue
            pending.append(
                (index, q_point, message, r, s, commitment, (digest * w) % n, (r * w) % n)
            )
        self._batch_check(pending, results, rng)
        return [bool(outcome) for outcome in results]

    def _batch_check(
        self, entries: List[tuple], results: List[Optional[bool]], rng: DeterministicRNG
    ) -> None:
        """Combined check with bisection; fills ``results`` at entry indices."""
        if not entries:
            return
        if len(entries) == 1:
            index, q_point, message, r, s, _, _, _ = entries[0]
            results[index] = self._memoise(
                ((q_point.x, q_point.y), message, r, s),
                self._verify_uncached(q_point, message, r, s),
            )
            return
        n = self.curve.n
        coefficients = [1 + rng.randbelow((1 << 64) - 1) for _ in entries]
        points: List[ECPoint] = [self.curve.generator]
        scalars: List[int] = [0]
        combined_u1 = 0
        for (_, q_point, _, _, _, commitment, u1, u2), l in zip(entries, coefficients):
            points.append(commitment)
            scalars.append(l)
            points.append(q_point)
            scalars.append(-((l * u2) % n))
            combined_u1 = (combined_u1 + l * u1) % n
        # sum l_i·R_i − (sum l_i·u1_i)·G − sum (l_i·u2_i)·Q_i  ==  infinity
        scalars[0] = -combined_u1
        if ec_multi_scalar(points, scalars).is_infinity:
            for index, q_point, message, r, s, _, _, _ in entries:
                results[index] = self._memoise(((q_point.x, q_point.y), message, r, s), True)
            return
        half = len(entries) // 2
        self._batch_check(entries[:half], results, rng)
        self._batch_check(entries[half:], results, rng)

    # ------------------------------------------------------------- op counts
    def sign_cost(self) -> OperationCount:
        """One scalar multiplication dominates (Table 2: "Sign. Gen. ECDSA")."""
        return OperationCount(scalar_mul=1, hash_calls=1, sign_gen=1)

    def verify_cost(self) -> OperationCount:
        """Two scalar multiplications dominate (Table 2: "Sign. Ver. ECDSA")."""
        return OperationCount(scalar_mul=2, hash_calls=1, sign_verify=1)
