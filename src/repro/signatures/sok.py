"""The SOK (Sakai–Ohgishi–Kasahara) ID-based signature baseline.

The paper's second comparison protocol authenticates BD with the "194-bit
ID-based SOK signature scheme" [13]: signatures are two group elements of 194
bits each (388 bits total) and verification requires pairing evaluations plus
a MapToPoint hash per identity.

We implement the Cha–Cheon formulation of the SOK/IBS family, which is the
standard concrete instantiation used for energy comparisons of this scheme:

* **Setup** — master secret ``s``; public ``P_pub = s·P``.
* **Extract** — ``Q_ID = H1(ID)`` (MapToPoint) and secret ``D_ID = s·Q_ID``.
* **Sign(m)** — pick ``r``; ``U = r·Q_ID``; ``h = H2(U, m)``;
  ``V = (r + h)·D_ID``; signature ``(U, V)``.
* **Verify** — accept iff ``e(P, V) == e(P_pub, U + h·Q_ID)``.

The pairing itself is the *simulated* bilinear map documented in
:mod:`repro.groups.pairing` (see DESIGN.md substitution table); its energy
cost is charged from the paper's Table 2 by the energy layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ParameterError
from ..groups.pairing import G1Element, SimulatedPairingGroup
from ..hashing.hashfuncs import HashFunction
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import int_to_bytes
from .base import OperationCount, Signature, SignatureScheme

__all__ = ["SOKMasterKey", "SOKPrivateKey", "SOKSignatureScheme", "SOK_SIGNATURE_COMPONENT_BITS"]

#: The paper's wire size for each of the two SOK signature components.
SOK_SIGNATURE_COMPONENT_BITS = 194


@dataclass(frozen=True)
class SOKMasterKey:
    """The PKG's master secret ``s`` and public key ``P_pub = s·P``."""

    secret: int
    public: G1Element

    def __repr__(self) -> str:  # avoid leaking the master secret in logs
        return "SOKMasterKey(public=...)"


@dataclass(frozen=True)
class SOKPrivateKey:
    """A user's extracted key: ``Q_ID = H1(ID)`` and ``D_ID = s·Q_ID``."""

    identity: bytes
    q_id: G1Element
    d_id: G1Element

    def __repr__(self) -> str:
        return f"SOKPrivateKey(identity={self.identity!r})"


class SOKSignatureScheme(SignatureScheme):
    """SOK/Cha–Cheon ID-based signatures over the simulated pairing group."""

    name = "sok"

    def __init__(self, pairing_group: SimulatedPairingGroup, hash_function: HashFunction | None = None) -> None:
        self.pairing_group = pairing_group
        self.hash_function = hash_function or HashFunction(output_bits=160)

    # ---------------------------------------------------------------- setup
    def generate_master_key(self, rng: DeterministicRNG) -> SOKMasterKey:
        """PKG setup: choose the master secret and publish ``P_pub``."""
        s = rng.zq_star(self.pairing_group.order)
        p_pub = self.pairing_group.generator.scalar_mul(s)
        return SOKMasterKey(secret=s, public=p_pub)

    def extract(self, master: SOKMasterKey, identity: bytes) -> SOKPrivateKey:
        """Extract the private key for ``identity`` (one MapToPoint + one scalar mul)."""
        q_id = self.pairing_group.map_to_point(identity)
        d_id = q_id.scalar_mul(master.secret)
        return SOKPrivateKey(identity=identity, q_id=q_id, d_id=d_id)

    # ------------------------------------------------------------- interface
    @property
    def signature_bits(self) -> int:
        """Two 194-bit components, per the paper's Table 3 footnote."""
        return 2 * SOK_SIGNATURE_COMPONENT_BITS

    def _message_hash(self, u: G1Element, message: bytes) -> int:
        return self.hash_function.digest_int(
            int_to_bytes(u.exponent), message, domain=b"repro/SOK-H2"
        ) % self.pairing_group.order

    def sign(self, private_key: SOKPrivateKey, message: bytes, rng: DeterministicRNG) -> Signature:
        """Sign: ``U = r·Q_ID``, ``h = H2(U, m)``, ``V = (r + h)·D_ID``."""
        order = self.pairing_group.order
        r = rng.zq_star(order)
        u = private_key.q_id.scalar_mul(r)
        h = self._message_hash(u, message)
        v = private_key.d_id.scalar_mul((r + h) % order)
        return Signature(
            scheme=self.name,
            components={"U": u.exponent, "V": v.exponent},
            wire_bits=self.signature_bits,
        )

    def verify(
        self,
        public_key,
        message: bytes,
        signature: Signature,
        *,
        master_public: SOKMasterKey | G1Element | None = None,
    ) -> bool:
        """Verify ``e(P, V) == e(P_pub, U + h·Q_ID)``.

        ``public_key`` is the signer's identity bytes (hashed with MapToPoint)
        or a pre-computed ``Q_ID``; ``master_public`` is the PKG public key
        (``P_pub``) or the full master key object.
        """
        if master_public is None:
            raise ParameterError("SOK verification requires the PKG public key P_pub")
        p_pub = master_public.public if isinstance(master_public, SOKMasterKey) else master_public
        if isinstance(public_key, (bytes, bytearray)):
            q_id = self.pairing_group.map_to_point(bytes(public_key))
        elif isinstance(public_key, G1Element):
            q_id = public_key
        else:
            raise ParameterError("SOK public key must be identity bytes or a G1 element")
        order = self.pairing_group.order
        u = G1Element(signature.component("U"), order)
        v = G1Element(signature.component("V"), order)
        h = self._message_hash(u, message)
        left = self.pairing_group.pairing(self.pairing_group.generator, v)
        right = self.pairing_group.pairing(p_pub, u.add(q_id.scalar_mul(h)))
        return left == right

    # ------------------------------------------------------------- op counts
    def sign_cost(self) -> OperationCount:
        """Two scalar multiplications in G1 (Table 2 prices "SOK" signing at 17.6 mJ)."""
        return OperationCount(scalar_mul=2, hash_calls=1, sign_gen=1)

    def verify_cost(self) -> OperationCount:
        """Two pairings + one MapToPoint + one scalar mul (Table 2: 137.7 mJ)."""
        return OperationCount(pairing=2, map_to_point=1, scalar_mul=1, hash_calls=1, sign_verify=1)
