"""Common interfaces for the signature schemes used in the comparison.

Table 1 of the paper compares five ways of authenticating the BD protocol;
four of them involve a signature scheme (the GQ variant, SOK, ECDSA, DSA).
Each scheme in this package implements the small :class:`SignatureScheme`
interface so the authenticated-protocol code and the complexity/energy
analysis can treat them uniformly:

* ``sign`` / ``verify`` with byte-string messages,
* a :class:`Signature` value that knows its exact wire size in bits (the
  energy model charges transmission/reception per bit using the sizes from
  the paper's Table 3 footnotes),
* an :class:`OperationCount` record of the primitive operations performed,
  which feeds the complexity analysis (Table 1 / Table 4) without having to
  instrument the arithmetic itself.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Mapping

__all__ = ["Signature", "OperationCount", "SignatureScheme", "KeyPair"]


@dataclass(frozen=True)
class Signature:
    """A signature value plus its wire representation.

    Attributes
    ----------
    scheme:
        Short scheme identifier (``"gq"``, ``"dsa"``, ``"ecdsa"``, ``"sok"``).
    components:
        Named integer components (e.g. ``{"s": ..., "c": ...}`` for GQ).
    wire_bits:
        Exact transmitted size in bits; follows the paper's footnotes
        (DSA/ECDSA 320 bits, SOK 388 bits, GQ 1184 bits for the 1024-bit
        parameter set).
    """

    scheme: str
    components: Mapping[str, int]
    wire_bits: int

    def component(self, name: str) -> int:
        """Convenience accessor for one named component."""
        return self.components[name]


@dataclass
class OperationCount:
    """Primitive-operation tally for one cryptographic action.

    The counters use the paper's operation vocabulary so they can be priced
    directly from Table 2: modular exponentiations, scalar multiplications,
    MapToPoint evaluations, Tate pairings, signature generations /
    verifications, symmetric encryptions/decryptions and hash invocations.
    """

    modexp: int = 0
    scalar_mul: int = 0
    map_to_point: int = 0
    pairing: int = 0
    sign_gen: int = 0
    sign_verify: int = 0
    symmetric: int = 0
    hash_calls: int = 0
    modmul: int = 0

    def merge(self, other: "OperationCount") -> "OperationCount":
        """Return a new tally that is the sum of ``self`` and ``other``."""
        return OperationCount(
            modexp=self.modexp + other.modexp,
            scalar_mul=self.scalar_mul + other.scalar_mul,
            map_to_point=self.map_to_point + other.map_to_point,
            pairing=self.pairing + other.pairing,
            sign_gen=self.sign_gen + other.sign_gen,
            sign_verify=self.sign_verify + other.sign_verify,
            symmetric=self.symmetric + other.symmetric,
            hash_calls=self.hash_calls + other.hash_calls,
            modmul=self.modmul + other.modmul,
        )

    def __add__(self, other: "OperationCount") -> "OperationCount":
        return self.merge(other)

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by the analysis tables."""
        return {
            "modexp": self.modexp,
            "scalar_mul": self.scalar_mul,
            "map_to_point": self.map_to_point,
            "pairing": self.pairing,
            "sign_gen": self.sign_gen,
            "sign_verify": self.sign_verify,
            "symmetric": self.symmetric,
            "hash_calls": self.hash_calls,
            "modmul": self.modmul,
        }


@dataclass(frozen=True)
class KeyPair:
    """A private/public key pair for the certificate-based schemes."""

    private: int
    public: object  # int for DSA, ECPoint for ECDSA
    scheme: str


class SignatureScheme(abc.ABC):
    """Minimal interface shared by every signature scheme in the library."""

    #: short identifier used in tables and reports
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def signature_bits(self) -> int:
        """Nominal wire size of one signature, in bits."""

    @abc.abstractmethod
    def sign(self, private_key, message: bytes, rng) -> Signature:
        """Sign ``message`` with ``private_key`` using randomness from ``rng``."""

    @abc.abstractmethod
    def verify(self, public_key, message: bytes, signature: Signature) -> bool:
        """Verify ``signature`` over ``message`` against ``public_key``."""

    def sign_cost(self) -> OperationCount:
        """Operation tally of one signature generation (for the analysis layer)."""
        return OperationCount(sign_gen=1)

    def verify_cost(self) -> OperationCount:
        """Operation tally of one signature verification."""
        return OperationCount(sign_verify=1)
