"""Common interfaces for the signature schemes used in the comparison.

Table 1 of the paper compares five ways of authenticating the BD protocol;
four of them involve a signature scheme (the GQ variant, SOK, ECDSA, DSA).
Each scheme in this package implements the small :class:`SignatureScheme`
interface so the authenticated-protocol code and the complexity/energy
analysis can treat them uniformly:

* ``sign`` / ``verify`` with byte-string messages,
* a :class:`Signature` value that knows its exact wire size in bits (the
  energy model charges transmission/reception per bit using the sizes from
  the paper's Table 3 footnotes),
* an :class:`OperationCount` record of the primitive operations performed,
  which feeds the complexity analysis (Table 1 / Table 4) without having to
  instrument the arithmetic itself.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = ["Signature", "OperationCount", "SignatureScheme", "KeyPair", "BatchItem"]

#: One batch-verification work item: ``(public_key, message, signature)`` in
#: whatever public-key form the scheme's ``verify`` accepts.
BatchItem = Tuple[object, bytes, "Signature"]


@dataclass(frozen=True)
class Signature:
    """A signature value plus its wire representation.

    Attributes
    ----------
    scheme:
        Short scheme identifier (``"gq"``, ``"dsa"``, ``"ecdsa"``, ``"sok"``).
    components:
        Named integer components (e.g. ``{"s": ..., "c": ...}`` for GQ).
    wire_bits:
        Exact transmitted size in bits; follows the paper's footnotes
        (DSA/ECDSA 320 bits, SOK 388 bits, GQ 1184 bits for the 1024-bit
        parameter set).
    aux:
        Host-side auxiliary values that are *not* part of the signature:
        excluded from equality, wire size and transcript digests.  DSA/ECDSA
        stash the full signing commitment here so batch verification can
        reconstruct the group element that ``r`` truncates away; a signature
        without (or with inconsistent) aux data still verifies normally,
        just not through the combined batch equation.
    """

    scheme: str
    components: Mapping[str, int]
    wire_bits: int
    aux: Mapping[str, int] = field(default_factory=dict, compare=False, repr=False)

    def component(self, name: str) -> int:
        """Convenience accessor for one named component."""
        return self.components[name]


@dataclass
class OperationCount:
    """Primitive-operation tally for one cryptographic action.

    The counters use the paper's operation vocabulary so they can be priced
    directly from Table 2: modular exponentiations, scalar multiplications,
    MapToPoint evaluations, Tate pairings, signature generations /
    verifications, symmetric encryptions/decryptions and hash invocations.
    """

    modexp: int = 0
    scalar_mul: int = 0
    map_to_point: int = 0
    pairing: int = 0
    sign_gen: int = 0
    sign_verify: int = 0
    symmetric: int = 0
    hash_calls: int = 0
    modmul: int = 0

    def merge(self, other: "OperationCount") -> "OperationCount":
        """Return a new tally that is the sum of ``self`` and ``other``."""
        return OperationCount(
            modexp=self.modexp + other.modexp,
            scalar_mul=self.scalar_mul + other.scalar_mul,
            map_to_point=self.map_to_point + other.map_to_point,
            pairing=self.pairing + other.pairing,
            sign_gen=self.sign_gen + other.sign_gen,
            sign_verify=self.sign_verify + other.sign_verify,
            symmetric=self.symmetric + other.symmetric,
            hash_calls=self.hash_calls + other.hash_calls,
            modmul=self.modmul + other.modmul,
        )

    def __add__(self, other: "OperationCount") -> "OperationCount":
        return self.merge(other)

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by the analysis tables."""
        return {
            "modexp": self.modexp,
            "scalar_mul": self.scalar_mul,
            "map_to_point": self.map_to_point,
            "pairing": self.pairing,
            "sign_gen": self.sign_gen,
            "sign_verify": self.sign_verify,
            "symmetric": self.symmetric,
            "hash_calls": self.hash_calls,
            "modmul": self.modmul,
        }


@dataclass(frozen=True)
class KeyPair:
    """A private/public key pair for the certificate-based schemes."""

    private: int
    public: object  # int for DSA, ECPoint for ECDSA
    scheme: str


class SignatureScheme(abc.ABC):
    """Minimal interface shared by every signature scheme in the library."""

    #: short identifier used in tables and reports
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def signature_bits(self) -> int:
        """Nominal wire size of one signature, in bits."""

    @abc.abstractmethod
    def sign(self, private_key, message: bytes, rng) -> Signature:
        """Sign ``message`` with ``private_key`` using randomness from ``rng``."""

    @abc.abstractmethod
    def verify(self, public_key, message: bytes, signature: Signature) -> bool:
        """Verify ``signature`` over ``message`` against ``public_key``."""

    #: whether :meth:`batch_verify` is more than a per-item loop
    has_batch_form: bool = False

    def batch_verify(
        self, items: Sequence[BatchItem], rng, **kwargs: object
    ) -> List[bool]:
        """Per-item accept/reject for a batch of ``(key, message, signature)``.

        The contract is *semantic equivalence*: the returned list equals
        ``[self.verify(k, m, s, **kwargs) for k, m, s in items]`` for every
        input — honest, forged or malformed.  Schemes with a batch form
        (DSA, ECDSA) override this with one multi-exponentiation over a
        random linear combination drawn from ``rng``, bisecting to the
        culprits when the combined check fails; this default is the loop
        fallback for schemes without one (GQ's common-challenge batch
        equation lives in :func:`repro.signatures.gq.gq_batch_verify`
        instead, and SOK's pairing check does not combine).

        Batch verification is a *host-time* optimisation only: energy
        accounting still charges each receiver one ``verify_cost()`` per
        signature, exactly as with the loop.  ``rng`` supplies the random
        coefficients only — schemes must not let it influence outcomes, so
        callers may pass a forked stream without perturbing transcripts.
        """
        return [
            self.verify(public_key, message, signature, **kwargs)
            for public_key, message, signature in items
        ]

    def sign_cost(self) -> OperationCount:
        """Operation tally of one signature generation (for the analysis layer)."""
        return OperationCount(sign_gen=1)

    def verify_cost(self) -> OperationCount:
        """Operation tally of one signature verification."""
        return OperationCount(sign_verify=1)
