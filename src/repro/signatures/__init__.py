"""Signature schemes compared in the paper: GQ (ID-based, batch-verifiable),
DSA, ECDSA (certificate-based) and SOK (ID-based, pairing-based)."""

from .base import KeyPair, OperationCount, Signature, SignatureScheme
from .dsa import DSAKeyPair, DSASignatureScheme
from .ecdsa import ECDSAKeyPair, ECDSASignatureScheme
from .gq import (
    GQParameters,
    GQPrivateKey,
    GQSignatureScheme,
    gq_batch_verify,
    gq_commitment,
    gq_response,
    gq_signature_bits,
)
from .sok import (
    SOK_SIGNATURE_COMPONENT_BITS,
    SOKMasterKey,
    SOKPrivateKey,
    SOKSignatureScheme,
)

__all__ = [
    "KeyPair",
    "OperationCount",
    "Signature",
    "SignatureScheme",
    "DSAKeyPair",
    "DSASignatureScheme",
    "ECDSAKeyPair",
    "ECDSASignatureScheme",
    "GQParameters",
    "GQPrivateKey",
    "GQSignatureScheme",
    "gq_batch_verify",
    "gq_commitment",
    "gq_response",
    "gq_signature_bits",
    "SOK_SIGNATURE_COMPONENT_BITS",
    "SOKMasterKey",
    "SOKPrivateKey",
    "SOKSignatureScheme",
]
