"""repro — reproduction of "Energy-Efficient ID-based Group Key Agreement
Protocols for Wireless Networks" (Tan & Teo, IPPS 2006).

The package implements, from scratch:

* the proposed two-round ID-based authenticated GKA protocol with batch GQ
  verification and its four dynamic protocols (Join, Leave, Merge, Partition),
* every baseline the paper compares against (plain BD, BD + SOK / ECDSA / DSA,
  the SSN ID-based GKA, and BD re-execution for membership events),
* the substrates those protocols need (number theory, Schnorr groups, elliptic
  curves, a simulated pairing, AES, SHA-256, HMAC, a PKG and a CA, a simulated
  broadcast wireless network),
* a mobility-aware MANET layer (:mod:`repro.mobility`): 2-D mobility models,
  distance-dependent radio links, multi-hop relaying with per-hop energy
  charging, and connectivity-driven emergent partition/merge churn,
* an adversary subsystem (:mod:`repro.adversary`): eavesdropper / injector /
  replayer / man-in-the-middle / key-compromise attacker models co-scheduled
  with the protocol machines, security-property oracles (key consistency,
  forward/backward secrecy, implicit key authentication, attack detection)
  evaluated per scenario step, and a protocol × attacker survival matrix,
* the paper's energy model (StrongARM SA-1110 + 100 kbps radio / Spectrum24
  WLAN) and the closed-form analysis that regenerates Tables 1-5 and Figure 1.

Quickstart::

    from repro import SystemSetup, GroupSession, Identity

    setup = SystemSetup.from_param_sets()          # paper-sized parameters
    members = [Identity(f"node-{i}") for i in range(8)]
    session = GroupSession.establish(setup, members, seed=1)
    assert session.all_agree()
    session.join(Identity("latecomer"))
    print(session.energy_report()["node-0"].total_j, "J")
"""

from .core import (
    GroupSession,
    GroupState,
    JoinProtocol,
    LeaveProtocol,
    MergeProtocol,
    PartitionProtocol,
    PartyState,
    ProposedGKAProtocol,
    Protocol,
    ProtocolResult,
    SystemSetup,
    available_protocols,
    create_protocol,
    register_protocol,
)
from .energy import (
    CostRecorder,
    DeviceProfile,
    EnergyBreakdown,
    OperationCostTable,
    RADIO_100KBPS,
    STRONGARM_SA1110,
    Transceiver,
    WLAN_SPECTRUM24,
)
from .engine import (
    EngineConfig,
    EngineStats,
    EventKernel,
    FixedLatency,
    LatencyModel,
    MachinePlan,
    Outbound,
    PartyMachine,
    TransceiverLatency,
)
from .exceptions import (
    BatchVerificationError,
    DecryptionError,
    EnergyModelError,
    KeyConfirmationError,
    MembershipError,
    NetworkError,
    ParameterError,
    ProtocolError,
    ReproError,
    SerializationError,
    SignatureError,
    VerificationError,
)
from .adversary import (
    AdversaryConfig,
    AdversarySuite,
    SecurityReport,
    run_attack_matrix,
)
from .campaign import CampaignResult, CampaignSpec, run_campaign
from .pki import Identity, IdentityRegistry, PrivateKeyGenerator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # adversary
    "AdversaryConfig",
    "AdversarySuite",
    "SecurityReport",
    "run_attack_matrix",
    # campaign
    "CampaignResult",
    "CampaignSpec",
    "run_campaign",
    # core
    "GroupSession",
    "GroupState",
    "JoinProtocol",
    "LeaveProtocol",
    "MergeProtocol",
    "PartitionProtocol",
    "PartyState",
    "Protocol",
    "ProposedGKAProtocol",
    "ProtocolResult",
    "SystemSetup",
    "available_protocols",
    "create_protocol",
    "register_protocol",
    # energy
    "CostRecorder",
    "DeviceProfile",
    "EnergyBreakdown",
    "OperationCostTable",
    "RADIO_100KBPS",
    "STRONGARM_SA1110",
    "Transceiver",
    "WLAN_SPECTRUM24",
    # engine
    "EngineConfig",
    "EngineStats",
    "EventKernel",
    "FixedLatency",
    "LatencyModel",
    "MachinePlan",
    "Outbound",
    "PartyMachine",
    "TransceiverLatency",
    # pki
    "Identity",
    "IdentityRegistry",
    "PrivateKeyGenerator",
    # exceptions
    "BatchVerificationError",
    "DecryptionError",
    "EnergyModelError",
    "KeyConfirmationError",
    "MembershipError",
    "NetworkError",
    "ParameterError",
    "ProtocolError",
    "ReproError",
    "SerializationError",
    "SignatureError",
    "VerificationError",
]
