"""The dynamic-membership baseline: re-executing authenticated BD.

The original BD paper specifies no Join/Leave/Merge/Partition protocols, so —
as the paper (following Amir et al. and Kim–Perrig–Tsudik) points out — the
only way to handle a membership event is to re-run the whole (authenticated)
GKA over the new member set.  Table 4 and Table 5 compare the proposed dynamic
protocols against exactly this baseline, instantiated with the certificate-
based ECDSA variant.

:class:`BDRerunDynamic` wraps :class:`~repro.baselines.authenticated_bd.AuthenticatedBDProtocol`
behind the same event API as the proposed dynamic protocols, so experiments
can swap one for the other and compare the recorded per-node costs directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..engine.executor import EngineConfig
from ..engine.machine import MachinePlan
from ..exceptions import MembershipError, ParameterError
from ..network.medium import BroadcastMedium
from ..pki.identity import Identity
from ..core.base import GroupState, Protocol, ProtocolResult, SystemSetup
from ..core.registry import register_protocol
from .authenticated_bd import SUPPORTED_SCHEMES, AuthenticatedBDProtocol

__all__ = ["BDRerunDynamic"]


class BDRerunDynamic(Protocol):
    """Handle membership events by re-running authenticated BD from scratch.

    Conforms to :class:`~repro.core.base.Protocol`: :meth:`run` is the initial
    establishment and the inherited
    :meth:`~repro.core.base.Protocol.apply_event` re-executes over the
    post-event membership.  The explicit ``join``/``leave``/``merge``/
    ``partition`` methods below predate the strategy interface and add the
    membership validation the paper's experiment scripts rely on.
    """

    def __init__(self, setup: SystemSetup, scheme: str = "ecdsa") -> None:
        super().__init__(setup)
        self.scheme = scheme
        self._protocol = AuthenticatedBDProtocol(setup, scheme)
        self.name = f"bd-rerun-{scheme}"

    # ------------------------------------------------------------------ events
    def build_machines(
        self,
        members: Sequence[Identity],
        *,
        medium: BroadcastMedium,
        seed: object = 0,
        **kwargs: object,
    ) -> MachinePlan:
        """Delegate to the wrapped authenticated-BD machine decomposition.

        Results keep the wrapped protocol's label (``bd-<scheme>``): the
        rerun wrapper adds event routing, not a different wire protocol.
        """
        return self._protocol.build_machines(members, medium=medium, seed=seed, **kwargs)

    def run(
        self,
        members: Sequence[Identity],
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
        **kwargs: object,
    ) -> ProtocolResult:
        """Initial key establishment (plain authenticated BD run)."""
        return super().run(members, medium=medium, seed=seed, engine=engine, **kwargs)

    def establish(self, members: Sequence[Identity], *, seed: object = 0) -> ProtocolResult:
        """Backwards-compatible alias for :meth:`run`."""
        return self.run(members, seed=seed)

    def join(
        self,
        state: GroupState,
        joining: Identity,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        """Re-run the GKA over the enlarged membership."""
        if joining in state.ring:
            raise MembershipError(f"{joining.name!r} is already a member")
        members = state.ring.members + [joining]
        return self.run(members, medium=medium, seed=seed, engine=engine)

    def leave(
        self,
        state: GroupState,
        leaving: Identity,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        """Re-run the GKA over the reduced membership."""
        if leaving not in state.ring:
            raise MembershipError(f"{leaving.name!r} is not a member")
        members = [m for m in state.ring.members if m.name != leaving.name]
        if len(members) < 2:
            raise ParameterError("cannot shrink the group below two members")
        return self.run(members, medium=medium, seed=seed, engine=engine)

    def merge(
        self,
        state_a: GroupState,
        state_b: GroupState,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        """Re-run the GKA over the union of both memberships."""
        overlap = {m.name for m in state_a.ring} & {m.name for m in state_b.ring}
        if overlap:
            raise MembershipError(f"groups overlap: {sorted(overlap)}")
        members: List[Identity] = state_a.ring.members + state_b.ring.members
        return self.run(members, medium=medium, seed=seed, engine=engine)

    def partition(
        self,
        state: GroupState,
        leaving: Sequence[Identity],
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        """Re-run the GKA over the members that remain."""
        leaving_names = {identity.name for identity in leaving}
        members = [m for m in state.ring.members if m.name not in leaving_names]
        if len(members) < 2:
            raise ParameterError("cannot shrink the group below two members")
        return self.run(members, medium=medium, seed=seed, engine=engine)


for _scheme in SUPPORTED_SCHEMES:
    register_protocol(
        f"bd-rerun-{_scheme}",
        # Bind the loop variable eagerly so each factory keeps its own scheme.
        lambda setup, scheme=_scheme: BDRerunDynamic(setup, scheme),
    )
