"""The Saeednia–Safavi-Naini (SSN) ID-based GKA baseline.

The paper's fifth comparison column is the SSN protocol [12]: an ID-based
authenticated conference-key protocol built on BD where authentication is
implicit — there are no signature generations or verifications in the
protocol's own vocabulary, but "the number of exponentiations required to be
performed by each user is dependent on the group size n" (2n + 4 in Table 1),
which is exactly what makes it lose to the proposed scheme in Figure 1.

Reconstruction note (see DESIGN.md): the original 1998 paper's exact message
equations are not reproduced verbatim here.  What this module implements is a
functional ID-based variant with the same structure and the same cost profile:

* each user authenticates its BD keying material with an identity-based
  zero-knowledge response (GQ-style, using the same PKG-extracted identity
  secret ``S_ID``), transmitted alongside ``z_i``;
* each user checks every other member's authenticator individually, costing
  two modular exponentiations per member — the ``2(n-1)`` term;
* all operations are tallied as modular exponentiations (as the paper's
  Table 1 does for this scheme), so the complexity and energy comparison
  reproduce the paper's O(n)-exponentiation behaviour faithfully.

Execution is one :class:`~repro.engine.machine.PartyMachine` per member in
the plain-BD two-hook shape; the per-member authenticator checks run when the
Round-1 view completes.  The check is a pure function of the broadcast
``(sender, z, t, s)`` that every receiver evaluates identically, so its
*outcome* is memoised per run in a table shared by the machines; each
receiver still records its own two exponentiations.

This preserves everything the paper evaluates about SSN — linear-in-``n``
exponentiation count, two broadcast rounds, no certificates or explicit
signatures — which is the role the baseline plays in Table 1 and Figure 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.executor import EngineStats
from ..engine.machine import MachinePlan, Outbound, PartyMachine
from ..exceptions import ParameterError, VerificationError
from ..mathutils.modular import modinv
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import int_to_bytes
from ..network.medium import BroadcastMedium
from ..network.message import Message, group_element_part, identity_part
from ..network.node import Node
from ..network.topology import RingTopology
from ..pki.identity import Identity
from ..core.base import (
    GroupState,
    PartyState,
    Protocol,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
)
from ..core.registry import register_protocol

__all__ = ["SSNProtocol"]


class _SSNPartyMachine(PartyMachine):
    """One member's view of the SSN-style ID-based BD."""

    def __init__(
        self,
        party: PartyState,
        setup: SystemSetup,
        ring: RingTopology,
        check_cache: Dict[tuple, bool],
    ) -> None:
        super().__init__(party.identity, party.node)
        self.party = party
        self.setup = setup
        self.ring = ring
        self.check_cache = check_cache
        self._ring_names = [m.name for m in ring.members]
        #: sender -> (z, t, s) from Round 1, in arrival order
        self._round1: Dict[str, Tuple[Identity, int, int, int]] = {}
        self._z_view: Dict[str, int] = {}
        self._x_table: Dict[str, int] = {}
        self._round1_complete = False
        self._round2_buffer: List[Message] = []

    def start(self, now: float) -> List[Outbound]:
        group = self.setup.group
        params = self.setup.gq_params
        party = self.party
        party.r = group.random_exponent(party.rng)
        party.z = group.exp_g(party.r)
        tau = party.rng.zn_star(params.n)
        t_value = pow(tau, params.e, params.n)
        challenge = params.hash_function.challenge(
            self.identity.to_bytes(), int_to_bytes(party.z), int_to_bytes(t_value)
        )
        s_value = (tau * pow(party.private_key.secret, challenge, params.n)) % params.n
        party.recorder.record_operation("modexp", 3)  # z_i, t_i, S_ID^c
        self._z_view[self.identity.name] = party.z
        self.waiting_for = "ssn-round1"
        return [
            Outbound(
                Message.broadcast(
                    self.identity,
                    "ssn-round1",
                    [
                        identity_part(self.identity),
                        group_element_part("z", party.z, group.element_bits),
                        group_element_part("t", t_value, params.modulus_bits),
                        group_element_part("s", s_value, params.modulus_bits),
                    ],
                )
            )
        ]

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        if message.round_label == "ssn-round1":
            sender: Identity = message.value("identity")  # type: ignore[assignment]
            self._round1[sender.name] = (
                sender,
                int(message.value("z")),
                int(message.value("t")),
                int(message.value("s")),
            )
            if len(self._round1) != self.ring.size - 1:
                return []
            self._verify_authenticators(now)
            self._round1_complete = True
            outs = self._emit_round2(now)
            buffered, self._round2_buffer = self._round2_buffer, []
            for held in buffered:
                outs.extend(self.on_message(held, now))
            return outs
        if message.round_label == "ssn-round2":
            if not self._round1_complete:
                self._round2_buffer.append(message)
                return []
            sender = message.value("identity")  # type: ignore[assignment]
            self._x_table[sender.name] = int(message.value("X"))
            if len(self._x_table) == self.ring.size:
                self._derive_key(now)
        return []

    # ------------------------------------------------------- authentication
    def _verify_authenticators(self, now: float) -> None:
        params = self.setup.gq_params
        party = self.party
        for sender, z_value, t_value, s_value in self._round1.values():
            cache_key = (sender.name, z_value, t_value, s_value)
            accepted = self.check_cache.get(cache_key)
            if accepted is None:
                challenge = params.hash_function.challenge(
                    sender.to_bytes(), int_to_bytes(z_value), int_to_bytes(t_value)
                )
                hid = params.identity_public_key(sender.to_bytes())
                check = (
                    pow(s_value, params.e, params.n)
                    * pow(modinv(hid, params.n), challenge, params.n)
                ) % params.n
                accepted = self.check_cache[cache_key] = check == t_value
            party.recorder.record_operation("modexp", 2)
            if not accepted:
                raise VerificationError(
                    f"{self.identity.name} rejected {sender.name}'s SSN authenticator"
                )
            self._z_view[sender.name] = z_value

    # --------------------------------------------------------------- round 2
    def _emit_round2(self, now: float) -> List[Outbound]:
        group = self.setup.group
        party = self.party
        left = self.ring.left_neighbour(self.identity)
        right = self.ring.right_neighbour(self.identity)
        x_value = compute_bd_x_value(
            group, self._z_view[right.name], self._z_view[left.name], party.r
        )
        party.recorder.record_operation("modexp")
        self._x_table[self.identity.name] = x_value
        self.waiting_for = "ssn-round2"
        return [
            Outbound(
                Message.broadcast(
                    self.identity,
                    "ssn-round2",
                    [
                        identity_part(self.identity),
                        group_element_part("X", x_value, group.element_bits),
                    ],
                )
            )
        ]

    def _derive_key(self, now: float) -> None:
        group = self.setup.group
        party = self.party
        party.group_key = compute_bd_key(
            group, self._ring_names, self.identity.name, party.r, self._z_view, self._x_table
        )
        party.recorder.record_operation("modexp")
        self.finished = True
        self.waiting_for = None


class SSNProtocol(Protocol):
    """ID-based BD with per-member implicit authentication (the SSN baseline).

    No dynamic sub-protocols: membership events re-execute the full run via
    the inherited :meth:`~repro.core.base.Protocol.apply_event`.
    """

    name = "ssn"

    def build_machines(
        self,
        members: Sequence[Identity],
        *,
        medium: BroadcastMedium,
        seed: object = 0,
        **kwargs: object,
    ) -> MachinePlan:
        """Decompose the SSN-style protocol into per-member machines."""
        if kwargs:
            raise ParameterError(f"unknown run options: {sorted(kwargs)}")
        if len(members) < 2:
            raise ParameterError("the GKA needs at least two members")
        ring = RingTopology(members)
        rng = DeterministicRNG(seed, label="ssn")
        parties: Dict[str, PartyState] = {}
        for identity in members:
            key = self.setup.enroll(identity)
            node = Node(identity)
            medium.attach(node)
            parties[identity.name] = PartyState(
                identity=identity,
                private_key=key,
                rng=rng.fork(f"party/{identity.name}"),
                node=node,
            )
        check_cache: Dict[tuple, bool] = {}
        machines = [
            _SSNPartyMachine(parties[identity.name], self.setup, ring, check_cache)
            for identity in ring.members
        ]

        def finish(stats: EngineStats) -> ProtocolResult:
            state = GroupState(setup=self.setup, ring=ring, parties=parties)
            state.group_key = parties[ring.controller().name].group_key
            return ProtocolResult(
                protocol=self.name,
                state=state,
                medium=medium,
                rounds=2,
                sim_latency_s=stats.sim_time_s,
                timeouts=stats.timeouts,
            )

        return MachinePlan(machines=machines, finish=finish, rounds=2)


register_protocol("ssn", SSNProtocol)
