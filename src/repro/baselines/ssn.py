"""The Saeednia–Safavi-Naini (SSN) ID-based GKA baseline.

The paper's fifth comparison column is the SSN protocol [12]: an ID-based
authenticated conference-key protocol built on BD where authentication is
implicit — there are no signature generations or verifications in the
protocol's own vocabulary, but "the number of exponentiations required to be
performed by each user is dependent on the group size n" (2n + 4 in Table 1),
which is exactly what makes it lose to the proposed scheme in Figure 1.

Reconstruction note (see DESIGN.md): the original 1998 paper's exact message
equations are not reproduced verbatim here.  What this module implements is a
functional ID-based variant with the same structure and the same cost profile:

* each user authenticates its BD keying material with an identity-based
  zero-knowledge response (GQ-style, using the same PKG-extracted identity
  secret ``S_ID``), transmitted alongside ``z_i``;
* each user checks every other member's authenticator individually, costing
  two modular exponentiations per member — the ``2(n-1)`` term;
* all operations are tallied as modular exponentiations (as the paper's
  Table 1 does for this scheme), so the complexity and energy comparison
  reproduce the paper's O(n)-exponentiation behaviour faithfully.

This preserves everything the paper evaluates about SSN — linear-in-``n``
exponentiation count, two broadcast rounds, no certificates or explicit
signatures — which is the role the baseline plays in Table 1 and Figure 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..exceptions import ParameterError, ProtocolError, VerificationError
from ..mathutils.modular import modinv
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import int_to_bytes
from ..network.medium import BroadcastMedium
from ..network.message import Message, group_element_part, identity_part
from ..network.node import Node
from ..network.topology import RingTopology
from ..pki.identity import Identity
from ..core.base import (
    GroupState,
    PartyState,
    Protocol,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
)
from ..core.registry import register_protocol

__all__ = ["SSNProtocol"]


class SSNProtocol(Protocol):
    """ID-based BD with per-member implicit authentication (the SSN baseline).

    No dynamic sub-protocols: membership events re-execute the full run via
    the inherited :meth:`~repro.core.base.Protocol.apply_event`.
    """

    name = "ssn"

    def run(
        self,
        members: Sequence[Identity],
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
    ) -> ProtocolResult:
        """Run the SSN-style protocol among ``members``."""
        if len(members) < 2:
            raise ParameterError("the GKA needs at least two members")
        ring = RingTopology(members)
        medium = medium if medium is not None else BroadcastMedium()
        rng = DeterministicRNG(seed, label="ssn")
        group = self.setup.group
        params = self.setup.gq_params

        parties: Dict[str, PartyState] = {}
        for identity in members:
            key = self.setup.enroll(identity)
            node = Node(identity)
            medium.attach(node)
            parties[identity.name] = PartyState(
                identity=identity,
                private_key=key,
                rng=rng.fork(f"party/{identity.name}"),
                node=node,
            )

        # Round 1: broadcast z_i together with an identity-based authenticator
        # (t_i, s_i) over z_i; both authenticator operations are modular
        # exponentiations in Z_n and are tallied as such.
        authenticators: Dict[str, Dict[str, int]] = {}
        for identity in ring.members:
            party = parties[identity.name]
            party.r = group.random_exponent(party.rng)
            party.z = group.exp_g(party.r)
            tau = party.rng.zn_star(params.n)
            t_value = pow(tau, params.e, params.n)
            challenge = params.hash_function.challenge(
                identity.to_bytes(), int_to_bytes(party.z), int_to_bytes(t_value)
            )
            s_value = (tau * pow(party.private_key.secret, challenge, params.n)) % params.n
            party.recorder.record_operation("modexp", 3)  # z_i, t_i, S_ID^c
            authenticators[identity.name] = {"t": t_value, "s": s_value}
            medium.send(
                Message.broadcast(
                    identity,
                    "ssn-round1",
                    [
                        identity_part(identity),
                        group_element_part("z", party.z, group.element_bits),
                        group_element_part("t", t_value, params.modulus_bits),
                        group_element_part("s", s_value, params.modulus_bits),
                    ],
                )
            )

        # Each member verifies every other member's authenticator: two modular
        # exponentiations per member, the 2(n-1) term of Table 1.  The check
        # is a pure function of the broadcast (sender, z, t, s) that every
        # receiver evaluates identically, so its *outcome* is memoised for the
        # run; each receiver still records its own two exponentiations.
        check_cache: Dict[tuple, bool] = {}
        z_views: Dict[str, Dict[str, int]] = {}
        for identity in ring.members:
            party = parties[identity.name]
            view = {identity.name: party.z}
            for message in party.node.drain_inbox("ssn-round1"):
                sender: Identity = message.value("identity")  # type: ignore[assignment]
                z_value = int(message.value("z"))
                t_value = int(message.value("t"))
                s_value = int(message.value("s"))
                cache_key = (sender.name, z_value, t_value, s_value)
                accepted = check_cache.get(cache_key)
                if accepted is None:
                    challenge = params.hash_function.challenge(
                        sender.to_bytes(), int_to_bytes(z_value), int_to_bytes(t_value)
                    )
                    hid = params.identity_public_key(sender.to_bytes())
                    check = (pow(s_value, params.e, params.n) * pow(modinv(hid, params.n), challenge, params.n)) % params.n
                    accepted = check_cache[cache_key] = check == t_value
                party.recorder.record_operation("modexp", 2)
                if not accepted:
                    raise VerificationError(
                        f"{identity.name} rejected {sender.name}'s SSN authenticator"
                    )
                view[sender.name] = z_value
            if len(view) != ring.size:
                raise ProtocolError(f"{identity.name} missed Round 1 messages")
            z_views[identity.name] = view

        # Round 2: plain BD X_i broadcast and key computation.
        ring_names = [m.name for m in ring.members]
        for identity in ring.members:
            party = parties[identity.name]
            view = z_views[identity.name]
            left = ring.left_neighbour(identity)
            right = ring.right_neighbour(identity)
            x_value = compute_bd_x_value(group, view[right.name], view[left.name], party.r)
            party.recorder.record_operation("modexp")
            medium.send(
                Message.broadcast(
                    identity,
                    "ssn-round2",
                    [identity_part(identity), group_element_part("X", x_value, group.element_bits)],
                )
            )
        for identity in ring.members:
            party = parties[identity.name]
            view = z_views[identity.name]
            x_table: Dict[str, int] = {}
            for message in party.node.drain_inbox("ssn-round2"):
                sender: Identity = message.value("identity")  # type: ignore[assignment]
                x_table[sender.name] = int(message.value("X"))
            left = ring.left_neighbour(identity)
            right = ring.right_neighbour(identity)
            x_table[identity.name] = compute_bd_x_value(group, view[right.name], view[left.name], party.r)
            party.group_key = compute_bd_key(group, ring_names, identity.name, party.r, view, x_table)
            party.recorder.record_operation("modexp")

        state = GroupState(setup=self.setup, ring=ring, parties=parties)
        state.group_key = parties[ring.controller().name].group_key
        return ProtocolResult(protocol=self.name, state=state, medium=medium, rounds=2)


register_protocol("ssn", SSNProtocol)
