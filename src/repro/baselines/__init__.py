"""Baseline protocols the paper compares against: plain BD, sign-all
authenticated BD (SOK / ECDSA / DSA), the SSN ID-based GKA, and BD re-execution
as the dynamic-membership baseline."""

from .authenticated_bd import SUPPORTED_SCHEMES, AuthenticatedBDProtocol
from .bd import BurmesterDesmedtProtocol
from .bd_dynamic import BDRerunDynamic
from .ssn import SSNProtocol

__all__ = [
    "SUPPORTED_SCHEMES",
    "AuthenticatedBDProtocol",
    "BurmesterDesmedtProtocol",
    "BDRerunDynamic",
    "SSNProtocol",
]
