"""The unauthenticated Burmester–Desmedt (BD) protocol.

This is the substrate everything else builds on: two broadcast rounds
(``z_i = g^{r_i}``, then ``X_i = (z_{i+1}/z_{i-1})^{r_i}``) followed by the
telescoping key computation.  It provides no authentication — an active
adversary can insert itself — which is exactly why the paper and all four of
its baselines add signatures on top.  It is included both as the building
block of the authenticated variants and as the cost floor in the analysis.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..exceptions import ParameterError, ProtocolError
from ..mathutils.rand import DeterministicRNG
from ..network.medium import BroadcastMedium
from ..network.message import Message, group_element_part, identity_part
from ..network.node import Node
from ..network.topology import RingTopology
from ..pki.identity import Identity
from ..core.base import (
    GroupState,
    PartyState,
    Protocol,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
)
from ..core.registry import register_protocol

__all__ = ["BurmesterDesmedtProtocol"]


class BurmesterDesmedtProtocol(Protocol):
    """Plain BD group key agreement (no authentication).

    No dynamic sub-protocols: membership events fall back to
    :meth:`~repro.core.base.Protocol.apply_event`'s full re-execution.
    """

    name = "bd-unauthenticated"

    def run(
        self,
        members: Sequence[Identity],
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
    ) -> ProtocolResult:
        """Run plain BD among ``members``."""
        if len(members) < 2:
            raise ParameterError("the GKA needs at least two members")
        ring = RingTopology(members)
        medium = medium if medium is not None else BroadcastMedium()
        rng = DeterministicRNG(seed, label="bd")
        group = self.setup.group

        parties: Dict[str, PartyState] = {}
        for identity in members:
            key = self.setup.enroll(identity)
            node = Node(identity)
            medium.attach(node)
            parties[identity.name] = PartyState(
                identity=identity,
                private_key=key,
                rng=rng.fork(f"party/{identity.name}"),
                node=node,
            )

        # Round 1: broadcast z_i.
        for identity in ring.members:
            party = parties[identity.name]
            party.r = group.random_exponent(party.rng)
            party.z = group.exp_g(party.r)
            party.recorder.record_operation("modexp")
            medium.send(
                Message.broadcast(
                    identity,
                    "bd-round1",
                    [identity_part(identity), group_element_part("z", party.z, group.element_bits)],
                )
            )

        z_views: Dict[str, Dict[str, int]] = {}
        for identity in ring.members:
            party = parties[identity.name]
            view = {identity.name: party.z}
            for message in party.node.drain_inbox("bd-round1"):
                sender: Identity = message.value("identity")  # type: ignore[assignment]
                view[sender.name] = int(message.value("z"))
            if len(view) != ring.size:
                raise ProtocolError(f"{identity.name} missed Round 1 messages")
            z_views[identity.name] = view

        # Round 2: broadcast X_i.
        for identity in ring.members:
            party = parties[identity.name]
            view = z_views[identity.name]
            left = ring.left_neighbour(identity)
            right = ring.right_neighbour(identity)
            x_value = compute_bd_x_value(group, view[right.name], view[left.name], party.r)
            party.recorder.record_operation("modexp")
            medium.send(
                Message.broadcast(
                    identity,
                    "bd-round2",
                    [identity_part(identity), group_element_part("X", x_value, group.element_bits)],
                )
            )

        ring_names = [m.name for m in ring.members]
        for identity in ring.members:
            party = parties[identity.name]
            view = z_views[identity.name]
            x_table: Dict[str, int] = {}
            for message in party.node.drain_inbox("bd-round2"):
                sender: Identity = message.value("identity")  # type: ignore[assignment]
                x_table[sender.name] = int(message.value("X"))
            left = ring.left_neighbour(identity)
            right = ring.right_neighbour(identity)
            x_table[identity.name] = compute_bd_x_value(group, view[right.name], view[left.name], party.r)
            party.group_key = compute_bd_key(group, ring_names, identity.name, party.r, view, x_table)
            party.recorder.record_operation("modexp")

        state = GroupState(setup=self.setup, ring=ring, parties=parties)
        state.group_key = parties[ring.controller().name].group_key
        return ProtocolResult(protocol=self.name, state=state, medium=medium, rounds=2)


register_protocol("bd-unauthenticated", BurmesterDesmedtProtocol, aliases=("bd",))
