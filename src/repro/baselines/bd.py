"""The unauthenticated Burmester–Desmedt (BD) protocol.

This is the substrate everything else builds on: two broadcast rounds
(``z_i = g^{r_i}``, then ``X_i = (z_{i+1}/z_{i-1})^{r_i}``) followed by the
telescoping key computation.  It provides no authentication — an active
adversary can insert itself — which is exactly why the paper and all four of
its baselines add signatures on top.  It is included both as the building
block of the authenticated variants and as the cost floor in the analysis.

Execution is one :class:`~repro.engine.machine.PartyMachine` per member:
Round 1 from ``start``, Round 2 on Round-1 completeness, key derivation on
Round-2 completeness.  This two-hook shape is the template every
authenticated variant elaborates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..engine.executor import EngineStats
from ..engine.machine import MachinePlan, Outbound, PartyMachine
from ..exceptions import ParameterError
from ..mathutils.rand import DeterministicRNG
from ..network.medium import BroadcastMedium
from ..network.message import Message, group_element_part, identity_part
from ..network.node import Node
from ..network.topology import RingTopology
from ..pki.identity import Identity
from ..core.base import (
    GroupState,
    PartyState,
    Protocol,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
)
from ..core.registry import register_protocol

__all__ = ["BurmesterDesmedtProtocol"]


class _BDPartyMachine(PartyMachine):
    """One member's view of plain two-round BD."""

    def __init__(
        self,
        party: PartyState,
        setup: SystemSetup,
        ring: RingTopology,
    ) -> None:
        super().__init__(party.identity, party.node)
        self.party = party
        self.setup = setup
        self.ring = ring
        self._ring_names = [m.name for m in ring.members]
        self._z_view: Dict[str, int] = {}
        self._x_table: Dict[str, int] = {}
        self._round1_complete = False
        self._round2_buffer: List[Message] = []

    def start(self, now: float) -> List[Outbound]:
        group = self.setup.group
        party = self.party
        party.r = group.random_exponent(party.rng)
        party.z = group.exp_g(party.r)
        party.recorder.record_operation("modexp")
        self._z_view[self.identity.name] = party.z
        self.waiting_for = "bd-round1"
        return [
            Outbound(
                Message.broadcast(
                    self.identity,
                    "bd-round1",
                    [
                        identity_part(self.identity),
                        group_element_part("z", party.z, group.element_bits),
                    ],
                )
            )
        ]

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        if message.round_label == "bd-round1":
            sender: Identity = message.value("identity")  # type: ignore[assignment]
            self._z_view[sender.name] = int(message.value("z"))
            if len(self._z_view) != self.ring.size:
                return []
            self._round1_complete = True
            outs = self._emit_round2(now)
            buffered, self._round2_buffer = self._round2_buffer, []
            for held in buffered:
                outs.extend(self.on_message(held, now))
            return outs
        if message.round_label == "bd-round2":
            if not self._round1_complete:
                self._round2_buffer.append(message)
                return []
            sender = message.value("identity")  # type: ignore[assignment]
            self._x_table[sender.name] = int(message.value("X"))
            if len(self._x_table) == self.ring.size:
                self._derive_key(now)
        return []

    def _emit_round2(self, now: float) -> List[Outbound]:
        group = self.setup.group
        party = self.party
        left = self.ring.left_neighbour(self.identity)
        right = self.ring.right_neighbour(self.identity)
        x_value = compute_bd_x_value(
            group, self._z_view[right.name], self._z_view[left.name], party.r
        )
        party.recorder.record_operation("modexp")
        self._x_table[self.identity.name] = x_value
        self.waiting_for = "bd-round2"
        return [
            Outbound(
                Message.broadcast(
                    self.identity,
                    "bd-round2",
                    [
                        identity_part(self.identity),
                        group_element_part("X", x_value, group.element_bits),
                    ],
                )
            )
        ]

    def _derive_key(self, now: float) -> None:
        group = self.setup.group
        party = self.party
        party.group_key = compute_bd_key(
            group, self._ring_names, self.identity.name, party.r, self._z_view, self._x_table
        )
        party.recorder.record_operation("modexp")
        self.finished = True
        self.waiting_for = None


class BurmesterDesmedtProtocol(Protocol):
    """Plain BD group key agreement (no authentication).

    No dynamic sub-protocols: membership events fall back to
    :meth:`~repro.core.base.Protocol.apply_event`'s full re-execution.
    """

    name = "bd-unauthenticated"

    def build_machines(
        self,
        members: Sequence[Identity],
        *,
        medium: BroadcastMedium,
        seed: object = 0,
        **kwargs: object,
    ) -> MachinePlan:
        """Decompose plain BD into per-member machines."""
        if kwargs:
            raise ParameterError(f"unknown run options: {sorted(kwargs)}")
        if len(members) < 2:
            raise ParameterError("the GKA needs at least two members")
        ring = RingTopology(members)
        rng = DeterministicRNG(seed, label="bd")
        parties: Dict[str, PartyState] = {}
        for identity in members:
            key = self.setup.enroll(identity)
            node = Node(identity)
            medium.attach(node)
            parties[identity.name] = PartyState(
                identity=identity,
                private_key=key,
                rng=rng.fork(f"party/{identity.name}"),
                node=node,
            )
        machines = [
            _BDPartyMachine(parties[identity.name], self.setup, ring)
            for identity in ring.members
        ]

        def finish(stats: EngineStats) -> ProtocolResult:
            state = GroupState(setup=self.setup, ring=ring, parties=parties)
            state.group_key = parties[ring.controller().name].group_key
            return ProtocolResult(
                protocol=self.name,
                state=state,
                medium=medium,
                rounds=2,
                sim_latency_s=stats.sim_time_s,
                timeouts=stats.timeouts,
            )

        return MachinePlan(machines=machines, finish=finish, rounds=2)


register_protocol("bd-unauthenticated", BurmesterDesmedtProtocol, aliases=("bd",))
