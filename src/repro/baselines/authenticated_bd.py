"""Authenticated BD baselines: "sign-all" BD with SOK, ECDSA or DSA.

These are the second, third and fourth protocols of the paper's Table 1.  The
BD rounds are unchanged; authentication is added the intuitive way:

* every user signs ``m_i = U_i || z_i || X_i || prod_j z_j`` (binding both
  rounds' keying material) and attaches the signature to its Round 2
  broadcast;
* every user verifies the ``n - 1`` signatures it receives;
* with the certificate-based schemes (ECDSA, DSA) every user additionally
  transmits its certificate in Round 1 and receives and verifies ``n - 1``
  certificates;
* with the ID-based SOK scheme there are no certificates, but each
  verification involves pairings and a MapToPoint of the signer's identity,
  which is what makes it the most expensive column of Figure 1.

Cost accounting notes: certificate verifications are priced as one signature
verification of the CA's scheme (that is what they are); the per-user
operation tally for a certificate-based run therefore shows ``2(n-1)``
verifications — ``n - 1`` for certificates plus ``n - 1`` for signatures —
matching Table 1's separate "Cert Ver" and "Sign Ver" rows.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..exceptions import ParameterError, ProtocolError, SignatureError, VerificationError
from ..groups.pairing import SimulatedPairingGroup
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import encode_fields, int_to_bytes
from ..network.medium import BroadcastMedium
from ..network.message import Message, MessagePart, group_element_part, identity_part, signature_part
from ..network.node import Node
from ..network.topology import RingTopology
from ..pki.ca import Certificate, CertificateAuthority
from ..pki.identity import Identity
from ..pki.pkg import SOKPrivateKeyGenerator
from ..signatures.dsa import DSASignatureScheme
from ..signatures.ecdsa import ECDSASignatureScheme
from ..signatures.sok import SOKSignatureScheme
from ..core.base import (
    GroupState,
    PartyState,
    Protocol,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
)
from ..core.registry import register_protocol

__all__ = ["AuthenticatedBDProtocol", "SUPPORTED_SCHEMES"]

SUPPORTED_SCHEMES = ("sok", "ecdsa", "dsa")


class AuthenticatedBDProtocol(Protocol):
    """BD authenticated by signing every Round 2 message (the paper's baselines).

    Like every baseline, membership events re-execute the full GKA (the
    inherited :meth:`~repro.core.base.Protocol.apply_event`) — this is the
    very re-execution cost Tables 4 and 5 hold against the baselines.
    """

    def __init__(self, setup: SystemSetup, scheme: str = "ecdsa", *, seed: object = "auth-bd-infra") -> None:
        if scheme not in SUPPORTED_SCHEMES:
            raise ParameterError(f"scheme must be one of {SUPPORTED_SCHEMES}, got {scheme!r}")
        super().__init__(setup)
        self.scheme_name = scheme
        self.name = f"bd-{scheme}"
        infra_rng = DeterministicRNG(seed, label=f"auth-bd-{scheme}")
        if scheme == "sok":
            self._pairing = SimulatedPairingGroup(setup.group, setup.hash_function)
            self._sok_pkg = SOKPrivateKeyGenerator(self._pairing, infra_rng.fork("sok-pkg"))
            self._signature = self._sok_pkg.scheme
            self._ca: Optional[CertificateAuthority] = None
        else:
            if scheme == "ecdsa":
                self._signature = ECDSASignatureScheme()
            else:
                self._signature = DSASignatureScheme(setup.group)
            self._ca = CertificateAuthority(self._signature, infra_rng.fork("ca"))
        self._user_keys: Dict[str, object] = {}
        self._certificates: Dict[str, Certificate] = {}
        self._infra_rng = infra_rng

    # --------------------------------------------------------------- key mgmt
    @property
    def uses_certificates(self) -> bool:
        """Whether this variant transmits and verifies certificates (ECDSA/DSA)."""
        return self._ca is not None

    def _provision(self, identity: Identity) -> object:
        """Give a member its long-term signing key (and certificate if needed)."""
        if identity.name in self._user_keys:
            return self._user_keys[identity.name]
        if self.scheme_name == "sok":
            key = self._sok_pkg.register_and_extract(identity)
        else:
            key = self._signature.generate_keypair(self._infra_rng.fork(f"user/{identity.name}"))
            self._certificates[identity.name] = self._ca.issue(identity, key.public)  # type: ignore[union-attr]
        self._user_keys[identity.name] = key
        return key

    # -------------------------------------------------------------------- run
    def run(
        self,
        members: Sequence[Identity],
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
    ) -> ProtocolResult:
        """Run authenticated BD among ``members``."""
        if len(members) < 2:
            raise ParameterError("the GKA needs at least two members")
        ring = RingTopology(members)
        medium = medium if medium is not None else BroadcastMedium()
        rng = DeterministicRNG(seed, label=self.name)
        group = self.setup.group

        parties: Dict[str, PartyState] = {}
        signing_keys: Dict[str, object] = {}
        for identity in members:
            signing_keys[identity.name] = self._provision(identity)
            gq_key = self.setup.enroll(identity)  # identities stay registered with the PKG too
            node = Node(identity)
            medium.attach(node)
            parties[identity.name] = PartyState(
                identity=identity,
                private_key=gq_key,
                rng=rng.fork(f"party/{identity.name}"),
                node=node,
            )

        # Round 1: broadcast z_i (plus the certificate for the cert-based schemes).
        for identity in ring.members:
            party = parties[identity.name]
            party.r = group.random_exponent(party.rng)
            party.z = group.exp_g(party.r)
            party.recorder.record_operation("modexp")
            parts = [identity_part(identity), group_element_part("z", party.z, group.element_bits)]
            if self.uses_certificates:
                certificate = self._certificates[identity.name]
                parts.append(MessagePart("certificate", certificate, certificate.wire_bits))
            medium.send(Message.broadcast(identity, "authbd-round1", parts))

        z_views: Dict[str, Dict[str, int]] = {}
        cert_views: Dict[str, Dict[str, Certificate]] = {}
        for identity in ring.members:
            party = parties[identity.name]
            z_view = {identity.name: party.z}
            certs: Dict[str, Certificate] = {}
            for message in party.node.drain_inbox("authbd-round1"):
                sender: Identity = message.value("identity")  # type: ignore[assignment]
                z_view[sender.name] = int(message.value("z"))
                if self.uses_certificates:
                    certs[sender.name] = message.value("certificate")  # type: ignore[assignment]
            if len(z_view) != ring.size:
                raise ProtocolError(f"{identity.name} missed Round 1 messages")
            z_views[identity.name] = z_view
            cert_views[identity.name] = certs

        # Round 2: compute X_i, sign U_i || z_i || X_i || prod z_j, broadcast.
        ring_names = [m.name for m in ring.members]
        signed_bodies: Dict[str, bytes] = {}
        for identity in ring.members:
            party = parties[identity.name]
            view = z_views[identity.name]
            left = ring.left_neighbour(identity)
            right = ring.right_neighbour(identity)
            x_value = compute_bd_x_value(group, view[right.name], view[left.name], party.r)
            party.recorder.record_operation("modexp")
            z_product = group.product(view[name] for name in sorted(view))
            body = encode_fields(
                [identity.to_bytes(), int_to_bytes(party.z), int_to_bytes(x_value), int_to_bytes(z_product)]
            )
            signed_bodies[identity.name] = body
            signature = self._signature.sign(signing_keys[identity.name], body, party.rng)
            party.recorder.record_signature(self.scheme_name, "gen")
            medium.send(
                Message.broadcast(
                    identity,
                    "authbd-round2",
                    [
                        identity_part(identity),
                        group_element_part("X", x_value, group.element_bits),
                        signature_part(signature),
                    ],
                )
            )

        # Verification and key computation.
        for identity in ring.members:
            party = parties[identity.name]
            view = z_views[identity.name]
            x_table: Dict[str, int] = {}
            left = ring.left_neighbour(identity)
            right = ring.right_neighbour(identity)
            x_table[identity.name] = compute_bd_x_value(group, view[right.name], view[left.name], party.r)
            z_product = group.product(view[name] for name in sorted(view))
            for message in party.node.drain_inbox("authbd-round2"):
                sender: Identity = message.value("identity")  # type: ignore[assignment]
                x_value = int(message.value("X"))
                signature = message.value("signature")
                body = encode_fields(
                    [
                        sender.to_bytes(),
                        int_to_bytes(view[sender.name]),
                        int_to_bytes(x_value),
                        int_to_bytes(z_product),
                    ]
                )
                if self.uses_certificates:
                    certificate = cert_views[identity.name][sender.name]
                    if not self._ca.verify(certificate):  # type: ignore[union-attr]
                        raise VerificationError(f"{identity.name} rejected {sender.name}'s certificate")
                    party.recorder.record_signature(self.scheme_name, "ver")  # cert verification
                    public_key = self._decode_certified_key(certificate)
                    verified = self._signature.verify(public_key, body, signature)
                else:
                    verified = self._signature.verify(
                        sender.to_bytes(), body, signature, master_public=self._sok_pkg.master_public
                    )
                party.recorder.record_signature(self.scheme_name, "ver")
                if not verified:
                    raise SignatureError(f"{identity.name} rejected {sender.name}'s signature")
                x_table[sender.name] = x_value
            party.group_key = compute_bd_key(group, ring_names, identity.name, party.r, view, x_table)
            party.recorder.record_operation("modexp")

        state = GroupState(setup=self.setup, ring=ring, parties=parties)
        state.group_key = parties[ring.controller().name].group_key
        return ProtocolResult(protocol=self.name, state=state, medium=medium, rounds=2)

    # ----------------------------------------------------------------- helper
    def _decode_certified_key(self, certificate: Certificate):
        """Recover the subject public key object from a certificate."""
        encoding = certificate.public_key_encoding
        if self.scheme_name == "ecdsa":
            curve = self._signature.curve  # type: ignore[union-attr]
            size = (curve.p.bit_length() + 7) // 8
            x = int.from_bytes(encoding[:size], "big")
            y = int.from_bytes(encoding[size:], "big")
            return curve.point(x, y)
        return int.from_bytes(encoding, "big")


for _scheme in SUPPORTED_SCHEMES:
    register_protocol(
        f"bd-{_scheme}",
        # Bind the loop variable eagerly so each factory keeps its own scheme.
        lambda setup, scheme=_scheme: AuthenticatedBDProtocol(setup, scheme),
    )
