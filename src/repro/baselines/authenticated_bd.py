"""Authenticated BD baselines: "sign-all" BD with SOK, ECDSA or DSA.

These are the second, third and fourth protocols of the paper's Table 1.  The
BD rounds are unchanged; authentication is added the intuitive way:

* every user signs ``m_i = U_i || z_i || X_i || prod_j z_j`` (binding both
  rounds' keying material) and attaches the signature to its Round 2
  broadcast;
* every user verifies the ``n - 1`` signatures it receives;
* with the certificate-based schemes (ECDSA, DSA) every user additionally
  transmits its certificate in Round 1 and receives and verifies ``n - 1``
  certificates;
* with the ID-based SOK scheme there are no certificates, but each
  verification involves pairings and a MapToPoint of the signer's identity,
  which is what makes it the most expensive column of Figure 1.

The run executes as one :class:`~repro.engine.machine.PartyMachine` per
member, following the plain-BD two-hook shape with signing layered onto the
Round-2 emission and the ``n - 1`` verifications performed when the Round-2
view completes.

Cost accounting notes: certificate verifications are priced as one signature
verification of the CA's scheme (that is what they are); the per-user
operation tally for a certificate-based run therefore shows ``2(n-1)``
verifications — ``n - 1`` for certificates plus ``n - 1`` for signatures —
matching Table 1's separate "Cert Ver" and "Sign Ver" rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.executor import EngineStats
from ..engine.machine import MachinePlan, Outbound, PartyMachine
from ..exceptions import ParameterError, SignatureError, VerificationError
from ..groups.pairing import SimulatedPairingGroup
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import encode_fields, int_to_bytes
from ..network.medium import BroadcastMedium
from ..network.message import Message, MessagePart, group_element_part, identity_part, signature_part
from ..network.node import Node
from ..network.topology import RingTopology
from ..pki.ca import Certificate, CertificateAuthority
from ..pki.identity import Identity
from ..pki.pkg import SOKPrivateKeyGenerator
from ..signatures.dsa import DSASignatureScheme
from ..signatures.ecdsa import ECDSASignatureScheme
from ..signatures.sok import SOKSignatureScheme
from ..core.base import (
    GroupState,
    PartyState,
    Protocol,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
)
from ..core.registry import register_protocol

__all__ = ["AuthenticatedBDProtocol", "SUPPORTED_SCHEMES"]

SUPPORTED_SCHEMES = ("sok", "ecdsa", "dsa")


class _AuthBDPartyMachine(PartyMachine):
    """One member's view of sign-all authenticated BD."""

    def __init__(
        self,
        protocol: "AuthenticatedBDProtocol",
        party: PartyState,
        ring: RingTopology,
        signing_key: object,
    ) -> None:
        super().__init__(party.identity, party.node)
        self.protocol = protocol
        self.party = party
        self.ring = ring
        self.signing_key = signing_key
        self._ring_names = [m.name for m in ring.members]
        self._z_view: Dict[str, int] = {}
        self._certs: Dict[str, Certificate] = {}
        self._round2: Dict[str, Tuple[int, object]] = {}
        self._z_product: Optional[int] = None
        self._x_table: Dict[str, int] = {}
        self._round1_complete = False
        self._round2_buffer: List[Message] = []

    def start(self, now: float) -> List[Outbound]:
        group = self.protocol.setup.group
        party = self.party
        party.r = group.random_exponent(party.rng)
        party.z = group.exp_g(party.r)
        party.recorder.record_operation("modexp")
        self._z_view[self.identity.name] = party.z
        self.waiting_for = "authbd-round1"
        parts = [
            identity_part(self.identity),
            group_element_part("z", party.z, group.element_bits),
        ]
        if self.protocol.uses_certificates:
            certificate = self.protocol.certificate_for(self.identity)
            parts.append(MessagePart("certificate", certificate, certificate.wire_bits))
        return [Outbound(Message.broadcast(self.identity, "authbd-round1", parts))]

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        if message.round_label == "authbd-round1":
            sender: Identity = message.value("identity")  # type: ignore[assignment]
            self._z_view[sender.name] = int(message.value("z"))
            if self.protocol.uses_certificates:
                self._certs[sender.name] = message.value("certificate")  # type: ignore[assignment]
            if len(self._z_view) != self.ring.size:
                return []
            self._round1_complete = True
            outs = self._emit_round2(now)
            buffered, self._round2_buffer = self._round2_buffer, []
            for held in buffered:
                outs.extend(self.on_message(held, now))
            return outs
        if message.round_label == "authbd-round2":
            if not self._round1_complete:
                self._round2_buffer.append(message)
                return []
            sender = message.value("identity")  # type: ignore[assignment]
            self._round2[sender.name] = (int(message.value("X")), message.value("signature"))
            if len(self._round2) == self.ring.size - 1:
                self._verify_and_derive(now)
        return []

    # --------------------------------------------------------------- round 2
    def _emit_round2(self, now: float) -> List[Outbound]:
        group = self.protocol.setup.group
        party = self.party
        left = self.ring.left_neighbour(self.identity)
        right = self.ring.right_neighbour(self.identity)
        x_value = compute_bd_x_value(
            group, self._z_view[right.name], self._z_view[left.name], party.r
        )
        party.recorder.record_operation("modexp")
        self._z_product = group.product(self._z_view[name] for name in sorted(self._z_view))
        self._x_table[self.identity.name] = x_value
        body = encode_fields(
            [
                self.identity.to_bytes(),
                int_to_bytes(party.z),
                int_to_bytes(x_value),
                int_to_bytes(self._z_product),
            ]
        )
        signature = self.protocol.signature_scheme.sign(self.signing_key, body, party.rng)
        party.recorder.record_signature(self.protocol.scheme_name, "gen")
        self.waiting_for = "authbd-round2"
        return [
            Outbound(
                Message.broadcast(
                    self.identity,
                    "authbd-round2",
                    [
                        identity_part(self.identity),
                        group_element_part("X", x_value, group.element_bits),
                        signature_part(signature),
                    ],
                )
            )
        ]

    # ----------------------------------------------------------- verification
    def _verify_and_derive(self, now: float) -> None:
        group = self.protocol.setup.group
        party = self.party
        assert self._z_product is not None
        # Certificates first (per sender), then the n-1 signatures as one
        # batch_verify call: for DSA/ECDSA that is one random-linear-
        # combination multi-exp instead of n-1 independent verifications
        # (SOK falls back to the per-item loop).  Host time only — the
        # recorder still charges this receiver one "ver" per certificate and
        # one per signature, exactly as the loop did.
        senders: List[str] = []
        items: List[Tuple[object, bytes, object]] = []
        for sender_name, (x_value, signature) in self._round2.items():
            body = encode_fields(
                [
                    self.protocol.identity_bytes(sender_name),
                    int_to_bytes(self._z_view[sender_name]),
                    int_to_bytes(x_value),
                    int_to_bytes(self._z_product),
                ]
            )
            if self.protocol.uses_certificates:
                certificate = self._certs[sender_name]
                if not self.protocol.ca.verify(certificate):
                    raise VerificationError(
                        f"{self.identity.name} rejected {sender_name}'s certificate"
                    )
                party.recorder.record_signature(self.protocol.scheme_name, "ver")  # cert
                public_key: object = self.protocol.decode_certified_key(certificate)
            else:
                public_key = self.protocol.identity_bytes(sender_name)
            senders.append(sender_name)
            items.append((public_key, body, signature))
        # The coefficient stream is a *forked* (derivation-based) child, so
        # drawing from it never advances the party's own stream — transcripts
        # stay bit-identical to the per-item loop.
        batch_rng = party.rng.fork("batch-verify")
        if self.protocol.uses_certificates:
            outcomes = self.protocol.signature_scheme.batch_verify(items, batch_rng)
        else:
            outcomes = self.protocol.signature_scheme.batch_verify(
                items, batch_rng, master_public=self.protocol.sok_master_public
            )
        for sender_name, verified in zip(senders, outcomes):
            party.recorder.record_signature(self.protocol.scheme_name, "ver")
            if not verified:
                raise SignatureError(
                    f"{self.identity.name} rejected {sender_name}'s signature"
                )
            self._x_table[sender_name] = self._round2[sender_name][0]
        party.group_key = compute_bd_key(
            group, self._ring_names, self.identity.name, party.r, self._z_view, self._x_table
        )
        party.recorder.record_operation("modexp")
        self.finished = True
        self.waiting_for = None


class AuthenticatedBDProtocol(Protocol):
    """BD authenticated by signing every Round 2 message (the paper's baselines).

    Like every baseline, membership events re-execute the full GKA (the
    inherited :meth:`~repro.core.base.Protocol.apply_event`) — this is the
    very re-execution cost Tables 4 and 5 hold against the baselines.
    """

    def __init__(self, setup: SystemSetup, scheme: str = "ecdsa", *, seed: object = "auth-bd-infra") -> None:
        if scheme not in SUPPORTED_SCHEMES:
            raise ParameterError(f"scheme must be one of {SUPPORTED_SCHEMES}, got {scheme!r}")
        super().__init__(setup)
        self.scheme_name = scheme
        self.name = f"bd-{scheme}"
        infra_rng = DeterministicRNG(seed, label=f"auth-bd-{scheme}")
        if scheme == "sok":
            self._pairing = SimulatedPairingGroup(setup.group, setup.hash_function)
            self._sok_pkg = SOKPrivateKeyGenerator(self._pairing, infra_rng.fork("sok-pkg"))
            self._signature = self._sok_pkg.scheme
            self._ca: Optional[CertificateAuthority] = None
        else:
            if scheme == "ecdsa":
                self._signature = ECDSASignatureScheme()
            else:
                self._signature = DSASignatureScheme(setup.group)
            self._ca = CertificateAuthority(self._signature, infra_rng.fork("ca"))
        self._user_keys: Dict[str, object] = {}
        self._certificates: Dict[str, Certificate] = {}
        self._identities: Dict[str, Identity] = {}
        self._infra_rng = infra_rng

    # --------------------------------------------------------------- key mgmt
    @property
    def uses_certificates(self) -> bool:
        """Whether this variant transmits and verifies certificates (ECDSA/DSA)."""
        return self._ca is not None

    @property
    def signature_scheme(self) -> object:
        """The scheme used to sign Round-2 bodies."""
        return self._signature

    @property
    def ca(self) -> CertificateAuthority:
        """The certificate authority (certificate-based schemes only)."""
        assert self._ca is not None
        return self._ca

    @property
    def sok_master_public(self) -> object:
        """The SOK PKG's master public key (SOK scheme only)."""
        return self._sok_pkg.master_public

    def certificate_for(self, identity: Identity) -> Certificate:
        """The member's certificate (certificate-based schemes only)."""
        return self._certificates[identity.name]

    def identity_bytes(self, name: str) -> bytes:
        """Wire encoding of a provisioned member's identity."""
        return self._identities[name].to_bytes()

    def _provision(self, identity: Identity) -> object:
        """Give a member its long-term signing key (and certificate if needed)."""
        self._identities[identity.name] = identity
        if identity.name in self._user_keys:
            return self._user_keys[identity.name]
        if self.scheme_name == "sok":
            key = self._sok_pkg.register_and_extract(identity)
        else:
            key = self._signature.generate_keypair(self._infra_rng.fork(f"user/{identity.name}"))
            self._certificates[identity.name] = self._ca.issue(identity, key.public)  # type: ignore[union-attr]
        self._user_keys[identity.name] = key
        return key

    # -------------------------------------------------------------- machines
    def build_machines(
        self,
        members: Sequence[Identity],
        *,
        medium: BroadcastMedium,
        seed: object = 0,
        **kwargs: object,
    ) -> MachinePlan:
        """Decompose authenticated BD into per-member machines."""
        if kwargs:
            raise ParameterError(f"unknown run options: {sorted(kwargs)}")
        if len(members) < 2:
            raise ParameterError("the GKA needs at least two members")
        ring = RingTopology(members)
        rng = DeterministicRNG(seed, label=self.name)
        parties: Dict[str, PartyState] = {}
        signing_keys: Dict[str, object] = {}
        for identity in members:
            signing_keys[identity.name] = self._provision(identity)
            gq_key = self.setup.enroll(identity)  # identities stay registered with the PKG too
            node = Node(identity)
            medium.attach(node)
            parties[identity.name] = PartyState(
                identity=identity,
                private_key=gq_key,
                rng=rng.fork(f"party/{identity.name}"),
                node=node,
            )
        machines = [
            _AuthBDPartyMachine(
                self, parties[identity.name], ring, signing_keys[identity.name]
            )
            for identity in ring.members
        ]

        def finish(stats: EngineStats) -> ProtocolResult:
            state = GroupState(setup=self.setup, ring=ring, parties=parties)
            state.group_key = parties[ring.controller().name].group_key
            return ProtocolResult(
                protocol=self.name,
                state=state,
                medium=medium,
                rounds=2,
                sim_latency_s=stats.sim_time_s,
                timeouts=stats.timeouts,
            )

        return MachinePlan(machines=machines, finish=finish, rounds=2)

    # ----------------------------------------------------------------- helper
    def decode_certified_key(self, certificate: Certificate):
        """Recover the subject public key object from a certificate."""
        encoding = certificate.public_key_encoding
        if self.scheme_name == "ecdsa":
            curve = self._signature.curve  # type: ignore[union-attr]
            size = (curve.p.bit_length() + 7) // 8
            x = int.from_bytes(encoding[:size], "big")
            y = int.from_bytes(encoding[size:], "big")
            return curve.point(x, y)
        return int.from_bytes(encoding, "big")


for _scheme in SUPPORTED_SCHEMES:
    register_protocol(
        f"bd-{_scheme}",
        # Bind the loop variable eagerly so each factory keeps its own scheme.
        lambda setup, scheme=_scheme: AuthenticatedBDProtocol(setup, scheme),
    )
