"""Dual-clock tracing: spans carrying wall time *and* virtual sim time.

A :class:`Span` records where time went in one unit of work — a protocol
run, a per-party round action, a kernel batch, a scenario step, a campaign
cell, a fleet dispatch.  Every span carries two clocks:

* **wall** — host seconds relative to the owning tracer's epoch (what the
  hardware spent);
* **sim** — virtual seconds from the event kernel (what the *simulated*
  network spent), absent for work outside any kernel run.

Spans live on two axes borrowed from the Chrome trace-event model: a
*process* (the fleet maps each worker to one; standalone runs use ``main``)
and a *track* (the "thread" row inside a process — one per simulated party,
plus ``kernel`` / ``scenario`` / ``cells`` service tracks).

Exports:

* :meth:`Tracer.to_jsonl` — one self-describing JSON object per span;
* :meth:`Tracer.to_chrome` — Chrome trace-event JSON loadable in Perfetto
  (``chrome://tracing``): wall time drives ``ts``/``dur``, sim times ride in
  ``args.sim_start_s`` / ``args.sim_dur_s``, and metadata events name every
  process and track.

Tracing is observation-only by construction: spans are recorded *around*
work that never reads them back, so a traced run is bit-identical to an
untraced one (the golden equivalence suite pins this).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Span", "Tracer"]


class Span:
    """One traced unit of work (mutable while open, plain data after)."""

    __slots__ = (
        "name",
        "category",
        "process",
        "track",
        "wall_start",
        "wall_dur",
        "sim_start",
        "sim_dur",
        "phase",
        "args",
    )

    def __init__(
        self,
        name: str,
        *,
        category: str = "",
        process: str = "main",
        track: str = "main",
        wall_start: float = 0.0,
        wall_dur: float = 0.0,
        sim_start: Optional[float] = None,
        sim_dur: Optional[float] = None,
        phase: str = "span",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.process = process
        self.track = track
        self.wall_start = wall_start
        self.wall_dur = wall_dur
        self.sim_start = sim_start
        self.sim_dur = sim_dur
        self.phase = phase  # "span" (duration) or "instant"
        self.args = args if args is not None else {}

    # ------------------------------------------------------------- open spans
    def finish_sim(self, sim_end: float) -> None:
        """Close the sim clock: duration from ``sim_start`` to ``sim_end``."""
        if self.sim_start is not None:
            self.sim_dur = max(0.0, sim_end - self.sim_start)

    def arg(self, key: str, value: object) -> None:
        self.args[key] = value

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "cat": self.category,
            "process": self.process,
            "track": self.track,
            "wall_start_s": round(self.wall_start, 9),
            "wall_dur_s": round(self.wall_dur, 9),
            "phase": self.phase,
        }
        if self.sim_start is not None:
            payload["sim_start_s"] = self.sim_start
        if self.sim_dur is not None:
            payload["sim_dur_s"] = self.sim_dur
        if self.args:
            payload["args"] = self.args
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        return cls(
            str(payload.get("name", "?")),
            category=str(payload.get("cat", "")),
            process=str(payload.get("process", "main")),
            track=str(payload.get("track", "main")),
            wall_start=float(payload.get("wall_start_s", 0.0)),
            wall_dur=float(payload.get("wall_dur_s", 0.0)),
            sim_start=(
                float(payload["sim_start_s"]) if "sim_start_s" in payload else None
            ),
            sim_dur=float(payload["sim_dur_s"]) if "sim_dur_s" in payload else None,
            phase=str(payload.get("phase", "span")),
            args=dict(payload.get("args") or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, track={self.track!r}, "
            f"wall={self.wall_start:.6f}+{self.wall_dur:.6f}s, sim={self.sim_start})"
        )


class Tracer:
    """Collects spans against one wall-clock epoch.

    ``max_spans`` bounds memory on pathological workloads: past it, new spans
    are counted in :attr:`dropped` instead of stored (the count is exported
    so a truncated trace is never mistaken for a complete one).
    """

    def __init__(self, process: str = "main", *, max_spans: int = 250_000) -> None:
        self.process = process
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._epoch = time.perf_counter()

    # ----------------------------------------------------------------- clocks
    def now(self) -> float:
        """Host seconds since this tracer's epoch."""
        return time.perf_counter() - self._epoch

    # -------------------------------------------------------------- recording
    def add(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        category: str = "",
        track: str = "main",
        process: Optional[str] = None,
        sim_start: Optional[float] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> Iterator[Span]:
        """Open a span around a block; the yielded span is mutable inside."""
        span = Span(
            name,
            category=category,
            process=process if process is not None else self.process,
            track=track,
            wall_start=self.now(),
            sim_start=sim_start,
            args=args,
        )
        try:
            yield span
        finally:
            span.wall_dur = self.now() - span.wall_start
            self.add(span)

    def complete(
        self,
        name: str,
        *,
        wall_start: float,
        wall_dur: float,
        category: str = "",
        track: str = "main",
        process: Optional[str] = None,
        sim_start: Optional[float] = None,
        sim_dur: Optional[float] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record an already-measured span (the hot-path form)."""
        self.add(
            Span(
                name,
                category=category,
                process=process if process is not None else self.process,
                track=track,
                wall_start=wall_start,
                wall_dur=wall_dur,
                sim_start=sim_start,
                sim_dur=sim_dur,
                args=args,
            )
        )

    def instant(
        self,
        name: str,
        *,
        category: str = "",
        track: str = "main",
        process: Optional[str] = None,
        sim_time: Optional[float] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a zero-duration marker (timeout wave, worker loss, ...)."""
        self.add(
            Span(
                name,
                category=category,
                process=process if process is not None else self.process,
                track=track,
                wall_start=self.now(),
                wall_dur=0.0,
                sim_start=sim_time,
                sim_dur=0.0 if sim_time is not None else None,
                phase="instant",
                args=args,
            )
        )

    def adopt(
        self,
        payloads: Iterable[Dict[str, object]],
        *,
        process: Optional[str] = None,
        wall_offset: float = 0.0,
    ) -> int:
        """Absorb serialized spans from another process into this trace.

        ``process`` overrides the spans' process axis (the controller files
        worker spans under the worker's name) and ``wall_offset`` shifts
        their wall clock onto this tracer's epoch (workers time spans
        relative to the cell's start; the controller knows when it dispatched
        the cell).  Returns how many spans were adopted.
        """
        adopted = 0
        for payload in payloads:
            try:
                span = Span.from_dict(payload)
            except (TypeError, ValueError):
                continue  # a malformed span is dropped, never fatal
            if process is not None:
                span.process = process
            span.wall_start += wall_offset
            self.add(span)
            adopted += 1
        return adopted

    # ------------------------------------------------------------------ views
    def __len__(self) -> int:
        return len(self.spans)

    def count(self, category: Optional[str] = None) -> int:
        if category is None:
            return len(self.spans)
        return sum(1 for span in self.spans if span.category == category)

    def processes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.process)
        return list(seen)

    # ---------------------------------------------------------------- exports
    def to_jsonl(self, path: str) -> None:
        """One JSON object per span (plus a trailing meta line)."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict(), sort_keys=True))
                handle.write("\n")
            handle.write(
                json.dumps(
                    {"meta": {"spans": len(self.spans), "dropped": self.dropped}},
                    sort_keys=True,
                )
            )
            handle.write("\n")

    def chrome_events(self) -> List[Dict[str, object]]:
        """The spans as Chrome trace-event dicts (``ts``/``dur`` in µs)."""
        pids: Dict[str, int] = {}
        tids: Dict[Tuple[str, str], int] = {}
        events: List[Dict[str, object]] = []
        for span in self.spans:
            pid = pids.get(span.process)
            if pid is None:
                pid = pids[span.process] = len(pids) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": span.process},
                    }
                )
            key = (span.process, span.track)
            tid = tids.get(key)
            if tid is None:
                tid = tids[key] = sum(1 for p, _ in tids if p == span.process) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": span.track},
                    }
                )
            args: Dict[str, object] = dict(span.args)
            if span.sim_start is not None:
                args["sim_start_s"] = span.sim_start
            if span.sim_dur is not None:
                args["sim_dur_s"] = span.sim_dur
            event: Dict[str, object] = {
                "name": span.name,
                "cat": span.category or "general",
                "pid": pid,
                "tid": tid,
                "ts": round(span.wall_start * 1e6, 3),
                "args": args,
            }
            if span.phase == "instant":
                event["ph"] = "i"
                event["s"] = "t"
            else:
                event["ph"] = "X"
                event["dur"] = round(max(span.wall_dur, 0.0) * 1e6, 3)
            events.append(event)
        return events

    def to_chrome(self, path: str) -> None:
        """Write the Perfetto/chrome://tracing-loadable trace JSON."""
        document = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped},
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.write("\n")

    def export(self, path: str) -> None:
        """Write the trace: ``*.jsonl`` → JSONL, anything else → Chrome JSON."""
        if path.endswith(".jsonl"):
            self.to_jsonl(path)
        else:
            self.to_chrome(path)
