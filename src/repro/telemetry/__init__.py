"""``repro.telemetry`` — zero-overhead-when-disabled tracing and metrics.

One process-wide *telemetry session* owns at most one active
:class:`~repro.telemetry.trace.Tracer` and one active
:class:`~repro.telemetry.metrics.MetricsRegistry`.  Instrumented code all
over the library (kernel, executor, scenario runner, campaign, cache, crypto
backends, fleet) calls the module-level helpers below, which are deliberate
no-ops while nothing is installed:

>>> from repro import telemetry
>>> telemetry.count("scenario.steps")          # no-op: nothing installed
>>> with telemetry.telemetry_session(trace=True, metrics=True) as session:
...     report = runner.run("proposed", scenario)   # doctest: +SKIP
>>> session.tracer.export("out.json")               # doctest: +SKIP

Contract highlights:

* **Observation-only.**  Telemetry never touches RNG streams, virtual time
  or protocol state; enabling it cannot change what a run produces.  The
  golden equivalence suite and the fleet/campaign ``workers=1`` bit-identity
  pins are asserted with telemetry both on and off.
* **Disabled == (nearly) free.**  Every helper is one global load and a
  ``None`` check when disabled; hot loops (the executor's machine hooks, the
  kernel's batch loop) cache the active tracer in a local instead.
* **Re-entrant.**  Sessions nest: installing a new session stashes the
  previous pair and restores it on exit, so a traced campaign can wrap a
  traced protocol run without either stepping on the other.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from .metrics import (
    MetricsRegistry,
    histogram_percentile,
    merge_snapshots,
    render_metrics_table,
    summary_fields,
)
from .trace import Span, Tracer

__all__ = [
    "MetricsRegistry",
    "Span",
    "TelemetrySession",
    "Tracer",
    "active_metrics",
    "active_tracer",
    "count",
    "gauge_max",
    "histogram_percentile",
    "install",
    "merge_snapshots",
    "observe",
    "render_metrics_table",
    "set_gauge",
    "span",
    "summary_fields",
    "telemetry_session",
    "uninstall",
]

#: The process-wide active pair.  ``None`` means disabled; instrumented code
#: guards on exactly that, which is the whole zero-overhead story.
_TRACER: Optional[Tracer] = None
_METRICS: Optional[MetricsRegistry] = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _TRACER


def active_metrics() -> Optional[MetricsRegistry]:
    """The installed metrics registry, or ``None`` when metrics are off."""
    return _METRICS


def install(
    tracer: Optional[Tracer] = None, metrics: Optional[MetricsRegistry] = None
) -> Tuple[Optional[Tracer], Optional[MetricsRegistry]]:
    """Make ``(tracer, metrics)`` the active pair; returns the previous pair.

    Prefer :func:`telemetry_session` — it restores the previous pair for you.
    """
    global _TRACER, _METRICS
    previous = (_TRACER, _METRICS)
    _TRACER = tracer
    _METRICS = metrics
    return previous


def uninstall(
    previous: Tuple[Optional[Tracer], Optional[MetricsRegistry]] = (None, None),
) -> None:
    """Restore a pair previously returned by :func:`install`."""
    global _TRACER, _METRICS
    _TRACER, _METRICS = previous


class TelemetrySession:
    """The tracer/registry pair one :func:`telemetry_session` installed."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Optional[Tracer], metrics: Optional[MetricsRegistry]):
        self.tracer = tracer
        self.metrics = metrics

    def metrics_snapshot(self) -> Dict[str, object]:
        return self.metrics.snapshot() if self.metrics is not None else {}


@contextmanager
def telemetry_session(
    *,
    trace: bool = False,
    metrics: bool = False,
    process: str = "main",
    max_spans: int = 250_000,
) -> Iterator[TelemetrySession]:
    """Install a fresh tracer and/or registry for the enclosed block.

    The previous active pair is restored on exit, so sessions nest safely.
    With both flags false this is a pure no-op (handy for unconditional
    call sites).
    """
    session = TelemetrySession(
        Tracer(process, max_spans=max_spans) if trace else None,
        MetricsRegistry() if metrics else None,
    )
    if session.tracer is None and session.metrics is None:
        yield session
        return
    previous = install(session.tracer, session.metrics)
    try:
        yield session
    finally:
        uninstall(previous)


# ---------------------------------------------------------------------------
# No-op-when-disabled instrumentation helpers
# ---------------------------------------------------------------------------

def count(name: str, n: int = 1) -> None:
    """Increment a counter on the active registry (no-op when disabled)."""
    registry = _METRICS
    if registry is not None:
        registry.count(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op when disabled)."""
    registry = _METRICS
    if registry is not None:
        registry.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge (no-op when disabled)."""
    registry = _METRICS
    if registry is not None:
        registry.set_gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise a gauge to ``value`` if higher (no-op when disabled)."""
    registry = _METRICS
    if registry is not None:
        registry.gauge_max(name, value)


class _NullSpanContext:
    """A reusable, allocation-free context manager yielding ``None``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


def span(
    name: str,
    *,
    category: str = "",
    track: str = "main",
    sim_start: Optional[float] = None,
    args: Optional[Dict[str, object]] = None,
):
    """Open a span on the active tracer; yields ``None`` when tracing is off.

    Usage::

        with telemetry.span("step:join", category="scenario") as sp:
            ...
            if sp is not None:
                sp.finish_sim(t_end)
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(
        name, category=category, track=track, sim_start=sim_start, args=args
    )
