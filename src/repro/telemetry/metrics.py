"""Process-local metrics: counters, gauges and bucketed histograms.

A :class:`MetricsRegistry` is a flat namespace of three instrument kinds:

* :class:`Counter` — a monotonically increasing integer (messages sent, bits
  on air, cache hits, modexp calls);
* :class:`Gauge` — a last-written value plus its peak (kernel queue depth,
  fleet in-flight cells);
* :class:`Histogram` — a log₂-bucketed distribution (per-step sim latency,
  cell wall time, message sizes) whose snapshot supports approximate
  percentiles without retaining individual observations.

The design constraints come from the determinism contract and the fleet:

* **Observation-only.**  Instruments never touch RNG streams, virtual time
  or any simulated quantity — recording a value cannot perturb a run, so a
  scenario with metrics enabled is bit-identical to one without.
* **Mergeable snapshots.**  :meth:`MetricsRegistry.snapshot` is a plain JSON
  dict, and :func:`merge_snapshots` is associative and commutative: counters
  and histogram buckets add, gauges take the max.  That is exactly what lets
  fleet workers ship their per-cell snapshots over the existing
  length-prefixed frames and the controller fold them — in any arrival
  order — into one fleet-wide view.
* **Cheap when on, free-ish when off.**  Instruments are ``__slots__``
  objects doing one addition per event; the *disabled* path never reaches
  this module at all (see the guards in :mod:`repro.telemetry`).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_percentile",
    "merge_snapshots",
    "render_metrics_table",
    "summary_fields",
]

#: Histogram bucket exponents are clamped into this range: 2^-30 (~1 ns) to
#: 2^60 covers every latency, byte count and energy figure the system emits.
_MIN_EXP = -30
_MAX_EXP = 60
#: Dedicated bucket for zero/negative observations (sorts before every 2^e).
_ZERO_EXP = _MIN_EXP - 1


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-written value and the peak it ever reached."""

    __slots__ = ("value", "peak")

    def __init__(self) -> None:
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value


def _bucket_exp(value: float) -> int:
    """The log₂ bucket for ``value`` (bucket upper bound is ``2**exp``)."""
    if value <= 0:
        return _ZERO_EXP
    _, exp = math.frexp(value)  # 2^(exp-1) <= value < 2^exp
    return min(max(exp, _MIN_EXP), _MAX_EXP)


class Histogram:
    """A log₂-bucketed distribution with exact count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exp = _bucket_exp(value)
        self.buckets[exp] = self.buckets.get(exp, 0) + 1


def histogram_percentile(snapshot: Dict[str, object], q: float) -> float:
    """Approximate the ``q`` percentile (0..1) of a histogram *snapshot*.

    Walks the log₂ buckets in order and returns the upper bound of the bucket
    containing the q-th observation, clamped into the exact ``[min, max]``
    range — good to within one bucket (a factor of two), which is plenty for
    a summary table.
    """
    count = int(snapshot.get("count", 0))
    if count == 0:
        return 0.0
    lo = float(snapshot["min"])
    hi = float(snapshot["max"])
    target = max(1, math.ceil(q * count))
    seen = 0
    buckets = snapshot.get("buckets", {})
    for exp in sorted(int(e) for e in buckets):
        seen += int(buckets[str(exp)] if str(exp) in buckets else buckets[exp])
        if seen >= target:
            upper = 0.0 if exp == _ZERO_EXP else float(2.0 ** exp)
            return min(max(upper, lo), hi)
    return hi


class MetricsRegistry:
    """A flat, process-local namespace of instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------ instruments
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    # -------------------------------------------------------------- shortcuts
    def count(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Record ``value`` only if it raises the gauge (peak tracking)."""
        gauge = self.gauge(name)
        if value > gauge.value:
            gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> Dict[str, object]:
        """The registry's state as a plain JSON-serializable dict."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {
                name: {"value": g.value, "peak": g.peak}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                    "buckets": {str(exp): n for exp, n in sorted(h.buckets.items())},
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold one snapshot into this registry (same semantics as
        :func:`merge_snapshots`)."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.count(name, int(value))
        for name, gauge in (snapshot.get("gauges") or {}).items():
            self.gauge_max(name, float(gauge.get("peak", gauge.get("value", 0.0))))
        for name, hist in (snapshot.get("histograms") or {}).items():
            mine = self.histogram(name)
            count = int(hist.get("count", 0))
            if count == 0:
                continue
            mine.count += count
            mine.total += float(hist.get("sum", 0.0))
            mine.min = min(mine.min, float(hist.get("min", math.inf)))
            mine.max = max(mine.max, float(hist.get("max", -math.inf)))
            for exp, n in (hist.get("buckets") or {}).items():
                exp = int(exp)
                mine.buckets[exp] = mine.buckets.get(exp, 0) + int(n)


def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Merge metric snapshots: counters add, gauges max, histograms add.

    Associative and commutative — folding worker snapshots in any grouping or
    arrival order produces the same fleet-wide view (pinned by
    ``tests/test_telemetry.py``).
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot:
            merged.merge(snapshot)
    return merged.snapshot()


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def render_metrics_table(snapshot: Dict[str, object], *, title: str = "metrics") -> str:
    """A snapshot as a fixed-width text table (the CLIs' ``--metrics`` view)."""
    lines: List[str] = [f"--- {title} ---"]
    counters: Dict[str, object] = snapshot.get("counters") or {}
    gauges: Dict[str, object] = snapshot.get("gauges") or {}
    histograms: Dict[str, object] = snapshot.get("histograms") or {}
    if not (counters or gauges or histograms):
        lines.append("(no metrics recorded)")
        return "\n".join(lines)
    width = max(
        [len("name")]
        + [len(name) for name in counters]
        + [len(name) for name in gauges]
        + [len(name) for name in histograms]
    ) + 2
    if counters:
        lines.append(f"{'counter':<{width}} {'value':>14}")
        for name, value in counters.items():
            lines.append(f"{name:<{width}} {value:>14}")
    if gauges:
        lines.append(f"{'gauge':<{width}} {'value':>14} {'peak':>14}")
        for name, gauge in gauges.items():
            lines.append(
                f"{name:<{width}} {_fmt(float(gauge['value'])):>14} "
                f"{_fmt(float(gauge['peak'])):>14}"
            )
    if histograms:
        lines.append(
            f"{'histogram':<{width}} {'count':>9} {'mean':>11} {'p50':>11} "
            f"{'p95':>11} {'max':>11}"
        )
        for name, hist in histograms.items():
            count = int(hist.get("count", 0))
            mean = float(hist.get("sum", 0.0)) / count if count else 0.0
            lines.append(
                f"{name:<{width}} {count:>9} {_fmt(mean):>11} "
                f"{_fmt(histogram_percentile(hist, 0.5)):>11} "
                f"{_fmt(histogram_percentile(hist, 0.95)):>11} "
                f"{_fmt(float(hist.get('max', 0.0))):>11}"
            )
    return "\n".join(lines)


def summary_fields(snapshot: Dict[str, object]) -> Dict[str, float]:
    """Flatten a snapshot into scalar ``name -> value`` fields.

    Counters map directly, gauges contribute ``<name>.peak``, histograms
    contribute ``<name>.count`` / ``.sum`` / ``.p50`` / ``.p95`` — the shape
    the benchmark artifacts record and the regression gate diffs.
    """
    fields: Dict[str, float] = {}
    for name, value in (snapshot.get("counters") or {}).items():
        fields[name] = float(value)
    for name, gauge in (snapshot.get("gauges") or {}).items():
        fields[f"{name}.peak"] = float(gauge.get("peak", 0.0))
    for name, hist in (snapshot.get("histograms") or {}).items():
        fields[f"{name}.count"] = float(hist.get("count", 0))
        fields[f"{name}.sum"] = float(hist.get("sum", 0.0))
        fields[f"{name}.p50"] = histogram_percentile(hist, 0.5)
        fields[f"{name}.p95"] = histogram_percentile(hist, 0.95)
    return fields
