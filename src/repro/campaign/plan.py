"""Pre-flight campaign planning: what *would* run, and what is already done.

:func:`plan_campaign` expands a spec's grid without executing anything and,
given a cache directory, splits the cells into *cached* (their content-hash
is already on disk) and *pending*.  Two consumers:

* ``python -m repro.campaign --dry-run`` prints the plan so a grid can be
  sanity-checked — axis values, cell count, how much a resumed run will
  actually recompute — before committing CPU-days to it;
* the fleet controller (:mod:`repro.fleet.controller`) uses the same plan as
  its initial queue report and seeds its row table with the cached rows, so
  cache hits never cross the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .cache import ResultCache
from .spec import AXIS_NAMES, CampaignCell, CampaignSpec

__all__ = ["CampaignPlan", "plan_campaign"]


@dataclass
class CampaignPlan:
    """The expanded grid of one spec, split by cache state."""

    name: str
    #: every cell, in grid order
    cells: List[CampaignCell]
    #: axis name -> ordered distinct values across the grid
    axes: Mapping[str, Tuple[object, ...]]
    #: cell index -> cached row (only populated when a cache dir was given)
    cached_rows: Dict[int, Dict[str, object]]
    #: cells not served by the cache, in grid order
    pending: List[CampaignCell]
    cache_dir: Optional[str] = None

    @property
    def total(self) -> int:
        return len(self.cells)

    def describe(self) -> str:
        """The plan as human-readable text (what ``--dry-run`` prints)."""
        lines = [f"campaign : {self.name} — {self.total} cells"]
        for axis in AXIS_NAMES:
            values = self.axes.get(axis, ())
            if axis == "rep":
                rendered = str(len(values))
            else:
                rendered = ", ".join(str(v) for v in values)
            lines.append(f"  {axis:<10} ({len(values)}): {rendered}")
        if self.cache_dir is not None:
            lines.append(
                f"cache    : {len(self.cached_rows)} cached, "
                f"{len(self.pending)} pending ({self.cache_dir})"
            )
        else:
            lines.append(f"pending  : {len(self.pending)} (no cache dir)")
        return "\n".join(lines)


def plan_campaign(
    spec: CampaignSpec,
    *,
    cache_dir: Optional[str] = None,
    cells: Optional[List[CampaignCell]] = None,
    cache: Optional[ResultCache] = None,
) -> CampaignPlan:
    """Expand ``spec`` and consult the cache, without running any cell.

    Pass an already-open ``cache`` to share its hit/miss counters with the
    run that follows (the fleet controller does); otherwise ``cache_dir``
    opens one just for the plan.
    """
    if cells is None:
        cells = spec.cells()
    axes: Dict[str, List[object]] = {name: [] for name in AXIS_NAMES}
    for cell in cells:
        for name in AXIS_NAMES:
            value = cell.axes.get(name)
            if value not in axes[name]:
                axes[name].append(value)
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    cached_rows: Dict[int, Dict[str, object]] = {}
    pending: List[CampaignCell] = []
    if cache is not None:
        for cell in cells:
            row = cache.get(cell.payload)
            if row is not None:
                cached_rows[cell.index] = row
            else:
                pending.append(cell)
    else:
        pending = list(cells)
    return CampaignPlan(
        name=spec.name,
        cells=cells,
        axes={name: tuple(values) for name, values in axes.items()},
        cached_rows=cached_rows,
        pending=pending,
        cache_dir=cache.directory if cache is not None else None,
    )
