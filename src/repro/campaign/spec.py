"""Declarative parameter-grid campaigns.

A :class:`CampaignSpec` names the axes of a sweep — protocols, group sizes,
loss levels, mobility models, engine profiles, adversary models, replications
— and expands their Cartesian product into :class:`CampaignCell`\\ s.  Each
cell carries a *payload*: a plain JSON-able work order (protocol name +
scenario spec + engine profile, see :mod:`repro.sim.specio`) that can cross a
process boundary, be content-hashed for the result cache, or be replayed from
a file.  No live object ever travels to a worker.

Determinism is structural:

* every cell owns a stable **key** (``protocol=bd/n=8/...``) derived from its
  axis values, independent of expansion order;
* every cell's scenario seed is a **named child** of the campaign's master
  seed, derived from the cell's *workload key* — the group-size, mobility and
  replication axes.  Cells sharing a workload share the seed (and the
  scenario name the RNG streams are labelled with), so protocols, loss
  levels, engine profiles and adversaries are compared over **identical**
  churn schedules and trajectories — the same comparability contract
  :meth:`~repro.sim.runner.ScenarioRunner.run_all` gives.  Editing the
  master seed or a workload axis reseeds exactly the cells it touches;
* cells are fully independent, so executing them serially, sharded over a
  process pool, or resumed from a cache yields identical rows.

Loss composition: on a schedule-driven cell the loss axis is the medium's
``loss_probability``; on a mobility-driven cell (where uniform loss is
meaningless) it becomes the radio's ``base_loss`` floor, with ``edge_loss``
raised to at least the same level — one knob, interpreted by whichever medium
the cell runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..backends.registry import resolve_backend
from ..exceptions import ParameterError
from ..mathutils.rand import DeterministicRNG

__all__ = ["CampaignCell", "CampaignSpec", "AXIS_NAMES"]

#: Cell-key axis names, in key order (also the row columns the axes become).
AXIS_NAMES = (
    "protocol",
    "group_size",
    "mobility",
    "tiers",
    "loss",
    "engine",
    "adversary",
    "rep",
)


def _named_axis(
    value: Union[Mapping, Sequence, None],
    *,
    default_name: str,
    what: str,
    string_shorthand: bool = False,
) -> Tuple[Tuple[str, object], ...]:
    """Normalise a named axis (mobilities/adversaries) to ``((name, spec), ...)``.

    Accepts a mapping ``{name: spec}``, a sequence of ``(name, spec)`` pairs,
    or ``None`` for the single no-op point.  With ``string_shorthand`` a
    sequence of bare names is also accepted, each name serving as its own
    spec — meaningful only for adversaries, whose specs can *be* preset name
    strings.
    """
    if value is None:
        return ((default_name, None),)
    if isinstance(value, Mapping):
        items = list(value.items())
    else:
        items = []
        for entry in value:
            if isinstance(entry, str) and string_shorthand:
                items.append((entry, entry))
            elif (
                not isinstance(entry, str)
                and isinstance(entry, (tuple, list))
                and len(entry) == 2
            ):
                items.append((str(entry[0]), entry[1]))
            else:
                expected = (
                    "names or (name, spec) pairs" if string_shorthand else "(name, spec) pairs"
                )
                raise ParameterError(f"{what} entries must be {expected}, got {entry!r}")
    if not items:
        raise ParameterError(f"{what} axis cannot be empty")
    names = [name for name, _ in items]
    if len(set(names)) != len(names):
        raise ParameterError(f"{what} names must be unique, got {names}")
    return tuple((str(name), spec) for name, spec in items)


@dataclass(frozen=True)
class CampaignCell:
    """One grid point: its stable key, axis values and worker payload."""

    index: int
    key: str
    #: axis name -> axis value (strings/numbers; what the result rows carry)
    axes: Mapping[str, object]
    #: the JSON-able work order handed to :func:`repro.campaign.execute.execute_cell`
    payload: Mapping[str, object]


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative protocol × scenario parameter sweep.

    Attributes
    ----------
    name:
        Campaign name; part of every cell's scenario name and seed domain.
    protocols:
        Registry names to sweep (see :func:`repro.core.registry.available_protocols`).
    group_sizes:
        Initial group sizes.
    losses:
        Loss levels (``loss_probability`` on uniform media, ``base_loss`` on
        mobility radios).
    schedule:
        One churn-schedule spec dict shared by every non-mobility cell
        (``None`` = churn-free establishment-only scenarios).
    mobilities:
        Named mobility axis: ``{name: mobility-spec-or-None}``.  The default
        single ``"none"`` point keeps every cell schedule-driven.
    tiers:
        Named multi-tier topology axis: ``{name: tiers-spec-or-None}`` (see
        :func:`repro.sim.specio.build_tiers`).  A treatment axis — cells
        sharing a workload keep their seed across tier configurations — and
        mutually exclusive with non-trivial ``mobilities`` entries.  On a
        tiered cell the loss axis becomes the config's ``loss_floor``.
    engines:
        Engine profiles (``instant`` / ``radio`` / ``wlan`` / ``fixed:<s>`` or
        spec dicts, see :func:`repro.sim.specio.build_engine`).
    adversaries:
        Named adversary axis: ``{name: preset-or-spec-or-None}``; a plain
        sequence of preset names is accepted as shorthand.
    seed:
        Master seed; every cell derives its own named child from it.
    params:
        Parameter sizes for the worker's :class:`~repro.core.base.SystemSetup`:
        ``"test"`` (256-bit, fast) or ``"paper"`` (the paper's 1024-bit).
    backend:
        Crypto backend every cell runs under (``None`` = process default).
        Backends are bit-identical, so this is not an axis — it never appears
        in cell keys or result rows, and switching it never changes what a
        campaign produces, only how fast the workers' arithmetic goes.  To
        *compare* backends within one campaign, put spec dicts like
        ``{"latency": "instant", "crypto_backend": "native"}`` on the
        ``engines`` axis instead.
    replications:
        Independent repetitions of every grid point (distinct child seeds).
    max_retries / min_group_size:
        Forwarded to every cell's :class:`~repro.sim.scenarios.Scenario`.
    """

    name: str
    protocols: Tuple[str, ...]
    group_sizes: Tuple[int, ...] = (8,)
    losses: Tuple[float, ...] = (0.0,)
    schedule: Optional[Mapping] = None
    mobilities: Tuple[Tuple[str, Optional[Mapping]], ...] = (("none", None),)
    tiers: Tuple[Tuple[str, Optional[Mapping]], ...] = (("none", None),)
    engines: Tuple[object, ...] = ("instant",)
    adversaries: Tuple[Tuple[str, object], ...] = (("none", None),)
    seed: object = 0
    params: str = "test"
    backend: Optional[str] = None
    replications: int = 1
    max_retries: int = 10
    min_group_size: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("a campaign needs a name")
        object.__setattr__(self, "protocols", tuple(self.protocols))
        if not self.protocols:
            raise ParameterError("a campaign needs at least one protocol")
        object.__setattr__(self, "group_sizes", tuple(int(n) for n in self.group_sizes))
        if not self.group_sizes:
            raise ParameterError("a campaign needs at least one group size")
        object.__setattr__(self, "losses", tuple(float(l) for l in self.losses))
        if not self.losses:
            raise ParameterError("a campaign needs at least one loss level")
        object.__setattr__(
            self,
            "mobilities",
            _named_axis(self.mobilities, default_name="none", what="mobilities"),
        )
        object.__setattr__(
            self,
            "tiers",
            _named_axis(self.tiers, default_name="none", what="tiers"),
        )
        object.__setattr__(self, "engines", tuple(self.engines))
        if not self.engines:
            raise ParameterError("a campaign needs at least one engine profile")
        object.__setattr__(
            self,
            "adversaries",
            _named_axis(
                self.adversaries,
                default_name="none",
                what="adversaries",
                string_shorthand=True,
            ),
        )
        if self.params not in ("test", "paper"):
            raise ParameterError(f"params must be 'test' or 'paper', got {self.params!r}")
        if self.backend is not None:
            # Fail when the spec is built, not inside a worker process.
            resolve_backend(self.backend)
        if self.replications < 1:
            raise ParameterError("replications must be at least 1")
        if self.schedule is not None and any(
            spec is not None for _, spec in self.mobilities
        ):
            raise ParameterError(
                "a campaign sweeps either a churn schedule or mobility models, "
                "not both (a scenario is driven by exactly one of them)"
            )
        if any(spec is not None for _, spec in self.tiers) and any(
            spec is not None for _, spec in self.mobilities
        ):
            raise ParameterError(
                "a campaign sweeps either tier topologies or mobility models, "
                "not both (a scenario's topology comes from exactly one of them)"
            )

    # ------------------------------------------------------------- round trip
    @classmethod
    def from_dict(cls, spec: Mapping) -> "CampaignSpec":
        """Build a spec from its JSON dict form (the CLI's input format)."""
        from ..sim.specio import build_seed

        spec = dict(spec)
        unknown = set(spec) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ParameterError(f"unknown campaign spec keys: {sorted(unknown)}")
        if "name" not in spec or "protocols" not in spec:
            raise ParameterError("a campaign spec needs 'name' and 'protocols'")
        if "seed" in spec:
            spec["seed"] = build_seed(spec["seed"])
        return cls(**spec)

    def to_dict(self) -> Dict[str, object]:
        """The JSON dict form (lossless inverse of :meth:`from_dict`)."""
        from ..sim.specio import seed_to_spec

        return {
            "name": self.name,
            "protocols": list(self.protocols),
            "group_sizes": list(self.group_sizes),
            "losses": list(self.losses),
            "schedule": dict(self.schedule) if self.schedule is not None else None,
            "mobilities": {name: spec for name, spec in self.mobilities},
            "tiers": {name: spec for name, spec in self.tiers},
            "engines": list(self.engines),
            "adversaries": {name: spec for name, spec in self.adversaries},
            "seed": seed_to_spec(self.seed),
            "params": self.params,
            "backend": self.backend,
            "replications": self.replications,
            "max_retries": self.max_retries,
            "min_group_size": self.min_group_size,
        }

    # -------------------------------------------------------------- expansion
    def _master_rng(self) -> DeterministicRNG:
        return DeterministicRNG(self.seed, label=f"campaign/{self.name}")

    #: Axes that define a cell's *workload* (the churn/trajectory streams);
    #: the rest — protocol, loss, engine, adversary — are treatments applied
    #: over it and share the workload's seed for comparability.
    WORKLOAD_AXES = ("group_size", "mobility", "rep")

    @classmethod
    def workload_key(cls, axes: Mapping[str, object]) -> str:
        """The workload identity of a cell (its seed-derivation domain)."""
        return "/".join(f"{name}={axes[name]}" for name in cls.WORKLOAD_AXES)

    def cell_seed(self, workload: str) -> str:
        """The derived scenario seed for one workload (hex child seed).

        The derivation depends only on the master seed and the workload key,
        so a cell keeps its seed when unrelated axis values are added or
        removed — the property that makes content-hash caching sound — and
        every treatment of the same workload replays identical streams.
        """
        return self._master_rng().derive_seed(f"workload/{workload}").hex()

    @staticmethod
    def engine_label(engine: object) -> str:
        """The short axis label for an engine profile (dict specs get named).

        This is the value the result rows carry in their ``engine`` column,
        so scripts can locate the rows belonging to one ``engines`` entry.
        """
        if isinstance(engine, str):
            return engine
        if isinstance(engine, Mapping):
            latency = engine.get("latency", "instant")
            extras = "+".join(
                f"{k}={v}" for k, v in sorted(engine.items()) if k != "latency"
            )
            return f"{latency}[{extras}]" if extras else str(latency)
        raise ParameterError(f"engine axis entries must be strings or dicts, got {engine!r}")

    @staticmethod
    def _fold_loss(mobility_spec: Mapping, loss: float) -> Dict[str, object]:
        """Apply the loss axis to a mobility spec (a ``base_loss`` floor).

        The axis only ever *raises* the radio's loss ramp, so a mobility spec
        with its own ``base_loss``/``edge_loss`` keeps them at loss level 0.
        """
        folded = dict(mobility_spec)
        folded["base_loss"] = max(loss, float(folded.get("base_loss", 0.0)))
        folded["edge_loss"] = max(loss, float(folded.get("edge_loss", 0.0)))
        return folded

    @staticmethod
    def _fold_loss_tiers(tier_spec: Mapping, loss: float) -> Dict[str, object]:
        """Apply the loss axis to a tiers spec (a per-class ``loss_floor``).

        Like the mobility fold, the axis only *raises* constant class
        losses; Gilbert–Elliott classes already model their loss and are
        left alone (see :class:`~repro.network.tiers.TierConfig`).
        """
        folded = dict(tier_spec)
        folded["loss_floor"] = max(loss, float(folded.get("loss_floor", 0.0)))
        return folded

    def cells(self) -> List[CampaignCell]:
        """Expand the axes into the ordered cell list.

        Order is the deterministic nested product — protocol, group size,
        mobility, loss, engine, adversary, replication — but nothing about a
        cell depends on its position: keys and seeds derive from axis values
        alone.
        """
        cells: List[CampaignCell] = []
        for protocol in self.protocols:
            for size in self.group_sizes:
                for mobility_name, mobility_spec in self.mobilities:
                    for tier_name, tier_spec in self.tiers:
                        for loss in self.losses:
                            for engine in self.engines:
                                engine_label = self.engine_label(engine)
                                for adversary_name, adversary_spec in self.adversaries:
                                    for rep in range(self.replications):
                                        cells.append(
                                            self._cell(
                                                index=len(cells),
                                                protocol=protocol,
                                                size=size,
                                                mobility_name=mobility_name,
                                                mobility_spec=mobility_spec,
                                                tier_name=tier_name,
                                                tier_spec=tier_spec,
                                                loss=loss,
                                                engine=engine,
                                                engine_label=engine_label,
                                                adversary_name=adversary_name,
                                                adversary_spec=adversary_spec,
                                                rep=rep,
                                            )
                                        )
        return cells

    def _cell(
        self,
        *,
        index: int,
        protocol: str,
        size: int,
        mobility_name: str,
        mobility_spec: Optional[Mapping],
        tier_name: str,
        tier_spec: Optional[Mapping],
        loss: float,
        engine: object,
        engine_label: str,
        adversary_name: str,
        adversary_spec: object,
        rep: int,
    ) -> CampaignCell:
        axes: Dict[str, object] = {
            "protocol": protocol,
            "group_size": size,
            "mobility": mobility_name,
            "tiers": tier_name,
            "loss": loss,
            "engine": engine_label,
            "adversary": adversary_name,
            "rep": rep,
        }
        key = "/".join(f"{name}={axes[name]}" for name in AXIS_NAMES)
        workload = self.workload_key(axes)
        # Name and seed are per-workload, not per-cell: the scenario name
        # labels every RNG stream, so cells comparing treatments over the
        # same workload must share both to replay identical streams.
        scenario: Dict[str, object] = {
            "name": f"{self.name}/{workload}",
            "initial_size": size,
            "seed": self.cell_seed(workload),
            "max_retries": self.max_retries,
            "min_group_size": self.min_group_size,
        }
        if mobility_spec is not None:
            scenario["mobility"] = self._fold_loss(mobility_spec, loss)
        elif tier_spec is not None:
            if self.schedule is not None:
                scenario["schedule"] = dict(self.schedule)
            scenario["tiers"] = (
                self._fold_loss_tiers(tier_spec, loss) if loss else dict(tier_spec)
            )
        else:
            if self.schedule is not None:
                scenario["schedule"] = dict(self.schedule)
            if loss:
                scenario["loss_probability"] = loss
        if adversary_spec is not None:
            scenario["adversary"] = adversary_spec
        payload: Dict[str, object] = {
            "campaign": self.name,
            "cell": key,
            "axes": axes,
            "protocol": protocol,
            "params": self.params,
            "engine": engine,
            "scenario": scenario,
        }
        if self.backend is not None:
            payload["backend"] = self.backend
        return CampaignCell(index=index, key=key, axes=axes, payload=payload)
