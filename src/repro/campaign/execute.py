"""Sharded campaign execution: one process pool, crash-isolated cells.

:func:`execute_cell` is the whole worker contract — a **pure function from a
JSON payload to a JSON row**.  It builds the cell's
:class:`~repro.core.base.SystemSetup`, scenario and engine inside the worker
process (nothing live is ever pickled across the boundary), runs the
:class:`~repro.sim.runner.ScenarioRunner`, and flattens the report into a
flat row of axis values and metrics.  Any exception becomes an ``error`` row
instead of propagating, so one pathological cell cannot take down a thousand
good ones.

:func:`run_campaign` shards the cells over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Results are assembled **by
cell index, never by completion order**, and every stochastic input lives in
the cell's own derived seed — which is why ``workers=N`` output is
bit-identical to ``workers=1`` (the property ``tests/test_campaign.py`` pins
for every registry protocol).  With a cache directory, previously computed
cells are replayed from disk and only payload changes recompute.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional

from .. import telemetry
from ..exceptions import ParameterError
from .cache import ResultCache
from .result import CampaignResult
from .spec import CampaignCell, CampaignSpec

__all__ = ["execute_cell", "run_campaign"]

logger = logging.getLogger(__name__)

#: Per-process SystemSetup cache: building the 256/1024-bit parameter sets is
#: pure and deterministic, so sharing one instance across a worker's cells
#: changes nothing but the wall time.
_SETUPS: Dict[str, object] = {}


def _setup_for(params: str):
    from ..core.base import SystemSetup

    setup = _SETUPS.get(params)
    if setup is None:
        if params == "paper":
            setup = SystemSetup.from_param_sets()
        else:
            setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
        _SETUPS[params] = setup
    return setup


def execute_cell(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one campaign cell and return its flat result row.

    Never raises: failures are captured into the row's ``error`` field with
    the exception's traceback tail, keeping sibling cells unaffected.
    """
    started = time.perf_counter()
    row: Dict[str, object] = {
        "campaign": payload.get("campaign", ""),
        "cell": payload.get("cell", ""),
    }
    row.update(payload.get("axes", {}))
    row.update(
        seed=payload.get("scenario", {}).get("seed", ""),
        cached=False,
        error="",
    )
    try:
        row.update(_run_cell(payload))
    except Exception as exc:  # crash isolation: the row *is* the error report
        tail = traceback.format_exc().strip().splitlines()[-1]
        row["error"] = f"{type(exc).__name__}: {exc}" if str(exc) else tail
    wall = time.perf_counter() - started
    row["wall_seconds"] = wall
    # Telemetry is observation-only: the row never carries spans or metrics
    # (it must stay bit-identical across workers=1/N), they only describe it.
    tracer = telemetry.active_tracer()
    if tracer is not None:
        tracer.complete(
            f"cell:{row['cell']}",
            category="cell",
            track="cells",
            wall_start=tracer.now() - wall,
            wall_dur=wall,
            args={"error": row["error"]} if row["error"] else None,
        )
    telemetry.count("campaign.cells")
    telemetry.observe("campaign.cell_wall_s", wall)
    if row["error"]:
        telemetry.count("campaign.cell_errors")
    return row


def _run_cell(payload: Dict[str, object]) -> Dict[str, object]:
    """The fallible core of :func:`execute_cell` (imports stay in-worker)."""
    from ..adversary.matrix import classify_report
    from ..backends.registry import use_backend
    from ..sim.runner import ScenarioRunner
    from ..sim.specio import build_engine, build_scenario

    setup = _setup_for(str(payload.get("params", "test")))
    scenario = build_scenario(dict(payload["scenario"]))
    engine = build_engine(payload.get("engine"))
    runner = ScenarioRunner(setup, engine=engine, check_agreement=False)
    backend = payload.get("backend")
    # Backends are bit-identical, so the cached-row contract survives a
    # backend switch: the content hash covers the payload, and a ``backend``
    # key only changes which arithmetic computes the very same row.
    with use_backend(str(backend) if backend is not None else None):
        report = runner.run(str(payload["protocol"]), scenario)
    verdict, detail = classify_report(report)

    metrics: Dict[str, object] = {
        "steps": len(report.records),
        "events": len(report.events),
        "final_size": report.final_size,
        "agreed": report.agreed_throughout,
        "aborted": report.aborted,
        "energy_j": report.total_energy_j,
        "messages": report.total_messages,
        "bits": report.total_bits(),
        "bits_with_retries": report.total_bits(include_retries=True),
        "transmissions": report.total_transmissions,
        "relay_bits": report.total_relay_bits,
        "relay_energy_j": report.total_relay_energy_j,
        "mean_hops": report.mean_hops,
        "sim_latency_s": report.total_sim_latency_s,
        "timeouts": report.total_timeouts,
        "attacks": report.total_attacks,
        "detected": report.attacks_detected,
        "security_verdict": verdict,
        "security_detail": detail,
        "key_fingerprint": report.key_fingerprint,
    }
    for name, outcome in report.oracle_outcomes().items():
        metrics["oracle_" + name.replace("-", "_")] = outcome
    return metrics


def _pool_context():
    """Prefer fork (cheap, inherits warm caches); fall back where unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    chunksize: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    cells: Optional[List[CampaignCell]] = None,
) -> CampaignResult:
    """Execute every cell of ``spec`` and aggregate the rows.

    Parameters
    ----------
    workers:
        Process count; ``1`` (the default) runs everything in this process.
        Output is bit-identical either way.
    cache_dir:
        Enable the content-hash result cache in this directory: cells whose
        payloads are unchanged replay from disk, everything else recomputes
        and is stored back.
    chunksize:
        Cells handed to a worker per dispatch; defaults to spreading the
        pending cells roughly four chunks per worker.
    progress:
        Optional ``callback(done, total)`` fired after every completed cell.
    cells:
        Pre-expanded (possibly adjusted) cell list to run instead of
        ``spec.cells()`` — how the attack matrix pins every cell to its
        scenario's verbatim seed.  Cell indices must be ``0..len-1``.
    """
    if workers < 1:
        raise ParameterError("workers must be at least 1")
    if cells is None:
        cells = spec.cells()
    elif [cell.index for cell in cells] != list(range(len(cells))):
        raise ParameterError("adjusted cell lists must keep contiguous indices")
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    rows: List[Optional[Dict[str, object]]] = [None] * len(cells)

    pending: List[CampaignCell] = []
    for cell in cells:
        cached = cache.get(cell.payload) if cache is not None else None
        if cached is not None:
            rows[cell.index] = cached
        else:
            pending.append(cell)

    started = time.perf_counter()
    done = len(cells) - len(pending)
    if progress is not None and done:
        progress(done, len(cells))

    def _finish(cell: CampaignCell, row: Dict[str, object]) -> None:
        nonlocal done
        rows[cell.index] = row
        if cache is not None and not row.get("error"):
            cache.put(cell.payload, row)
        done += 1
        if progress is not None:
            progress(done, len(cells))

    if workers == 1 or len(pending) <= 1:
        for cell in pending:
            _finish(cell, execute_cell(dict(cell.payload)))
        workers_used = 1
    else:
        workers_used = min(workers, len(pending))
        if chunksize is None:
            chunksize = max(1, len(pending) // (workers_used * 4))
        with ProcessPoolExecutor(
            max_workers=workers_used, mp_context=_pool_context()
        ) as pool:
            payloads = [dict(cell.payload) for cell in pending]
            # Ordered map: results come back in submission order regardless
            # of which worker finishes first — determinism needs no sorting.
            for cell, row in zip(pending, pool.map(execute_cell, payloads, chunksize=chunksize)):
                _finish(cell, row)

    assert all(row is not None for row in rows)
    if cache is not None:
        telemetry.count("cache.cells_replayed", cache.hits)
        logger.info("%s", cache.summary_line())
    return CampaignResult(
        name=spec.name,
        spec=spec.to_dict(),
        rows=[row for row in rows if row is not None],
        workers=workers_used,
        wall_seconds=time.perf_counter() - started,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
