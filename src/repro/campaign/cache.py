"""Content-addressed result caching for campaign cells.

A cell's *payload* (its JSON work order, :mod:`repro.campaign.spec`) fully
determines its deterministic result, so the payload's canonical-JSON SHA-256
is a sound cache key: re-running an edited campaign recomputes exactly the
cells whose payloads changed (a new protocol, a reseeded axis, a different
loss level) and replays everything else from disk.  Host wall time is the one
field a cached row cannot refresh; rows replayed from the cache are marked
``cached=True`` so aggregations can tell.

The cache layout is one ``<sha256>.json`` file per cell under the cache
directory — trivially inspectable, safe to delete wholesale, and naturally
shared between campaigns that happen to contain identical cells.

``CACHE_VERSION`` is baked into every key; bump it whenever the simulation's
observable outputs change so stale results can never masquerade as fresh
ones.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Mapping, Optional

__all__ = ["CACHE_VERSION", "ResultCache", "payload_hash"]

#: Bump on any change to what execute_cell computes from a payload.
CACHE_VERSION = 1


def payload_hash(payload: Mapping) -> str:
    """The content hash of one cell payload (stable across key order)."""
    canonical = json.dumps(
        {"version": CACHE_VERSION, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed cell results.

    Misses and hits are counted so callers (and the CLI) can report how much
    of a re-run was replayed.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, payload: Mapping) -> str:
        return os.path.join(self.directory, payload_hash(payload) + ".json")

    def get(self, payload: Mapping) -> Optional[Dict[str, object]]:
        """The cached row for ``payload``, or ``None`` (a corrupt or missing
        entry counts as a miss and will be recomputed)."""
        path = self._path(payload)
        try:
            with open(path, encoding="utf-8") as handle:
                row = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        row["cached"] = True
        return row

    def put(self, payload: Mapping, row: Mapping) -> None:
        """Store one freshly computed row (atomically, via rename)."""
        path = self._path(payload)
        stored = {key: value for key, value in row.items() if key != "cached"}
        tmp = f"{path}.tmp{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(stored, handle)
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))
