"""Content-addressed result caching for campaign cells.

A cell's *payload* (its JSON work order, :mod:`repro.campaign.spec`) fully
determines its deterministic result, so the payload's canonical-JSON SHA-256
is a sound cache key: re-running an edited campaign recomputes exactly the
cells whose payloads changed (a new protocol, a reseeded axis, a different
loss level) and replays everything else from disk.  Host wall time is the one
field a cached row cannot refresh; rows replayed from the cache are marked
``cached=True`` so aggregations can tell.

The cache layout is one ``<sha256>.json`` file per cell under the cache
directory — trivially inspectable, safe to delete wholesale, and naturally
shared between campaigns that happen to contain identical cells.

Robustness contract: a cache entry can **never** take a campaign down.  A
truncated file, non-JSON garbage, or valid JSON of the wrong shape (anything
but an object with the row's identifying fields) is logged at warning level
and treated as a miss — the cell recomputes and the entry is overwritten.
:meth:`ResultCache.prune` bounds the directory by age and/or entry count for
long-lived caches shared across many campaigns.

``CACHE_VERSION`` is baked into every key; bump it whenever the simulation's
observable outputs change so stale results can never masquerade as fresh
ones.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from typing import Dict, List, Mapping, Optional

from .. import telemetry

__all__ = ["CACHE_VERSION", "ResultCache", "payload_hash"]

#: Bump on any change to what execute_cell computes from a payload.
CACHE_VERSION = 1

#: A stored row must at least identify its cell; anything less is garbage
#: (e.g. a JSON scalar or a file from some other tool sharing the directory).
_REQUIRED_ROW_KEYS = ("campaign", "cell")

logger = logging.getLogger(__name__)


def payload_hash(payload: Mapping) -> str:
    """The content hash of one cell payload (stable across key order)."""
    canonical = json.dumps(
        {"version": CACHE_VERSION, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed cell results.

    Misses and hits are counted so callers (and the CLI) can report how much
    of a re-run was replayed.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, payload: Mapping) -> str:
        return os.path.join(self.directory, payload_hash(payload) + ".json")

    def get(self, payload: Mapping) -> Optional[Dict[str, object]]:
        """The cached row for ``payload``, or ``None``.

        A missing entry is a plain miss; a corrupt one (truncated write,
        non-JSON bytes, JSON of the wrong shape) is logged and counted as a
        miss too — the caller recomputes and the bad entry gets overwritten.
        """
        path = self._path(payload)
        try:
            with open(path, encoding="utf-8") as handle:
                row = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            telemetry.count("cache.misses")
            return None
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            logger.warning("corrupt cache entry %s (%s): recomputing", path, exc)
            self.misses += 1
            telemetry.count("cache.misses")
            return None
        if not isinstance(row, dict) or any(key not in row for key in _REQUIRED_ROW_KEYS):
            logger.warning("cache entry %s is not a result row: recomputing", path)
            self.misses += 1
            telemetry.count("cache.misses")
            return None
        self.hits += 1
        telemetry.count("cache.hits")
        row["cached"] = True
        return row

    def put(self, payload: Mapping, row: Mapping) -> None:
        """Store one freshly computed row (atomically, via rename)."""
        path = self._path(payload)
        stored = {key: value for key, value in row.items() if key != "cached"}
        tmp = f"{path}.tmp{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(stored, handle)
        os.replace(tmp, path)
        telemetry.count("cache.puts")

    # ------------------------------------------------------------ maintenance
    def prune(
        self,
        *,
        max_age_s: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> int:
        """Delete old and/or surplus entries; return how many were removed.

        ``max_age_s`` drops entries whose mtime is older than that many
        seconds; ``max_entries`` then keeps only the newest N.  Entries that
        vanish concurrently (another process pruning the shared directory)
        are skipped silently — the cache is advisory storage, never truth.
        """
        entries: List[tuple] = []
        now = time.time()
        for name in os.listdir(self.directory):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                continue
            entries.append((mtime, path))
        doomed = []
        if max_age_s is not None:
            cutoff = now - max_age_s
            doomed.extend(path for mtime, path in entries if mtime < cutoff)
            entries = [(m, p) for m, p in entries if m >= cutoff]
        if max_entries is not None and len(entries) > max_entries:
            entries.sort(reverse=True)  # newest first
            doomed.extend(path for _, path in entries[max_entries:])
        removed = 0
        for path in doomed:
            try:
                os.remove(path)
                removed += 1
            except OSError:
                continue
        if removed:
            telemetry.count("cache.pruned", removed)
            logger.info("pruned %d cache entr%s from %s",
                        removed, "y" if removed == 1 else "ies", self.directory)
        return removed

    def summary_line(self) -> str:
        """One line of hit/miss statistics (logged at campaign end)."""
        total = self.hits + self.misses
        rate = 100.0 * self.hits / total if total else 0.0
        return (
            f"cache {self.directory}: {self.hits} hits, {self.misses} misses "
            f"({rate:.0f}% hit rate), {len(self)} entries on disk"
        )

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))
