"""``python -m repro.campaign`` — run a campaign spec without writing a script.

The spec is a JSON object of :class:`~repro.campaign.spec.CampaignSpec`
fields::

    {
      "name": "loss-sweep",
      "protocols": ["proposed-gka", "bd-unauthenticated", "ssn"],
      "group_sizes": [8, 12],
      "losses": [0.0, 0.1, 0.2],
      "schedule": {"kind": "poisson", "length": 8},
      "adversaries": {"none": null, "inject": "inject"},
      "seed": 7
    }

Examples::

    python -m repro.campaign spec.json --workers 4
    python -m repro.campaign spec.json --workers 4 --cache-dir .campaign-cache \\
        --csv rows.csv --json result.json --pivot protocol:loss:energy_j
    python -m repro.campaign spec.json --dry-run --cache-dir .campaign-cache
    python -m repro.campaign --list-protocols
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..backends.registry import available_backends
from ..core.registry import describe_registry
from ..exceptions import ReproError
from ..profiling import observability
from .execute import run_campaign
from .plan import plan_campaign
from .spec import AXIS_NAMES, CampaignSpec


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Expand a JSON campaign spec into its parameter grid, run "
        "every cell (optionally sharded over worker processes), and emit the "
        "aggregated rows.",
    )
    parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="path to the campaign spec JSON ('-' for stdin)",
    )
    parser.add_argument(
        "--list-protocols",
        action="store_true",
        help="print the protocol registry (names, aliases, tags) and exit",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (default 1; output is bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-hash result cache directory (re-runs replay unchanged cells)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded cell grid (count, axis values, cached-vs-"
        "pending split when --cache-dir is set) without running anything",
    )
    parser.add_argument("--csv", default=None, help="write the long-form rows CSV here")
    parser.add_argument("--json", default=None, help="write the full result JSON here")
    parser.add_argument(
        "--pivot",
        default=None,
        metavar="INDEX:COLUMNS:VALUE",
        help=f"print a pivot table (axes: {', '.join(AXIS_NAMES)}; "
        "value: any metric column, e.g. energy_j)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="crypto backend for every cell "
        f"({', '.join(available_backends())}; overrides the spec's own 'backend')",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the campaign run and print the top cumulative hotspots "
        "to stderr (forces --workers 1 so the work happens in this process)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record per-cell spans; *.jsonl writes span JSONL, anything else "
        "a Perfetto-loadable Chrome trace (forces --workers 1 so every cell "
        "runs in this process)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters/histograms and print the summary table to "
        "stderr (pool workers' in-cell metrics stay in their processes; use "
        "--workers 1 or the fleet for complete aggregation)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary on stdout"
    )
    args = parser.parse_args(argv)

    if args.list_protocols:
        print(describe_registry())
        return 0
    if args.spec is None:
        parser.error("spec is required unless --list-protocols is given")

    try:
        if args.spec == "-":
            payload = json.load(sys.stdin)
        else:
            with open(args.spec, encoding="utf-8") as handle:
                payload = json.load(handle)
        if args.backend is not None:
            payload = {**payload, "backend": args.backend}
        spec = CampaignSpec.from_dict(payload)
        pivot = None
        if args.pivot is not None:
            parts = args.pivot.split(":")
            if len(parts) != 3:
                raise ValueError(
                    f"--pivot must be INDEX:COLUMNS:VALUE, got {args.pivot!r}"
                )
            pivot = tuple(parts)
        if args.workers < 1:
            raise ValueError("--workers must be at least 1")
    except (ReproError, OSError, json.JSONDecodeError, TypeError, ValueError) as exc:
        # A mistyped spec should print one line, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.dry_run:
        # The pre-flight report: what would run, what the cache already has.
        print(plan_campaign(spec, cache_dir=args.cache_dir).describe())
        return 0

    workers = 1 if (args.profile or args.trace) else args.workers
    with observability(
        profile=args.profile, trace=args.trace, metrics=args.metrics
    ):
        result = run_campaign(spec, workers=workers, cache_dir=args.cache_dir)

    if args.csv:
        result.to_csv(args.csv)
    if args.json:
        result.to_json(args.json)
    if not args.quiet:
        print(result.summary())
        if pivot is not None:
            print()
            print(result.pivot_table(*pivot))
    # Per-cell failures are isolated, not fatal — but they must not look like
    # success to scripts either.
    return 1 if result.failures() else 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
