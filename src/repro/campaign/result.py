"""Campaign aggregation: long-form rows, groupby/pivot views, exports.

A :class:`CampaignResult` is a list of flat per-cell rows (axis values +
metrics, one dict per grid point) plus the spec that produced them.  The
aggregation helpers deliberately mirror a dataframe's verbs — ``rows`` is the
long-form table, :meth:`CampaignResult.groupby` collapses along axes,
:meth:`CampaignResult.pivot` crosses two of them — without requiring pandas:
everything is plain dicts, CSV and JSON.

Determinism bookkeeping lives here too: :data:`NONDETERMINISTIC_FIELDS` names
the row fields that legitimately differ between two executions of the same
spec (host wall time, cache provenance), and
:meth:`CampaignResult.deterministic_rows` strips them — the exact view the
determinism test harness compares between ``workers=1`` and ``workers=N``.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ParameterError

__all__ = ["NONDETERMINISTIC_FIELDS", "CampaignResult", "mean", "total"]

#: Row fields allowed to differ between two runs of the same spec: host
#: timing and cache provenance.  Everything else must be bit-identical.
NONDETERMINISTIC_FIELDS = ("wall_seconds", "cached")


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (the default aggregation)."""
    return sum(values) / len(values) if values else 0.0


def total(values: Sequence[float]) -> float:
    """Plain sum, for additive metrics like energy or messages."""
    return float(sum(values))


def _axis_sort_key(value: object):
    """Sort numeric axis values numerically, everything else lexically."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return (1, str(value))
    return (0, float(value))


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    name: str
    #: the spec's JSON dict form (what :meth:`to_json` embeds for provenance)
    spec: Mapping[str, object]
    #: one flat dict per cell, in cell (grid) order
    rows: List[Dict[str, object]]
    #: process count actually used
    workers: int = 1
    #: host wall time for the whole run (cache replays included)
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    # ------------------------------------------------------------ basic views
    def __len__(self) -> int:
        return len(self.rows)

    def failures(self) -> List[Dict[str, object]]:
        """Rows whose cell crashed (``error`` non-empty)."""
        return [row for row in self.rows if row.get("error")]

    def ok_rows(self) -> List[Dict[str, object]]:
        """Rows whose cell completed."""
        return [row for row in self.rows if not row.get("error")]

    def deterministic_rows(self) -> List[Dict[str, object]]:
        """The rows with host-dependent fields stripped.

        Two executions of the same spec — any worker count, cache hot or
        cold — must produce equal lists here; the campaign determinism
        harness asserts exactly that.
        """
        return [
            {k: v for k, v in row.items() if k not in NONDETERMINISTIC_FIELDS}
            for row in self.rows
        ]

    def column(self, name: str) -> List[object]:
        """One column across every completed row."""
        return [row[name] for row in self.ok_rows() if name in row]

    # ------------------------------------------------------------ aggregation
    def groupby(
        self,
        keys: Sequence[str],
        value: str,
        agg: Callable[[Sequence[float]], float] = mean,
    ) -> Dict[Tuple[object, ...], float]:
        """Aggregate ``value`` over every combination of ``keys``.

        >>> result.groupby(("protocol",), "energy_j")        # doctest: +SKIP
        {('proposed-gka',): 0.58, ('bd-unauthenticated',): 0.31}
        """
        if isinstance(keys, str):
            raise ParameterError("keys must be a sequence of column names, not a string")
        groups: Dict[Tuple[object, ...], List[float]] = {}
        for row in self.ok_rows():
            group = tuple(row.get(key) for key in keys)
            groups.setdefault(group, []).append(float(row[value]))
        return {group: agg(values) for group, values in groups.items()}

    def pivot(
        self,
        index: str,
        columns: str,
        value: str,
        agg: Callable[[Sequence[float]], float] = mean,
    ) -> Dict[object, Dict[object, float]]:
        """Cross two axes: ``{index_value: {column_value: aggregated value}}``."""
        cells = self.groupby((index, columns), value, agg)
        table: Dict[object, Dict[object, float]] = {}
        for (row_key, col_key), cell in cells.items():
            table.setdefault(row_key, {})[col_key] = cell
        return table

    def pivot_table(
        self,
        index: str,
        columns: str,
        value: str,
        agg: Callable[[Sequence[float]], float] = mean,
        *,
        fmt: str = "{:.6g}",
    ) -> str:
        """The pivot rendered as fixed-width text (for terminals and READMEs)."""
        table = self.pivot(index, columns, value, agg)
        col_keys = sorted(
            {col for cols in table.values() for col in cols}, key=_axis_sort_key
        )
        width = max([10] + [len(str(c)) for c in col_keys]) + 2
        left = max([len(index)] + [len(str(r)) for r in table]) + 2
        header = f"{value} ({agg.__name__}), {index} x {columns}"
        lines = [
            header,
            f"{index:<{left}}" + "".join(f"{str(c):>{width}}" for c in col_keys),
        ]
        lines.append("-" * len(lines[-1]))
        for row_key in sorted(table, key=_axis_sort_key):
            line = f"{str(row_key):<{left}}"
            for col_key in col_keys:
                cell = table[row_key].get(col_key)
                line += f"{fmt.format(cell) if cell is not None else '-':>{width}}"
            lines.append(line)
        return "\n".join(lines)

    # -------------------------------------------------------------- rendering
    def summary(self) -> str:
        """A short human-readable account of the run."""
        lines = [
            f"campaign : {self.name} — {len(self.rows)} cells "
            f"({self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.wall_seconds:.2f} s wall)",
        ]
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"cache    : {self.cache_hits} replayed, {self.cache_misses} computed"
            )
        failures = self.failures()
        if failures:
            lines.append(f"failures : {len(failures)} cell(s)")
            for row in failures[:5]:
                lines.append(f"  {row.get('cell', '?')}: {row['error']}")
            if len(failures) > 5:
                lines.append(f"  ... and {len(failures) - 5} more")
        else:
            lines.append("failures : none")
        verdicts = sorted({str(row.get("security_verdict", "")) for row in self.ok_rows()})
        if verdicts and verdicts != ["clean"]:
            lines.append(f"verdicts : {', '.join(v for v in verdicts if v)}")
        return "\n".join(lines)

    # ---------------------------------------------------------------- exports
    def _fieldnames(self) -> List[str]:
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def to_csv(self, path: Optional[str] = None) -> str:
        """The long-form rows as CSV (written to ``path`` when given)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer, fieldnames=self._fieldnames(), lineterminator="\n", restval=""
        )
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    def to_json(self, path: Optional[str] = None, *, indent: int = 2) -> str:
        """Spec, run metadata and rows as one JSON document."""
        payload = {
            "campaign": self.name,
            "spec": self.spec,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "cells": len(self.rows),
            "failures": len(self.failures()),
            "rows": self.rows,
        }
        text = json.dumps(payload, indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text
