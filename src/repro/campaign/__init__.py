"""``repro.campaign`` — sharded parameter-grid scenario sweeps.

The scenario engine (:mod:`repro.sim`) answers "what does protocol P do under
scenario S?"; this subsystem answers the production question "what does the
*whole grid* — protocol × group size × mobility × loss × engine × adversary —
do, as fast as the hardware allows?".  It is the layer the ROADMAP's
large-campaign claims (energy/latency/security trade-offs under churn) are
actually stress-tested through:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` declares the axes and
  expands them into independent cells, each with a stable key and a child
  seed derived from the master seed + cell key;
* :mod:`repro.campaign.execute` — :func:`run_campaign` shards the cells over
  a process pool with per-cell crash isolation; ``workers=N`` output is
  bit-identical to ``workers=1``;
* :mod:`repro.campaign.result` — :class:`CampaignResult` aggregates the flat
  rows (groupby, pivot, CSV/JSON export);
* :mod:`repro.campaign.cache` — :class:`ResultCache` content-hashes cell
  payloads so re-running an edited spec only recomputes changed cells.

The module is runnable: ``python -m repro.campaign spec.json --workers 4``.

Quickstart::

    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="loss-sweep",
        protocols=("proposed-gka", "bd-unauthenticated", "ssn"),
        group_sizes=(8, 12),
        losses=(0.0, 0.1, 0.2),
        schedule={"kind": "poisson", "length": 8},
        seed=7,
    )
    result = run_campaign(spec, workers=4)
    print(result.pivot_table("protocol", "loss", "energy_j"))
"""

from .cache import CACHE_VERSION, ResultCache, payload_hash
from .execute import execute_cell, run_campaign
from .plan import CampaignPlan, plan_campaign
from .result import NONDETERMINISTIC_FIELDS, CampaignResult, mean, total
from .spec import AXIS_NAMES, CampaignCell, CampaignSpec

__all__ = [
    "AXIS_NAMES",
    "CACHE_VERSION",
    "CampaignCell",
    "CampaignPlan",
    "CampaignResult",
    "CampaignSpec",
    "NONDETERMINISTIC_FIELDS",
    "ResultCache",
    "execute_cell",
    "mean",
    "payload_hash",
    "plan_campaign",
    "run_campaign",
    "total",
]
