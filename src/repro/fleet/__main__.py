"""``python -m repro.fleet`` — run a campaign controller or a fleet worker.

Controller (owns the spec, the queue and the result)::

    python -m repro.fleet controller --spec campaign.json --port 7777 \\
        --cache-dir .campaign-cache --csv rows.csv --pivot protocol:loss:energy_j

Workers (one per machine/core; connect to the controller's address)::

    python -m repro.fleet worker --connect controller-host:7777

The controller prints its plan (the ``--dry-run`` grid report) and its bound
address up front, streams one-line progress snapshots to stderr while rows
arrive, and exits ``1`` if any cell ended as an error row (worker-loss
retries exhausted, or a simulation failure inside a cell) — same exit-code
contract as ``python -m repro.campaign``.  Workers exit ``0`` on a clean
shutdown handshake and ``1`` when the controller was unreachable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from ..campaign.spec import CampaignSpec
from ..exceptions import ReproError
from ..profiling import observability
from .controller import CampaignController
from .worker import FleetWorker


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Distributed campaign orchestration: a controller that "
        "streams cells to TCP workers and assembles the bit-identical result.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    controller = commands.add_parser(
        "controller", help="serve a campaign spec to fleet workers"
    )
    controller.add_argument("--spec", required=True,
                            help="path to the campaign spec JSON ('-' for stdin)")
    controller.add_argument("--host", default="0.0.0.0", help="bind address")
    controller.add_argument("--port", type=int, default=7600,
                            help="bind port (0 picks an ephemeral port)")
    controller.add_argument("--cache-dir", default=None,
                            help="content-hash result cache (hits never dispatch)")
    controller.add_argument("--csv", default=None, help="write the rows CSV here")
    controller.add_argument("--json", default=None, help="write the result JSON here")
    controller.add_argument("--pivot", default=None, metavar="INDEX:COLUMNS:VALUE",
                            help="print a pivot table after the run")
    controller.add_argument("--heartbeat", type=float, default=1.0,
                            help="worker heartbeat interval in seconds")
    controller.add_argument("--max-requeues", type=int, default=2,
                            help="worker losses a cell survives before it "
                            "becomes an error row")
    controller.add_argument("--idle-timeout", type=float, default=None,
                            help="abort after this many seconds with pending "
                            "cells and no workers (default: wait forever)")
    controller.add_argument("--progress-every", type=float, default=2.0,
                            help="seconds between progress lines on stderr "
                            "(0 disables; the final 100%% line always prints)")
    controller.add_argument("--progress-json", default=None, metavar="PATH",
                            help="stream every FleetProgress snapshot as one "
                            "JSON object per line to this file ('-' for stderr)")
    controller.add_argument("--trace", default=None, metavar="PATH",
                            help="record controller dispatch spans plus every "
                            "worker's per-cell spans; *.jsonl writes span "
                            "JSONL, anything else a Perfetto-loadable Chrome "
                            "trace (workers appear as trace processes)")
    controller.add_argument("--metrics", action="store_true",
                            help="aggregate worker metrics fleet-wide and "
                            "print the summary table to stderr")
    controller.add_argument("--quiet", action="store_true",
                            help="suppress the plan/summary on stdout")

    worker = commands.add_parser("worker", help="serve cells for a controller")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the controller's address")
    worker.add_argument("--name", default=None,
                        help="worker name for the controller's health view")
    worker.add_argument("--connect-timeout", type=float, default=10.0,
                        help="seconds to keep retrying the initial connection")
    return parser


def _controller_main(args: argparse.Namespace) -> int:
    try:
        if args.spec == "-":
            payload = json.load(sys.stdin)
        else:
            with open(args.spec, encoding="utf-8") as handle:
                payload = json.load(handle)
        spec = CampaignSpec.from_dict(payload)
        pivot = None
        if args.pivot is not None:
            parts = args.pivot.split(":")
            if len(parts) != 3:
                raise ValueError(f"--pivot must be INDEX:COLUMNS:VALUE, got {args.pivot!r}")
            pivot = tuple(parts)
    except (ReproError, OSError, json.JSONDecodeError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    last_line = [0.0]
    final_emitted = [False]
    progress_json = None
    if args.progress_json is not None:
        progress_json = (
            sys.stderr
            if args.progress_json == "-"
            else open(args.progress_json, "w", encoding="utf-8")
        )

    def _stream_progress(snapshot) -> None:
        if progress_json is not None:
            print(json.dumps(snapshot.to_dict()), file=progress_json, flush=True)
        if not args.progress_every:
            return
        now = time.monotonic()
        # The final 100% snapshot always prints (once) — a run must never end
        # with a stale progress line on screen.
        if snapshot.complete and not final_emitted[0]:
            final_emitted[0] = True
            last_line[0] = now
            print(snapshot.render(), file=sys.stderr)
        elif not snapshot.complete and now - last_line[0] >= args.progress_every:
            last_line[0] = now
            print(snapshot.render(), file=sys.stderr)

    watch_progress = bool(args.progress_every) or progress_json is not None
    try:
        controller = CampaignController(
            spec,
            cache_dir=args.cache_dir,
            host=args.host,
            port=args.port,
            heartbeat_s=args.heartbeat,
            max_requeues=args.max_requeues,
            idle_timeout_s=args.idle_timeout,
            on_progress=_stream_progress if watch_progress else None,
        )
        host, port = controller.bind()
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(controller.plan.describe())
    # Machine-readable even under --quiet: scripts (and the test suite) parse
    # the ephemeral port from this line.
    print(f"listening on {host}:{port}", flush=True)

    try:
        with observability(
            trace=args.trace, metrics=args.metrics, process="controller"
        ):
            result = controller.serve()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if progress_json is not None and progress_json is not sys.stderr:
            progress_json.close()

    if args.csv:
        result.to_csv(args.csv)
    if args.json:
        result.to_json(args.json)
    if not args.quiet:
        print(result.summary())
        if pivot is not None:
            print()
            print(result.pivot_table(*pivot))
    return 1 if result.failures() else 0


def _worker_main(args: argparse.Namespace) -> int:
    host, separator, port = args.connect.rpartition(":")
    if not separator or not port.isdigit():
        print(f"error: --connect must be HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    worker = FleetWorker(
        (host, int(port)), name=args.name, connect_timeout_s=args.connect_timeout
    )
    try:
        cells = worker.run()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"worker {worker.name}: {cells} cell(s) computed", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "controller":
        return _controller_main(args)
    return _worker_main(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
