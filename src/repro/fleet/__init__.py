"""``repro.fleet`` — distributed campaign orchestration over TCP.

:mod:`repro.campaign` shards a parameter grid over one machine's cores; this
subsystem shards it over a *fleet*.  A :class:`CampaignController` owns the
cell queue and listens on a TCP socket (stdlib ``socket``/``selectors``,
length-prefixed JSON frames — no dependencies); :class:`FleetWorker`
processes register, receive cells one at a time, and stream result rows back
incrementally:

* :mod:`repro.fleet.wire` — the framing layer (4-byte length prefix +
  canonical JSON message);
* :mod:`repro.fleet.controller` — queue ownership, content-hash cache
  dedup (cache hits never leave the controller), heartbeat-based worker-loss
  detection with bounded requeues (then error rows — never a dead sweep),
  and streaming row assembly;
* :mod:`repro.fleet.worker` — the client loop around the campaign layer's
  existing pure worker function
  (:func:`~repro.campaign.execute.execute_cell`), with a heartbeat thread;
* :mod:`repro.fleet.progress` — the live progress/ETA view
  (:class:`FleetProgress`: cells done/in-flight/cached, rows per second,
  per-worker health) that replaces wait-for-everything assembly;
* :mod:`repro.fleet.local` — :func:`run_fleet_campaign`, which forks local
  workers at an ephemeral loopback port so existing callers and tests need
  no real network.

**The correctness oracle** is the campaign determinism pin extended across
the network boundary: a fleet run — any worker count, workers joining late
or dying mid-cell — assembles a
:class:`~repro.campaign.result.CampaignResult` bit-identical to
``run_campaign(spec, workers=1)`` (key fingerprints, energy ledgers,
sim latency, security verdicts; ``tests/test_fleet.py`` pins this, SIGKILL
included).

The module is runnable::

    python -m repro.fleet controller --spec campaign.json --port 7777
    python -m repro.fleet worker --connect controller-host:7777

Quickstart (in-process fleet)::

    from repro.campaign import CampaignSpec
    from repro.fleet import run_fleet_campaign

    spec = CampaignSpec(
        name="loss-sweep",
        protocols=("proposed-gka", "bd-unauthenticated", "ssn"),
        group_sizes=(8, 12),
        losses=(0.0, 0.1, 0.2),
        schedule={"kind": "poisson", "length": 8},
        seed=7,
    )
    result = run_fleet_campaign(spec, workers=4, cache_dir=".campaign-cache",
                                on_progress=lambda p: print(p.render()))
    print(result.pivot_table("protocol", "loss", "energy_j"))
"""

from .controller import CampaignController, WorkUnit
from .local import run_fleet_campaign
from .progress import FleetProgress, WorkerView
from .wire import MESSAGE_TYPES, PROTOCOL_VERSION, FrameDecoder, encode_frame
from .worker import FleetWorker

__all__ = [
    "CampaignController",
    "FleetProgress",
    "FleetWorker",
    "FrameDecoder",
    "MESSAGE_TYPES",
    "PROTOCOL_VERSION",
    "WorkUnit",
    "WorkerView",
    "encode_frame",
    "run_fleet_campaign",
]
