"""Live fleet progress: cells done/in-flight/cached, throughput, ETA, health.

The controller emits a :class:`FleetProgress` snapshot after every state
change (worker join/loss, dispatch, row received).  It is a plain frozen
value — callbacks can store, diff or render it without touching controller
state — and :meth:`FleetProgress.render` gives the canonical one-line view
the CLI and the example stream to stderr::

    fleet: 37/60 cells (12 cached, 4 in flight) | 3.1 rows/s | eta 7s | workers: 4 ok
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["FleetProgress", "WorkerView"]


@dataclass(frozen=True)
class WorkerView:
    """One worker's health as the controller sees it."""

    name: str
    pid: int
    state: str  # "busy" | "idle"
    cells_done: int
    current_cell: str = ""


@dataclass(frozen=True)
class FleetProgress:
    """One instant of a fleet campaign's life."""

    campaign: str
    total: int
    done: int  # rows filled (computed + cached + error rows)
    cached: int  # rows served from the result cache (never dispatched)
    in_flight: int  # units currently on a worker
    pending: int  # units still queued
    elapsed_s: float
    rows_per_s: float  # computed rows only — cache replays don't inflate it
    eta_s: Optional[float]  # None until a rate is established
    workers: Dict[str, WorkerView] = field(default_factory=dict)
    worker_losses: int = 0
    requeues: int = 0
    #: fleet-wide merged metrics snapshot (empty unless the controller runs
    #: with metrics enabled; see repro.telemetry)
    metrics: Dict[str, object] = field(default_factory=dict)
    #: per-worker merged metrics snapshots, keyed by worker name
    worker_metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable view (the ``--progress-json`` stream format)."""
        return {
            "campaign": self.campaign,
            "total": self.total,
            "done": self.done,
            "cached": self.cached,
            "in_flight": self.in_flight,
            "pending": self.pending,
            "elapsed_s": self.elapsed_s,
            "rows_per_s": self.rows_per_s,
            "eta_s": self.eta_s,
            "complete": self.complete,
            "workers": {
                name: {
                    "name": view.name,
                    "pid": view.pid,
                    "state": view.state,
                    "cells_done": view.cells_done,
                    "current_cell": view.current_cell,
                }
                for name, view in self.workers.items()
            },
            "worker_losses": self.worker_losses,
            "requeues": self.requeues,
            "metrics": self.metrics,
            "worker_metrics": self.worker_metrics,
        }

    def render(self) -> str:
        """The canonical one-line progress view."""
        eta = f"eta {self.eta_s:.0f}s" if self.eta_s is not None else "eta ?"
        health = f"{len(self.workers)} ok"
        if self.worker_losses:
            health += f", {self.worker_losses} lost"
        return (
            f"fleet: {self.done}/{self.total} cells "
            f"({self.cached} cached, {self.in_flight} in flight) | "
            f"{self.rows_per_s:.1f} rows/s | {eta} | workers: {health}"
        )
