"""The fleet worker: pull one cell at a time, stream the row back.

A :class:`FleetWorker` is the thinnest possible wrapper around the campaign
layer's existing worker contract — :func:`repro.campaign.execute.execute_cell`
is already a pure function from a JSON payload to a JSON row that never
raises, so the distributed worker adds only transport:

* connect (with retries, so workers may start before their controller),
* register with a ``hello``, obey the controller's advertised heartbeat,
* loop: receive a ``cell``, compute it, send the ``row``, repeat,
* exit cleanly on ``shutdown`` (or on EOF — a vanished controller is not an
  error worth a traceback on every node of a fleet).

Heartbeats come from a daemon thread so they keep flowing while the main
thread is deep inside a long cell — exactly when the controller most needs
evidence the worker is alive rather than gone.  Socket writes are serialized
by a lock shared with that thread.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from .. import telemetry
from ..exceptions import FleetError
from .wire import PROTOCOL_VERSION, FrameDecoder, send_message

__all__ = ["FleetWorker"]

#: Per-cell span cap: bounds the row frame far below the 64 MiB wire limit.
_CELL_MAX_SPANS = 50_000


class FleetWorker:
    """One fleet worker process' client loop.

    Parameters
    ----------
    connect:
        The controller's ``(host, port)``.
    name:
        Worker name for the controller's health view (default:
        ``<hostname>-<pid>``).
    connect_timeout_s:
        Keep retrying the initial connection for this long (covers workers
        launched before the controller finished binding).
    heartbeat_s:
        Fallback heartbeat interval; the controller's ``welcome`` overrides
        it.
    """

    def __init__(
        self,
        connect: Tuple[str, int],
        *,
        name: Optional[str] = None,
        connect_timeout_s: float = 10.0,
        heartbeat_s: float = 1.0,
    ) -> None:
        self.connect = (str(connect[0]), int(connect[1]))
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_s = heartbeat_s
        self.cells_done = 0
        #: per-cell telemetry, switched on by the controller's welcome
        self.trace_cells = False
        self.metrics_cells = False
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._decoder = FrameDecoder()
        self._inbox: Deque[Dict[str, object]] = deque()

    # ------------------------------------------------------------------- run
    def run(self) -> int:
        """Serve until the controller shuts us down; returns cells computed."""
        self._sock = self._connect_with_retries()
        heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="fleet-heartbeat", daemon=True
        )
        try:
            self._send({"type": "hello", "version": PROTOCOL_VERSION,
                        "worker": self.name, "pid": os.getpid()})
            welcome = self._next_message()
            if welcome is None or welcome.get("type") != "welcome":
                raise FleetError(
                    f"controller at {self.connect[0]}:{self.connect[1]} did not "
                    f"welcome us (got {welcome!r})"
                )
            self.heartbeat_s = float(welcome.get("heartbeat_s", self.heartbeat_s))
            self.trace_cells = bool(welcome.get("trace", False))
            self.metrics_cells = bool(welcome.get("metrics", False))
            heartbeat_thread.start()
            self._serve_cells()
        finally:
            self._stop.set()
            sock, self._sock = self._sock, None
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        return self.cells_done

    def _serve_cells(self) -> None:
        from ..campaign.execute import execute_cell

        while True:
            message = self._next_message()
            if message is None:  # controller vanished: exit quietly
                return
            kind = message.get("type")
            if kind == "shutdown":
                try:
                    self._send({"type": "bye", "cells_done": self.cells_done})
                except OSError:
                    pass
                return
            if kind != "cell":
                continue  # tolerate unknown-but-well-formed messages
            payload = message.get("payload")
            reply: Dict[str, object] = {"type": "row", "unit": message.get("unit", "")}
            # Telemetry rides the frame as *sibling* keys, never inside the
            # row: rows must stay bit-identical to an untraced workers=1 run.
            with telemetry.telemetry_session(
                trace=self.trace_cells,
                metrics=self.metrics_cells,
                process=self.name,
                max_spans=_CELL_MAX_SPANS,
            ) as session:
                row = execute_cell(dict(payload) if isinstance(payload, dict) else {})
            if session.tracer is not None:
                reply["spans"] = [span.to_dict() for span in session.tracer.spans]
            if session.metrics is not None:
                reply["metrics"] = session.metrics.snapshot()
            self.cells_done += 1
            reply["row"] = row
            self._send(reply)

    # ------------------------------------------------------------- transport
    def _connect_with_retries(self) -> socket.socket:
        deadline = time.monotonic() + self.connect_timeout_s
        delay = 0.05
        while True:
            try:
                sock = socket.create_connection(self.connect, timeout=5.0)
                sock.settimeout(None)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise FleetError(
                        f"could not reach controller at "
                        f"{self.connect[0]}:{self.connect[1]}: {exc}"
                    ) from None
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _send(self, message: Dict[str, object]) -> None:
        assert self._sock is not None
        with self._send_lock:
            send_message(self._sock, message)

    def _next_message(self) -> Optional[Dict[str, object]]:
        """Block for the next controller message (``None`` on EOF)."""
        assert self._sock is not None
        while not self._inbox:
            try:
                chunk = self._sock.recv(65536)
            except OSError:
                return None
            if not chunk:
                return None
            self._inbox.extend(self._decoder.feed(chunk))
        return self._inbox.popleft()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            try:
                self._send({"type": "heartbeat"})
            except OSError:
                return  # link is gone; the main loop will notice on recv
