"""Local fleets: the controller/worker architecture without a network.

:func:`run_fleet_campaign` is the drop-in convenience for existing callers:
it binds the controller on an ephemeral loopback port, forks ``workers``
local :class:`~repro.fleet.worker.FleetWorker` processes at it, serves the
campaign, and returns the same :class:`~repro.campaign.result.CampaignResult`
a ``run_campaign`` call would — bit-identical to ``workers=1``, because the
assembly path *is* the distributed one.  Tests, examples and benchmarks get
the full fault-tolerance machinery (heartbeats, requeues, streaming
assembly) with no real network and no extra ceremony.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Tuple

from ..campaign.result import CampaignResult
from ..campaign.spec import CampaignCell, CampaignSpec
from ..exceptions import ParameterError
from .controller import CampaignController
from .progress import FleetProgress
from .worker import FleetWorker

__all__ = ["run_fleet_campaign"]


def _local_worker_main(address: Tuple[str, int], name: str) -> None:
    """Entry point of one forked local worker (module-level for spawn)."""
    FleetWorker(address, name=name).run()


def _fork_context():
    """Prefer fork (cheap, inherits warm caches); fall back where unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_fleet_campaign(
    spec: CampaignSpec,
    *,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    cells: Optional[List[CampaignCell]] = None,
    heartbeat_s: float = 0.5,
    max_requeues: int = 2,
    idle_timeout_s: Optional[float] = 60.0,
    on_progress: Optional[Callable[[FleetProgress], None]] = None,
) -> CampaignResult:
    """Run ``spec`` on a controller plus ``workers`` forked local workers.

    Parameters mirror :func:`~repro.campaign.execute.run_campaign` where they
    overlap (``workers`` defaults to the CPU count here — a fleet of one is
    legal but pointless); ``heartbeat_s``/``max_requeues``/``idle_timeout_s``
    tune the controller's fault tolerance and ``on_progress`` receives live
    :class:`~repro.fleet.progress.FleetProgress` snapshots.

    Output is **bit-identical** to ``run_campaign(spec, workers=1)`` — the
    determinism pin the whole fleet layer is built around.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ParameterError("a fleet needs at least one worker")
    controller = CampaignController(
        spec,
        cells=cells,
        cache_dir=cache_dir,
        host="127.0.0.1",
        port=0,
        heartbeat_s=heartbeat_s,
        max_requeues=max_requeues,
        idle_timeout_s=idle_timeout_s,
        on_progress=on_progress,
    )
    address = controller.bind()
    processes: List[multiprocessing.Process] = []
    try:
        if controller.plan.pending:  # an all-cached campaign needs no fleet
            context = _fork_context()
            for index in range(min(workers, len(controller.plan.pending))):
                process = context.Process(
                    target=_local_worker_main,
                    args=(address, f"local-{index}"),
                    daemon=True,
                )
                process.start()
                processes.append(process)
        return controller.serve()
    finally:
        for process in processes:
            process.join(timeout=5.0)
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
