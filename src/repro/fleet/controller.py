"""The fleet controller: owns the cell queue, workers stream rows back.

:class:`CampaignController` binds a TCP socket, accepts :mod:`repro.fleet.worker`
connections, and drives one campaign to completion:

* **Queue** — the spec's grid is planned up front
  (:func:`repro.campaign.plan.plan_campaign`): cache hits fill their rows
  immediately and are *never dispatched* — a resumed campaign only ships the
  cells that still need computing.  Pending cells are deduplicated by
  content hash, so two cells with identical payloads cost one execution.
* **Streaming** — each idle worker holds exactly one cell; its row is
  recorded (and cached) the moment it arrives, so progress is continuous
  rather than wait-for-everything.
* **Fault tolerance** — a worker is declared lost on socket EOF/error or
  after :attr:`heartbeat_s` × :attr:`heartbeat_misses` of silence.  Its
  in-flight cell goes back to the *front* of the queue; after
  :attr:`max_requeues` losses the cell becomes an ``error`` row instead
  (bounded retries — a poisoned cell can never wedge the campaign).
* **Determinism** — rows are assembled by cell index, and every stochastic
  input lives in the cell's own derived seed, so the assembled
  :class:`~repro.campaign.result.CampaignResult` is bit-identical to
  ``run_campaign(workers=1)`` no matter how many workers served it, joined
  late, or died mid-cell (``tests/test_fleet.py`` pins this, SIGKILL
  included).

The controller is single-threaded (``selectors`` over blocking sockets);
worker messages are small and strictly request/response, so readiness-driven
framing needs no async machinery.
"""

from __future__ import annotations

import selectors
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .. import telemetry
from ..campaign.cache import ResultCache, payload_hash
from ..campaign.plan import CampaignPlan, plan_campaign
from ..campaign.result import CampaignResult
from ..campaign.spec import CampaignCell, CampaignSpec
from ..exceptions import FleetError, ParameterError
from .progress import FleetProgress, WorkerView
from .wire import PROTOCOL_VERSION, FrameDecoder, send_message

__all__ = ["CampaignController", "WorkUnit"]


@dataclass
class WorkUnit:
    """One dispatchable unit: a payload plus every cell index it serves."""

    key: str  # payload content hash
    payload: Dict[str, object]
    indices: List[int]  # cell indices sharing this payload (usually one)
    attempts: int = 0  # dispatches so far (first dispatch makes it 1)


@dataclass
class _Worker:
    """Controller-side view of one connected worker."""

    sock: socket.socket
    decoder: FrameDecoder = field(default_factory=FrameDecoder)
    name: str = ""
    pid: int = 0
    registered: bool = False
    unit: Optional[WorkUnit] = None  # the in-flight work unit, if busy
    last_seen: float = 0.0
    cells_done: int = 0
    #: tracer-epoch time the in-flight unit was dispatched (wall offset for
    #: adopting the worker's cell-relative spans)
    dispatched_at: float = 0.0


class CampaignController:
    """Serve one campaign's cells to fleet workers and assemble the result.

    Parameters
    ----------
    spec:
        The campaign to run.
    cells:
        Pre-expanded (possibly adjusted) cell list, as in
        :func:`~repro.campaign.execute.run_campaign`.
    cache_dir:
        Content-hash result cache: hits are served locally at plan time,
        fresh rows are written back as they stream in.
    host / port:
        Bind address; port ``0`` picks an ephemeral port (see
        :attr:`address` after :meth:`bind`).
    heartbeat_s / heartbeat_misses:
        Workers send a heartbeat every ``heartbeat_s``; one that stays
        silent for ``heartbeat_s * heartbeat_misses`` is declared lost even
        if its TCP link looks alive (half-open connections, network
        partitions).
    max_requeues:
        How many times a cell may be re-dispatched after worker losses
        before it is written off as an error row.
    idle_timeout_s:
        With work pending, no workers connected, and nothing in flight for
        this long, :meth:`serve` raises :class:`~repro.exceptions.FleetError`
        instead of waiting forever (``None`` = wait indefinitely).
    on_progress:
        Callback receiving a :class:`~repro.fleet.progress.FleetProgress`
        snapshot after every state change (dispatch, row, worker join/loss).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        cells: Optional[List[CampaignCell]] = None,
        cache_dir: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: float = 1.0,
        heartbeat_misses: int = 5,
        max_requeues: int = 2,
        idle_timeout_s: Optional[float] = None,
        on_progress: Optional[Callable[[FleetProgress], None]] = None,
    ) -> None:
        if heartbeat_s <= 0:
            raise ParameterError("heartbeat_s must be positive")
        if max_requeues < 0:
            raise ParameterError("max_requeues cannot be negative")
        self.spec = spec
        self.host = host
        self.port = port
        self.heartbeat_s = heartbeat_s
        self.heartbeat_misses = heartbeat_misses
        self.max_requeues = max_requeues
        self.idle_timeout_s = idle_timeout_s
        self.on_progress = on_progress

        self._cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.plan: CampaignPlan = plan_campaign(spec, cells=cells, cache=self._cache)
        if [cell.index for cell in self.plan.cells] != list(range(len(self.plan.cells))):
            raise ParameterError("adjusted cell lists must keep contiguous indices")

        self._rows: List[Optional[Dict[str, object]]] = [None] * self.plan.total
        for index, row in self.plan.cached_rows.items():
            self._rows[index] = row

        # Deduplicate pending cells by payload hash: one WorkUnit may serve
        # several cell indices (identical payloads are bit-identical rows).
        self._queue: Deque[WorkUnit] = deque()
        by_hash: Dict[str, WorkUnit] = {}
        for cell in self.plan.pending:
            key = payload_hash(cell.payload)
            unit = by_hash.get(key)
            if unit is None:
                unit = WorkUnit(key=key, payload=dict(cell.payload), indices=[])
                by_hash[key] = unit
                self._queue.append(unit)
            unit.indices.append(cell.index)

        self._workers: Dict[socket.socket, _Worker] = {}
        self._selector: Optional[selectors.BaseSelector] = None
        self._listener: Optional[socket.socket] = None
        self._started = 0.0
        self._done_cells = self.plan.total - sum(len(u.indices) for u in self._queue)
        self._completed_units = 0
        self._dispatched_units = 0
        self._requeues = 0
        self._worker_losses = 0
        self._workers_seen = 0
        self._peak_workers = 0
        # Resolved from the active telemetry session when serve() starts;
        # None keeps every hook on its zero-overhead path.
        self._tracer = None
        self._metrics = None
        self._worker_metrics: Dict[str, Dict[str, object]] = {}

    # ----------------------------------------------------------------- status
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — call :meth:`bind` first."""
        if self._listener is None:
            raise FleetError("controller is not bound yet")
        return self._listener.getsockname()[:2]

    @property
    def dispatched_units(self) -> int:
        """Work units actually shipped to workers (cache hits never count)."""
        return self._dispatched_units

    @property
    def requeues(self) -> int:
        """Cells re-queued after a worker loss."""
        return self._requeues

    @property
    def worker_losses(self) -> int:
        """Workers declared lost (EOF, socket error, or heartbeat silence)."""
        return self._worker_losses

    def snapshot(self) -> FleetProgress:
        """The live progress/ETA view."""
        in_flight = sum(1 for w in self._workers.values() if w.unit is not None)
        elapsed = time.perf_counter() - self._started if self._started else 0.0
        computed = self._done_cells - len(self.plan.cached_rows)
        rate = computed / elapsed if elapsed > 0 and computed > 0 else 0.0
        remaining = self.plan.total - self._done_cells
        workers = {}
        for worker in self._workers.values():
            if not worker.registered:
                continue
            workers[worker.name] = WorkerView(
                name=worker.name,
                pid=worker.pid,
                state="busy" if worker.unit is not None else "idle",
                cells_done=worker.cells_done,
                current_cell=(
                    str(worker.unit.payload.get("cell", "")) if worker.unit else ""
                ),
            )
        return FleetProgress(
            campaign=self.spec.name,
            total=self.plan.total,
            done=self._done_cells,
            cached=len(self.plan.cached_rows),
            in_flight=in_flight,
            pending=len(self._queue),
            elapsed_s=elapsed,
            rows_per_s=rate,
            eta_s=remaining / rate if rate > 0 else None,
            workers=workers,
            worker_losses=self._worker_losses,
            requeues=self._requeues,
            metrics=self._metrics.snapshot() if self._metrics is not None else {},
            worker_metrics={
                name: dict(snapshot)
                for name, snapshot in self._worker_metrics.items()
            },
        )

    def _notify(self) -> None:
        if self.on_progress is not None:
            self.on_progress(self.snapshot())

    # ------------------------------------------------------------------ serve
    def bind(self) -> Tuple[str, int]:
        """Open the listening socket; returns the bound (host, port)."""
        if self._listener is not None:
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self._listener = listener
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, "accept")
        return self.address

    def serve(self) -> CampaignResult:
        """Run to completion and return the assembled result.

        Blocks until every cell has a row (computed, cached, or written off
        as an error after bounded retries), then shuts the workers down and
        closes the listener.
        """
        self.bind()
        assert self._selector is not None
        self._tracer = telemetry.active_tracer()
        self._metrics = telemetry.active_metrics()
        self._started = time.perf_counter()
        self._notify()
        idle_since: Optional[float] = None
        try:
            while not self._complete():
                events = self._selector.select(timeout=self.heartbeat_s / 2)
                for key, _ in events:
                    if key.data == "accept":
                        self._accept()
                    else:
                        self._service(key.fileobj)  # type: ignore[arg-type]
                self._reap_silent_workers()
                # Starvation guard: pending work, nobody to do it.
                if self._queue and not self._workers:
                    if idle_since is None:
                        idle_since = time.perf_counter()
                    elif (
                        self.idle_timeout_s is not None
                        and time.perf_counter() - idle_since > self.idle_timeout_s
                    ):
                        raise FleetError(
                            f"no workers for {self.idle_timeout_s:.0f}s with "
                            f"{len(self._queue)} work unit(s) still pending"
                        )
                else:
                    idle_since = None
            return self._assemble()
        finally:
            self.close()

    def close(self) -> None:
        """Shut down every worker link and the listener."""
        for sock in list(self._workers):
            self._drop(sock, shutdown=True)
        if self._listener is not None:
            if self._selector is not None:
                try:
                    self._selector.unregister(self._listener)
                except KeyError:
                    pass
            self._listener.close()
            self._listener = None
        if self._selector is not None:
            self._selector.close()
            self._selector = None

    # ------------------------------------------------------------ connections
    def _accept(self) -> None:
        assert self._listener is not None and self._selector is not None
        sock, _ = self._listener.accept()
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        worker = _Worker(sock=sock, last_seen=time.perf_counter())
        self._workers[sock] = worker
        self._selector.register(sock, selectors.EVENT_READ, "worker")

    def _service(self, sock: socket.socket) -> None:
        """Drain one readable worker socket and handle its messages."""
        worker = self._workers.get(sock)
        if worker is None:
            return
        try:
            chunk = sock.recv(65536)
        except OSError:
            self._lose(sock)
            return
        if not chunk:
            self._lose(sock)
            return
        try:
            messages = worker.decoder.feed(chunk)
        except FleetError:
            # A peer speaking garbage is dropped like a dead one; its cell
            # is requeued for a sane worker.
            self._lose(sock)
            return
        worker.last_seen = time.perf_counter()
        for message in messages:
            self._handle(sock, worker, message)
            if sock not in self._workers:
                return  # dropped mid-batch

    def _handle(self, sock: socket.socket, worker: _Worker, message: Dict) -> None:
        kind = message.get("type")
        if kind == "hello":
            if int(message.get("version", 0)) != PROTOCOL_VERSION:
                self._send(sock, worker, {"type": "shutdown", "reason": "version"})
                self._drop(sock)
                return
            self._workers_seen += 1
            worker.registered = True
            worker.name = str(message.get("worker", "")) or f"worker-{self._workers_seen}"
            worker.pid = int(message.get("pid", 0))
            self._peak_workers = max(
                self._peak_workers,
                sum(1 for w in self._workers.values() if w.registered),
            )
            self._send(
                sock,
                worker,
                {
                    "type": "welcome",
                    "version": PROTOCOL_VERSION,
                    "campaign": self.spec.name,
                    "heartbeat_s": self.heartbeat_s,
                    # Advertised telemetry: workers wrap each cell in a
                    # session and ship spans/metrics back on the row frame.
                    "trace": self._tracer is not None,
                    "metrics": self._metrics is not None,
                },
            )
            if self._tracer is not None:
                self._tracer.instant(
                    "fleet.worker_joined",
                    category="fleet",
                    track="workers",
                    args={"worker": worker.name, "pid": worker.pid},
                )
            if self._metrics is not None:
                self._metrics.count("fleet.workers_seen")
            self._dispatch(sock, worker)
            self._notify()
        elif kind == "row":
            unit = worker.unit
            if unit is None or str(message.get("unit", "")) != unit.key:
                return  # stale row from a requeued unit some other worker won
            worker.unit = None
            worker.cells_done += len(unit.indices)
            self._absorb_telemetry(worker, unit, message)
            row = message.get("row")
            if not isinstance(row, dict):
                # A worker that cannot produce a row forfeits the unit.
                self._requeue(unit)
            else:
                self._record(unit, row)
            self._dispatch(sock, worker)
            self._notify()
        elif kind == "heartbeat":
            if self._metrics is not None:
                self._metrics.count("fleet.heartbeats")
        elif kind == "bye":
            self._drop(sock)
            self._notify()

    # --------------------------------------------------------------- dispatch
    def _dispatch(self, sock: socket.socket, worker: _Worker) -> None:
        """Hand the next work unit to an idle worker (or let it idle)."""
        if worker.unit is not None or not worker.registered:
            return
        if not self._queue:
            if self._complete():
                pass  # serve() will notice and shut everything down
            return
        unit = self._queue.popleft()
        unit.attempts += 1
        worker.unit = unit
        self._dispatched_units += 1
        worker.dispatched_at = (
            self._tracer.now() if self._tracer is not None else time.perf_counter()
        )
        if self._metrics is not None:
            self._metrics.count("fleet.dispatches")
            self._metrics.gauge_max(
                "fleet.in_flight",
                sum(1 for w in self._workers.values() if w.unit is not None),
            )
        self._send(
            sock,
            worker,
            {"type": "cell", "unit": unit.key, "payload": unit.payload},
        )

    def _absorb_telemetry(
        self, worker: _Worker, unit: WorkUnit, message: Dict
    ) -> None:
        """Fold the row frame's sibling telemetry into the controller's view.

        The dispatch span lands on the controller process (one track per
        worker); the worker's own spans are adopted under the worker's name
        as a trace *process*, rebased from cell-relative wall time onto the
        controller tracer's epoch via the dispatch timestamp.
        """
        tracer = self._tracer
        if tracer is not None:
            finished = tracer.now()
            tracer.complete(
                f"dispatch:{unit.payload.get('cell', unit.key[:12])}",
                category="dispatch",
                track=worker.name or "worker",
                wall_start=worker.dispatched_at,
                wall_dur=max(0.0, finished - worker.dispatched_at),
                args={"worker": worker.name, "attempts": unit.attempts,
                      "cells": len(unit.indices)},
            )
            spans = message.get("spans")
            if isinstance(spans, list):
                tracer.adopt(
                    spans,
                    process=worker.name or "worker",
                    wall_offset=worker.dispatched_at,
                )
        snapshot = message.get("metrics")
        if isinstance(snapshot, dict):
            if self._metrics is not None:
                self._metrics.merge(snapshot)
                elapsed = (
                    tracer.now() if tracer is not None else time.perf_counter()
                ) - worker.dispatched_at
                self._metrics.observe("fleet.dispatch_wall_s", max(0.0, elapsed))
            name = worker.name or "worker"
            self._worker_metrics[name] = telemetry.merge_snapshots(
                [self._worker_metrics.get(name, {}), snapshot]
            )

    def _record(self, unit: WorkUnit, row: Dict[str, object]) -> None:
        """File one computed row under every cell index the unit serves."""
        row = dict(row)
        row.setdefault("cached", False)
        if self._cache is not None and not row.get("error"):
            self._cache.put(unit.payload, row)
        for index in unit.indices:
            if self._rows[index] is None:
                self._done_cells += 1
            self._rows[index] = dict(row)
        self._completed_units += 1

    def _requeue(self, unit: WorkUnit) -> None:
        """Return a lost unit to the queue head, or write it off."""
        if unit.attempts > self.max_requeues:
            message = (
                f"FleetError: worker lost while computing this cell "
                f"{unit.attempts} time(s); retries exhausted"
            )
            self._record(unit, _error_row(unit.payload, message))
            if self._metrics is not None:
                self._metrics.count("fleet.cells_written_off", len(unit.indices))
            return
        self._requeues += len(unit.indices)
        if self._tracer is not None:
            self._tracer.instant(
                "fleet.requeue",
                category="fleet",
                track="workers",
                args={"cell": str(unit.payload.get("cell", "")),
                      "attempts": unit.attempts},
            )
        if self._metrics is not None:
            self._metrics.count("fleet.requeues", len(unit.indices))
        self._queue.appendleft(unit)
        # Offer it immediately to any idle worker instead of waiting for the
        # next row to trigger a dispatch.
        for sock, worker in list(self._workers.items()):
            if worker.registered and worker.unit is None:
                self._dispatch(sock, worker)
                break

    # ------------------------------------------------------------ worker loss
    def _reap_silent_workers(self) -> None:
        deadline = time.perf_counter() - self.heartbeat_s * self.heartbeat_misses
        for sock, worker in list(self._workers.items()):
            if worker.registered and worker.last_seen < deadline:
                self._lose(sock)

    def _lose(self, sock: socket.socket) -> None:
        """A worker died (EOF, error, garbage, or heartbeat silence)."""
        worker = self._workers.get(sock)
        if worker is None:
            return
        unit = worker.unit
        if worker.registered:
            self._worker_losses += 1
            if self._tracer is not None:
                self._tracer.instant(
                    "fleet.worker_lost",
                    category="fleet",
                    track="workers",
                    args={"worker": worker.name},
                )
            if self._metrics is not None:
                self._metrics.count("fleet.worker_losses")
        self._drop(sock)
        if unit is not None:
            self._requeue(unit)
        self._notify()

    def _drop(self, sock: socket.socket, *, shutdown: bool = False) -> None:
        worker = self._workers.pop(sock, None)
        if worker is None:
            return
        if shutdown:
            try:
                send_message(sock, {"type": "shutdown", "reason": "complete"})
            except OSError:
                pass
        if self._selector is not None:
            try:
                self._selector.unregister(sock)
            except KeyError:
                pass
        try:
            sock.close()
        except OSError:
            pass

    def _send(self, sock: socket.socket, worker: _Worker, message: Dict) -> None:
        try:
            send_message(sock, message)
        except OSError:
            self._lose(sock)

    # --------------------------------------------------------------- assembly
    def _complete(self) -> bool:
        return self._done_cells >= self.plan.total

    def _assemble(self) -> CampaignResult:
        assert all(row is not None for row in self._rows)
        elapsed = time.perf_counter() - self._started
        if self._tracer is not None:
            self._tracer.complete(
                "fleet.campaign",
                category="fleet",
                track="controller",
                wall_start=max(0.0, self._tracer.now() - elapsed),
                wall_dur=elapsed,
                args={
                    "cells": self.plan.total,
                    "cached": len(self.plan.cached_rows),
                    "dispatched_units": self._dispatched_units,
                    "requeues": self._requeues,
                    "worker_losses": self._worker_losses,
                },
            )
        return CampaignResult(
            name=self.spec.name,
            spec=self.spec.to_dict(),
            rows=[row for row in self._rows if row is not None],
            workers=max(self._peak_workers, 1),
            wall_seconds=time.perf_counter() - self._started,
            cache_hits=self._cache.hits if self._cache is not None else 0,
            cache_misses=self._cache.misses if self._cache is not None else 0,
        )


def _error_row(payload: Dict[str, object], message: str) -> Dict[str, object]:
    """An error row shaped exactly like :func:`~repro.campaign.execute.execute_cell`'s."""
    row: Dict[str, object] = {
        "campaign": payload.get("campaign", ""),
        "cell": payload.get("cell", ""),
    }
    axes = payload.get("axes", {})
    if isinstance(axes, dict):
        row.update(axes)
    scenario = payload.get("scenario", {})
    row.update(
        seed=scenario.get("seed", "") if isinstance(scenario, dict) else "",
        cached=False,
        error=message,
        wall_seconds=0.0,
    )
    return row
