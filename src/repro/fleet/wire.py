"""Length-prefixed JSON framing for the fleet's TCP links.

Everything the controller and its workers exchange — registration, campaign
cells, result rows, heartbeats, shutdown — is a plain JSON object, which the
campaign layer already guarantees is all a cell needs
(:mod:`repro.campaign.spec` payloads are JSON work orders by construction).
A frame is a 4-byte big-endian length followed by the UTF-8 canonical JSON of
one message dict, so the stream needs no sentinels, escapes or read-ahead
heuristics; :class:`FrameDecoder` reassembles messages from arbitrary TCP
segment boundaries.

Every message carries a ``"type"`` key (one of :data:`MESSAGE_TYPES`).  The
framing layer is deliberately dumb about semantics: validation beyond "this
is a JSON object with a known type" belongs to the controller/worker state
machines.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, List

from ..exceptions import FleetError

__all__ = [
    "MAX_FRAME_BYTES",
    "MESSAGE_TYPES",
    "PROTOCOL_VERSION",
    "FrameDecoder",
    "encode_frame",
    "send_message",
]

#: Bump on any incompatible change to the message shapes below.
PROTOCOL_VERSION = 1

#: Frames above this are a protocol violation, not a big campaign: a cell
#: payload or result row is a few KiB; 64 MiB means a corrupt length prefix.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("!I")

#: worker -> controller: hello, row, heartbeat, bye;
#: controller -> worker: welcome, cell, shutdown.
MESSAGE_TYPES = ("hello", "welcome", "cell", "row", "heartbeat", "shutdown", "bye")


def encode_frame(message: Dict[str, object]) -> bytes:
    """One message dict as its wire frame (length prefix + canonical JSON)."""
    kind = message.get("type")
    if kind not in MESSAGE_TYPES:
        raise FleetError(f"unknown fleet message type {kind!r}")
    body = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FleetError(f"fleet frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Reassembles message dicts from a TCP byte stream.

    Feed it whatever ``recv`` returned; it buffers partial frames across
    calls and yields every complete message, in order.  A corrupt length
    prefix or non-JSON body raises :class:`~repro.exceptions.FleetError` —
    the link is then unrecoverable and the peer should be dropped.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, object]]:
        """Absorb ``data``; return the messages it completed."""
        self._buffer.extend(data)
        messages: List[Dict[str, object]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise FleetError(
                    f"frame length {length} exceeds {MAX_FRAME_BYTES} "
                    "(corrupt stream or non-fleet peer)"
                )
            if len(self._buffer) < _HEADER.size + length:
                return messages
            body = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            try:
                message = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FleetError(f"undecodable fleet frame: {exc}") from None
            if not isinstance(message, dict) or message.get("type") not in MESSAGE_TYPES:
                raise FleetError(f"malformed fleet message: {str(message)[:200]!r}")
            messages.append(message)

    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame (diagnostics only)."""
        return len(self._buffer)


def send_message(sock: socket.socket, message: Dict[str, object]) -> None:
    """Write one framed message to a (blocking) socket."""
    sock.sendall(encode_frame(message))
