"""The :class:`CryptoBackend` interface.

Every scenario, engine, adversary and campaign run ultimately bottoms out in
a handful of big-integer primitives: modular exponentiation, modular inverse,
simultaneous multi-exponentiation, fixed-base exponentiation and EC scalar
multiplication.  A backend is one interchangeable implementation of exactly
those primitives.  The contract is strict:

* **Bit-identical results.**  For every valid input, every backend returns
  the same integers (and raises :class:`~repro.exceptions.ParameterError`
  in the same situations) as the ``pure`` reference backend.  The golden
  equivalence suite (``tests/test_engine_equivalence.py``) pins this for all
  nine registry protocols, and ``tests/test_backends.py`` pins it on
  randomized primitive inputs.
* **No RNG, no state.**  Backends are pure functions over integers; the
  deterministic RNG streams never route through them, so switching backends
  cannot perturb a protocol transcript.

Call sites never hold a backend directly — they ask
:func:`repro.backends.registry.active_backend` at each operation, so the
per-run selection made by :class:`~repro.engine.executor.EngineConfig` /
``REPRO_CRYPTO_BACKEND`` applies to every cached table and code path.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..groups.elliptic import ECPoint

__all__ = ["CryptoBackend", "FixedBaseTable"]


class FixedBaseTable(abc.ABC):
    """A precomputed fixed-base exponentiation object (``pow(e)`` only)."""

    @abc.abstractmethod
    def pow(self, exponent: int) -> int:
        """``base ** exponent mod modulus`` for a non-negative exponent."""

    def __call__(self, exponent: int) -> int:
        return self.pow(exponent)


class CryptoBackend(abc.ABC):
    """One interchangeable implementation of the big-int hot-path primitives."""

    #: short registry identifier (``"pure"``, ``"native"``)
    name: str = "abstract"

    @abc.abstractmethod
    def modexp(self, base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent mod modulus``; negative exponents invert first.

        Raises :class:`~repro.exceptions.ParameterError` for non-positive
        moduli and for negative exponents of non-invertible bases — the same
        conditions as :func:`repro.mathutils.modular.modexp`.
        """

    @abc.abstractmethod
    def modinv(self, a: int, n: int) -> int:
        """Multiplicative inverse of ``a`` modulo ``n``.

        Raises :class:`~repro.exceptions.ParameterError` when no inverse
        exists or ``n <= 0`` (matching :func:`repro.mathutils.modular.modinv`).
        """

    @abc.abstractmethod
    def multi_exp(self, bases: Sequence[int], exponents: Sequence[int], modulus: int) -> int:
        """Simultaneous ``prod bases[i]**exponents[i] mod modulus``.

        Negative exponents invert the base first, exactly like
        :func:`repro.mathutils.modular.multi_exp`.
        """

    @abc.abstractmethod
    def fixed_base(self, base: int, modulus: int, max_bits: int) -> FixedBaseTable:
        """A reusable fixed-base object for ``base ** e mod modulus``.

        ``max_bits`` bounds the exponent widths worth precomputing for (wider
        exponents still work).  Callers cache the returned object per
        ``(group, backend)``; see :attr:`repro.groups.schnorr.SchnorrGroup.fixed_base_g`.
        """

    def ec_scalar_mul(self, point: "ECPoint", scalar: int) -> "ECPoint":
        """Scalar multiplication ``scalar * P`` (MSB-first double-and-add).

        The default walks the scalar bits over the point's own ``add`` /
        ``double`` — whose field inversions already route through the active
        backend — so only backends with a genuinely different ladder need to
        override this.
        """
        if scalar == 0 or point.is_infinity:
            return point.curve.infinity
        if scalar < 0:
            return self.ec_scalar_mul(point.negate(), -scalar)
        result = point.curve.infinity
        for bit in bin(scalar)[2:]:
            result = result.double()
            if bit == "1":
                result = result.add(point)
        return result

    def describe(self) -> str:
        """One-line summary for reports and bench artifacts."""
        return self.name
