"""Name-based crypto-backend registry and per-run selection.

Mirrors :mod:`repro.core.registry`: backends register a factory under a
canonical name (plus aliases), lookups canonicalise through
:func:`resolve_backend`, and unknown names fail with a "did you mean"
suggestion.  On top of the registry sit the *selection* primitives:

>>> from repro.backends import active_backend, use_backend
>>> active_backend().name
'pure'
>>> with use_backend("native"):          # doctest: +SKIP
...     run_protocol()                   # all big-int hot paths now use GMP

Selection surface, outermost first:

* :func:`use_backend` — a re-entrant context manager; the engine executor
  wraps every kernel run in it, so ``EngineConfig(crypto_backend=...)`` and
  the campaign's ``backend`` field scope the choice to exactly one run;
* :func:`set_default_backend` — process-wide default (the CLIs'
  ``--backend`` flag);
* the ``REPRO_CRYPTO_BACKEND`` environment variable — the initial default,
  read once on first use;
* ``pure`` — the fallback when none of the above is set.

Requesting ``"native"`` without gmpy2 installed is *not* an error: the
registry serves the ``pure`` backend instead (pass ``strict=True`` to get the
:class:`~repro.exceptions.ParameterError`).  This keeps campaign specs and
engine configs portable across machines; the actually-used backend name is
what reports and bench artifacts record.
"""

from __future__ import annotations

import difflib
import os
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import ParameterError
from .base import CryptoBackend

__all__ = [
    "register_backend",
    "create_backend",
    "available_backends",
    "resolve_backend",
    "native_available",
    "active_backend",
    "use_backend",
    "set_default_backend",
    "BACKEND_ENV_VAR",
]

#: environment variable consulted for the initial process-wide default
BACKEND_ENV_VAR = "REPRO_CRYPTO_BACKEND"

#: canonical name -> factory() -> CryptoBackend
_FACTORIES: Dict[str, Callable[[], CryptoBackend]] = {}
#: alias -> canonical name
_ALIASES: Dict[str, str] = {}
#: canonical name -> instantiated backend (backends are stateless; share them)
_INSTANCES: Dict[str, CryptoBackend] = {}
#: innermost-first stack of use_backend() overrides
_STACK: List[CryptoBackend] = []
#: process-wide default (None until first resolved from the env var)
_DEFAULT: Optional[CryptoBackend] = None


def register_backend(
    name: str,
    factory: Optional[Callable[[], CryptoBackend]] = None,
    *,
    aliases: Sequence[str] = (),
    replace: bool = False,
):
    """Register a backend factory under ``name`` (plus ``aliases``).

    ``factory`` is any zero-argument callable returning a
    :class:`~repro.backends.base.CryptoBackend`; backend classes with a
    no-argument constructor can be registered directly.  Called without a
    factory, returns a decorator (the :func:`repro.core.registry.register_protocol`
    idiom).
    """
    if factory is None:
        def decorator(cls: Callable[[], CryptoBackend]):
            register_backend(name, cls, aliases=aliases, replace=replace)
            return cls

        return decorator
    if not name:
        raise ParameterError("backend name cannot be empty")
    if not replace and (name in _FACTORIES or name in _ALIASES):
        raise ParameterError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)
    for alias in aliases:
        if not replace and (alias in _FACTORIES or alias in _ALIASES):
            raise ParameterError(f"backend alias {alias!r} is already registered")
        _ALIASES[alias] = name
    return factory


def _register_builtins() -> None:
    """Register pure/native once (import-time; kept tiny and cycle-free)."""
    if "pure" in _FACTORIES:
        return
    from .native import NativeBackend
    from .pure import PureBackend

    register_backend("pure", PureBackend, aliases=("python", "reference"))
    register_backend("native", NativeBackend, aliases=("gmpy2", "gmp"))


def resolve_backend(name: str) -> str:
    """Canonicalise a backend name or alias, raising on unknown names."""
    _register_builtins()
    canonical = _ALIASES.get(name, name)
    if canonical not in _FACTORIES:
        candidates = available_backends(include_aliases=True)
        close = difflib.get_close_matches(name, candidates, n=1, cutoff=0.5)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        raise ParameterError(
            f"unknown crypto backend {name!r}{hint}; "
            f"available: {', '.join(available_backends())}"
        )
    return canonical


def available_backends(*, include_aliases: bool = False) -> List[str]:
    """Sorted registered backend names (``native`` listed even without gmpy2)."""
    _register_builtins()
    names = set(_FACTORIES)
    if include_aliases:
        names |= set(_ALIASES)
    return sorted(names)


def native_available() -> bool:
    """Whether the ``native`` backend's gmpy2 dependency is importable."""
    from .native import HAVE_GMPY2

    return HAVE_GMPY2


def create_backend(name: str, *, strict: bool = False) -> CryptoBackend:
    """Instantiate (or return the shared instance of) a backend by name.

    An unavailable-but-registered backend — ``"native"`` without gmpy2 —
    falls back to ``pure`` unless ``strict=True``; the returned instance's
    ``.name`` always tells the truth about what will actually run.
    """
    canonical = resolve_backend(name)
    instance = _INSTANCES.get(canonical)
    if instance is None:
        try:
            instance = _FACTORIES[canonical]()
        except ParameterError:
            if strict or canonical == "pure":
                raise
            instance = create_backend("pure")
        _INSTANCES[canonical] = instance
    return instance


# --------------------------------------------------------------- selection
def _default_backend() -> CryptoBackend:
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = create_backend(os.environ.get(BACKEND_ENV_VAR, "") or "pure")
    return _DEFAULT


def set_default_backend(name: Optional[str]) -> CryptoBackend:
    """Set the process-wide default backend (``None`` re-reads the env var)."""
    global _DEFAULT
    _DEFAULT = None if name is None else create_backend(name)
    return _default_backend()


def active_backend() -> CryptoBackend:
    """The backend every big-int hot path must route through *right now*."""
    if _STACK:
        return _STACK[-1]
    return _default_backend()


@contextmanager
def use_backend(name: Optional[str]):
    """Scope the active backend to a ``with`` block (re-entrant).

    ``None`` is a no-op pass-through so callers can write
    ``with use_backend(config.crypto_backend):`` unconditionally.
    """
    if name is None:
        yield active_backend()
        return
    backend = create_backend(name)
    _STACK.append(backend)
    try:
        yield backend
    finally:
        _STACK.pop()
