"""The ``native`` backend: GMP-accelerated primitives via gmpy2.

gmpy2's ``powmod`` / ``invert`` run GMP's assembly big-int kernels, which are
roughly an order of magnitude faster than CPython's ``pow`` at 1024-bit
operand sizes.  The results are mathematically identical — both compute the
canonical least non-negative residue — so this backend is bit-identical to
``pure`` by construction; the equivalence tests assert it anyway.

gmpy2 is an *optional* dependency.  When it is not importable,
:data:`HAVE_GMPY2` is ``False`` and the registry silently serves the ``pure``
backend for the ``"native"`` name (see
:func:`repro.backends.registry.create_backend`), so specs and campaign grids
written on a gmpy2-equipped machine run unchanged — just slower — anywhere.
"""

from __future__ import annotations

import math
from typing import Sequence

from .. import telemetry
from ..exceptions import ParameterError
from .base import CryptoBackend, FixedBaseTable

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2
    from gmpy2 import mpz, powmod

    HAVE_GMPY2 = True
except ImportError:  # pragma: no cover - the common container case
    gmpy2 = None
    mpz = int

    def powmod(base, exponent, modulus):  # type: ignore[misc]
        raise ParameterError("gmpy2 is not installed; the native backend is unavailable")

    HAVE_GMPY2 = False

__all__ = ["NativeBackend", "HAVE_GMPY2"]


class _NativeFixedBase(FixedBaseTable):
    """Fixed-base wrapper over ``powmod``.

    GMP's sliding-window exponentiation already outruns the pure backend's
    Python-level precomputed table, so no table is built — the object only
    mirrors :class:`~repro.mathutils.modular.FixedBaseExp`'s interface and
    error contract (non-negative exponents only).
    """

    __slots__ = ("base", "modulus", "max_bits")

    def __init__(self, base: int, modulus: int, max_bits: int) -> None:
        if modulus <= 0:
            raise ParameterError(f"modulus must be positive, got {modulus}")
        if max_bits <= 0:
            raise ParameterError(f"max_bits must be positive, got {max_bits}")
        self.base = mpz(base % modulus)
        self.modulus = mpz(modulus)
        self.max_bits = max_bits

    def pow(self, exponent: int) -> int:
        if exponent < 0:
            raise ParameterError("FixedBaseExp handles non-negative exponents only")
        return int(powmod(self.base, exponent, self.modulus))


class NativeBackend(CryptoBackend):
    """gmpy2/GMP implementation of the big-int primitives."""

    name = "native"

    def __init__(self) -> None:
        if not HAVE_GMPY2:
            raise ParameterError(
                "gmpy2 is not installed; install it (pip install gmpy2) or use "
                "the 'pure' backend"
            )

    def modexp(self, base: int, exponent: int, modulus: int) -> int:
        telemetry.count("crypto.modexp")
        if modulus <= 0:
            raise ParameterError(f"modulus must be positive, got {modulus}")
        if exponent < 0:
            # Route through modinv so a non-invertible base raises the same
            # ParameterError (and message shape) as the pure backend.
            base = self.modinv(base, modulus)
            exponent = -exponent
        return int(powmod(base, exponent, modulus))

    def modinv(self, a: int, n: int) -> int:
        if n <= 0:
            raise ParameterError(f"modulus must be positive, got {n}")
        a %= n
        try:
            return int(gmpy2.invert(a, n))
        except ZeroDivisionError:
            raise ParameterError(
                f"{a} has no inverse modulo {n} (gcd={math.gcd(a, n)})"
            ) from None

    def multi_exp(self, bases: Sequence[int], exponents: Sequence[int], modulus: int) -> int:
        telemetry.count("crypto.multi_exp")
        if modulus <= 0:
            raise ParameterError(f"modulus must be positive, got {modulus}")
        if len(bases) != len(exponents):
            raise ParameterError("bases and exponents must have the same length")
        # GMP's powmod is fast enough that a plain product of per-pair
        # exponentiations beats a Python-level interleaved Straus chain.
        mod = mpz(modulus)
        acc = mpz(1) % mod
        for base, exponent in zip(bases, exponents):
            if exponent == 0:
                continue
            if exponent < 0:
                base = self.modinv(base, modulus)
                exponent = -exponent
            acc = (acc * powmod(base, exponent, mod)) % mod
        return int(acc)

    def fixed_base(self, base: int, modulus: int, max_bits: int) -> _NativeFixedBase:
        return _NativeFixedBase(base, modulus, max_bits)
