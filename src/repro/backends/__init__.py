"""Pluggable crypto backends for the big-int hot paths.

See :mod:`repro.backends.base` for the primitive contract and
:mod:`repro.backends.registry` for registration and per-run selection.
"""

from .base import CryptoBackend, FixedBaseTable
from .native import HAVE_GMPY2, NativeBackend
from .pure import PureBackend
from .registry import (
    BACKEND_ENV_VAR,
    active_backend,
    available_backends,
    create_backend,
    native_available,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)

__all__ = [
    "CryptoBackend",
    "FixedBaseTable",
    "PureBackend",
    "NativeBackend",
    "HAVE_GMPY2",
    "BACKEND_ENV_VAR",
    "active_backend",
    "available_backends",
    "create_backend",
    "native_available",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]
