"""The ``pure`` reference backend: today's CPython code paths, extracted.

This backend *is* the semantics contract — it delegates straight to the
:mod:`repro.mathutils.modular` primitives (builtin three-argument ``pow``,
iterative extended gcd, windowed :class:`~repro.mathutils.modular.FixedBaseExp`,
Straus :func:`~repro.mathutils.modular.multi_exp`) that the library used
before the backend layer existed, so routing through it changes nothing.
Every other backend is pinned bit-identical against it.
"""

from __future__ import annotations

from typing import Sequence

from .. import telemetry
from ..mathutils.modular import FixedBaseExp, modexp, modinv, multi_exp
from .base import CryptoBackend, FixedBaseTable

__all__ = ["PureBackend"]

# FixedBaseExp predates the backend layer and already satisfies the
# FixedBaseTable contract (pow + __call__); adopt it instead of wrapping.
FixedBaseTable.register(FixedBaseExp)


class PureBackend(CryptoBackend):
    """Reference implementation over CPython arbitrary-precision integers."""

    name = "pure"

    def modexp(self, base: int, exponent: int, modulus: int) -> int:
        telemetry.count("crypto.modexp")
        return modexp(base, exponent, modulus)

    def modinv(self, a: int, n: int) -> int:
        return modinv(a, n)

    def multi_exp(self, bases: Sequence[int], exponents: Sequence[int], modulus: int) -> int:
        telemetry.count("crypto.multi_exp")
        return multi_exp(bases, exponents, modulus)

    def fixed_base(self, base: int, modulus: int, max_bits: int) -> FixedBaseExp:
        return FixedBaseExp(base, modulus, max_bits)
