"""Opt-in cProfile hook shared by the ``repro.sim`` / ``repro.campaign`` CLIs.

``--profile`` wraps just the run phase (spec parsing and report printing stay
outside) and prints the top cumulative-time entries to stderr, so piped
CSV/JSON output is unaffected.  This is how the hotspot tables in the
benchmarks documentation were produced; see ``benchmarks/README.md``.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO

from . import telemetry

__all__ = ["maybe_profile", "observability"]


@contextmanager
def maybe_profile(
    enabled: bool, *, top: int = 25, stream: Optional[TextIO] = None
) -> Iterator[None]:
    """Profile the enclosed block and dump the ``top`` cumulative hotspots.

    A no-op when ``enabled`` is false, so call sites can wrap their run phase
    unconditionally.
    """
    if not enabled:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        out = stream if stream is not None else sys.stderr
        stats = pstats.Stats(profiler, stream=out)
        stats.strip_dirs().sort_stats("cumulative")
        print(f"--- profile: top {top} by cumulative time ---", file=out)
        stats.print_stats(top)


@contextmanager
def observability(
    *,
    profile: bool = False,
    trace: Optional[str] = None,
    metrics: bool = False,
    process: str = "main",
    top: int = 25,
    stream: Optional[TextIO] = None,
) -> Iterator[telemetry.TelemetrySession]:
    """The CLIs' combined run-phase wrapper: cProfile + tracing + metrics.

    ``trace`` is an export path (``*.jsonl`` → span JSONL, anything else →
    Chrome trace JSON); ``None`` leaves tracing off.  On exit the trace is
    written and the metrics summary table printed to ``stream`` (stderr by
    default, like ``--profile``), keeping piped CSV/JSON output clean.  All
    three features off makes this a pure no-op.
    """
    with maybe_profile(profile, top=top, stream=stream):
        with telemetry.telemetry_session(
            trace=trace is not None, metrics=metrics, process=process
        ) as session:
            yield session
    out = stream if stream is not None else sys.stderr
    if session.tracer is not None and trace is not None:
        session.tracer.export(trace)
        print(
            f"--- trace: {len(session.tracer.spans)} spans "
            f"({session.tracer.dropped} dropped) -> {trace} ---",
            file=out,
        )
    if session.metrics is not None:
        print(telemetry.render_metrics_table(session.metrics.snapshot()), file=out)
