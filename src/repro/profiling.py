"""Opt-in cProfile hook shared by the ``repro.sim`` / ``repro.campaign`` CLIs.

``--profile`` wraps just the run phase (spec parsing and report printing stay
outside) and prints the top cumulative-time entries to stderr, so piped
CSV/JSON output is unaffected.  This is how the hotspot tables in the
benchmarks documentation were produced; see ``benchmarks/README.md``.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO

__all__ = ["maybe_profile"]


@contextmanager
def maybe_profile(
    enabled: bool, *, top: int = 25, stream: Optional[TextIO] = None
) -> Iterator[None]:
    """Profile the enclosed block and dump the ``top`` cumulative hotspots.

    A no-op when ``enabled`` is false, so call sites can wrap their run phase
    unconditionally.
    """
    if not enabled:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        out = stream if stream is not None else sys.stderr
        stats = pstats.Stats(profiler, stream=out)
        stats.strip_dirs().sort_stats("cumulative")
        print(f"--- profile: top {top} by cumulative time ---", file=out)
        stats.print_stats(top)
