"""Plain-text table rendering for benchmark and example output.

No plotting library is assumed (the environment is offline); every table and
figure the benchmarks regenerate is printed as aligned ASCII plus CSV so the
numbers can be diffed against the paper and post-processed elsewhere.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_value", "to_csv"]


def format_value(value: object, precision: int = 4) -> str:
    """Render one cell: floats get fixed precision, everything else ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and abs(value) < 10 ** (-precision):
            return f"{value:.2e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render rows as an aligned ASCII table."""
    rendered_rows: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]], precision: int = 6) -> str:
    """Render rows as CSV text (no external dependency, no file I/O)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(format_value(cell, precision) for cell in row))
    return "\n".join(lines)
