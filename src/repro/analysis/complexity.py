"""Complexity analysis: the formulas behind Table 1 and Table 4.

The paper's complexity tables are symbolic in the group size ``n`` (and, for
the dynamic protocols, the number of merging users ``m``, merging groups
``k``, leaving users ``ld``, remaining odd-indexed users ``v``).  This module
encodes those formulas and evaluates them for concrete parameters, so the
benchmark harness can print the tables and the integration tests can check
that the *measured* operation counts of the executed protocols match the
formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from ..exceptions import ParameterError

__all__ = [
    "Table1Row",
    "TABLE1_METRICS",
    "table1_complexity",
    "Table4Row",
    "table4_complexity",
    "DynamicComplexityParams",
]


#: The metrics (rows) of the paper's Table 1, in presentation order.
TABLE1_METRICS = (
    "exponentiations",
    "messages_tx",
    "messages_rx",
    "certificates_tx",
    "certificates_rx",
    "certificate_verifications",
    "map_to_point",
    "signature_generations",
    "signature_verifications",
)


@dataclass(frozen=True)
class Table1Row:
    """Per-user complexity of one authenticated GKA protocol as a function of ``n``."""

    protocol: str
    exponentiations: Callable[[int], int]
    messages_tx: Callable[[int], int]
    messages_rx: Callable[[int], int]
    certificates_tx: Callable[[int], int]
    certificates_rx: Callable[[int], int]
    certificate_verifications: Callable[[int], int]
    map_to_point: Callable[[int], int]
    signature_generations: Callable[[int], int]
    signature_verifications: Callable[[int], int]
    symbolic: Mapping[str, str] = field(default_factory=dict)

    def evaluate(self, n: int) -> Dict[str, int]:
        """All metrics for a concrete group size ``n``."""
        if n < 2:
            raise ParameterError("group size must be at least 2")
        return {
            "exponentiations": self.exponentiations(n),
            "messages_tx": self.messages_tx(n),
            "messages_rx": self.messages_rx(n),
            "certificates_tx": self.certificates_tx(n),
            "certificates_rx": self.certificates_rx(n),
            "certificate_verifications": self.certificate_verifications(n),
            "map_to_point": self.map_to_point(n),
            "signature_generations": self.signature_generations(n),
            "signature_verifications": self.signature_verifications(n),
        }


def _const(value: int) -> Callable[[int], int]:
    return lambda n: value


_TABLE1_ROWS: Dict[str, Table1Row] = {
    "proposed": Table1Row(
        protocol="Our proposed scheme",
        exponentiations=_const(3),
        messages_tx=_const(2),
        messages_rx=lambda n: 2 * (n - 1),
        certificates_tx=_const(0),
        certificates_rx=_const(0),
        certificate_verifications=_const(0),
        map_to_point=_const(0),
        signature_generations=_const(1),
        signature_verifications=_const(1),
        symbolic={"exponentiations": "3", "messages_rx": "2(n-1)", "signature_verifications": "1"},
    ),
    "bd-sok": Table1Row(
        protocol="BD with SOK",
        exponentiations=_const(3),
        messages_tx=_const(2),
        messages_rx=lambda n: 2 * (n - 1),
        certificates_tx=_const(0),
        certificates_rx=_const(0),
        certificate_verifications=_const(0),
        map_to_point=lambda n: n - 1,
        signature_generations=_const(1),
        signature_verifications=lambda n: n - 1,
        symbolic={"map_to_point": "n-1", "signature_verifications": "n-1"},
    ),
    "bd-ecdsa": Table1Row(
        protocol="BD with ECDSA",
        exponentiations=_const(3),
        messages_tx=_const(2),
        messages_rx=lambda n: 2 * (n - 1),
        certificates_tx=_const(1),
        certificates_rx=lambda n: n - 1,
        certificate_verifications=lambda n: n - 1,
        map_to_point=_const(0),
        signature_generations=_const(1),
        signature_verifications=lambda n: n - 1,
        symbolic={"certificate_verifications": "n-1", "signature_verifications": "n-1"},
    ),
    "bd-dsa": Table1Row(
        protocol="BD with DSA",
        exponentiations=_const(3),
        messages_tx=_const(2),
        messages_rx=lambda n: 2 * (n - 1),
        certificates_tx=_const(1),
        certificates_rx=lambda n: n - 1,
        certificate_verifications=lambda n: n - 1,
        map_to_point=_const(0),
        signature_generations=_const(1),
        signature_verifications=lambda n: n - 1,
        symbolic={"certificate_verifications": "n-1", "signature_verifications": "n-1"},
    ),
    "ssn": Table1Row(
        protocol="SSN scheme",
        exponentiations=lambda n: 2 * n + 4,
        messages_tx=_const(2),
        messages_rx=lambda n: 2 * (n - 1),
        certificates_tx=_const(0),
        certificates_rx=_const(0),
        certificate_verifications=_const(0),
        map_to_point=_const(0),
        signature_generations=_const(0),
        signature_verifications=_const(0),
        symbolic={"exponentiations": "2n+4"},
    ),
}


def table1_complexity(n: Optional[int] = None) -> Dict[str, object]:
    """The paper's Table 1.

    With ``n`` given, each protocol maps to concrete per-user counts; without
    it, the symbolic row objects are returned so callers can print formulas.
    """
    if n is None:
        return dict(_TABLE1_ROWS)
    return {name: row.evaluate(n) for name, row in _TABLE1_ROWS.items()}


# ---------------------------------------------------------------------------
# Table 4: dynamic protocols
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DynamicComplexityParams:
    """The symbols of Table 4: current size ``n``, merging users ``m``,
    merging groups ``k``, leaving users ``ld`` and remaining odd-indexed
    users ``v``."""

    n: int = 100
    m: int = 20
    k: int = 2
    ld: int = 20
    v: Optional[int] = None

    def resolved_v(self, after_departure: int) -> int:
        """Default ``v``: half of the remaining members round up (odd indices 1,3,5,...)."""
        if self.v is not None:
            return self.v
        return (after_departure + 1) // 2


@dataclass(frozen=True)
class Table4Row:
    """One (protocol, event) entry of Table 4."""

    protocol: str
    event: str
    rounds: int
    messages: int
    exponentiations: str
    signature_generations: int
    signature_verifications: object

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for table rendering."""
        return {
            "protocol": self.protocol,
            "event": self.event,
            "rounds": self.rounds,
            "messages": self.messages,
            "exponentiations": self.exponentiations,
            "signature_generations": self.signature_generations,
            "signature_verifications": self.signature_verifications,
        }


def table4_complexity(params: DynamicComplexityParams = DynamicComplexityParams()) -> List[Table4Row]:
    """The paper's Table 4, evaluated for the given parameters.

    The BD rows follow the paper's transcription of the theoretical evaluation
    in Amir et al. / Kim–Perrig–Tsudik (re-running the 2-round protocol over
    the new member set); the proposed-scheme rows follow Section 8.
    """
    n, m, k, ld = params.n, params.m, params.k, params.ld
    v_leave = params.resolved_v(n - 1)
    v_partition = params.resolved_v(n - ld)
    rows = [
        # ---------------------------------------------------------------- BD
        Table4Row("bd-rerun", "join", 2, 2 * n + 2, "3 (all users)", 2, n + 3),
        Table4Row("bd-rerun", "leave", 2, 2 * n - 2, "3 (all users)", 2, n + 1),
        Table4Row("bd-rerun", "merge", 2, 2 * n + 2 * m, "3 (all users)", 2, n + m + 2),
        Table4Row("bd-rerun", "partition", 2, 2 * n - 2 * ld, "3 (all users)", 2, n - ld + 2),
        # ---------------------------------------------------------- proposed
        Table4Row("proposed", "join", 3, 5, "2 (U1 and U_{n+1} only)", 1, 1),
        Table4Row("proposed", "leave", 2, v_leave + n - 2, "3 odd / 2 even", 1, 1),
        Table4Row("proposed", "merge", 3, 6 * (k - 1), "4 (controllers only)", 1, 1),
        Table4Row("proposed", "partition", 2, v_partition + n - 2 * ld, "3 odd / 2 even", 1, 1),
    ]
    return rows
