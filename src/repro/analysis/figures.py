"""Figure 1 rendering: the energy-vs-group-size curves as text.

The paper's Figure 1 plots total per-node energy (log scale) against group
size for ten protocol/transceiver combinations.  This module turns the
closed-form series from :func:`repro.analysis.energy_model.figure1_series`
into (a) a CSV block and (b) a crude ASCII log-scale chart, so the benchmark
output is self-contained and diffable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

from .energy_model import FIGURE1_GROUP_SIZES, figure1_series
from .tables import to_csv

__all__ = ["figure1_csv", "figure1_ascii", "figure1_report"]

#: Mapping from our curve keys to the paper's curve letters in Figure 1.
PAPER_CURVE_LETTERS: Dict[str, str] = {
    "bd-ecdsa/100kbps": "a",
    "bd-ecdsa/wlan": "b",
    "bd-dsa/100kbps": "c",
    "bd-dsa/wlan": "d",
    "bd-sok/100kbps": "e",
    "bd-sok/wlan": "f",
    "ssn/100kbps": "g",
    "ssn/wlan": "h",
    "proposed/100kbps": "i",
    "proposed/wlan": "j",
}


def figure1_csv(group_sizes: Sequence[int] = FIGURE1_GROUP_SIZES) -> str:
    """CSV with one row per curve and one column per group size (Joules)."""
    series = figure1_series(group_sizes)
    headers = ["curve", "paper_label"] + [f"n={n}" for n in group_sizes]
    rows = []
    for key in sorted(series, key=lambda k: PAPER_CURVE_LETTERS.get(k, "z")):
        rows.append([key, PAPER_CURVE_LETTERS.get(key, "?")] + list(series[key]))
    return to_csv(headers, rows)


def figure1_ascii(
    group_sizes: Sequence[int] = FIGURE1_GROUP_SIZES,
    width: int = 60,
) -> str:
    """A log-scale ASCII rendition of Figure 1 (one row per curve per n)."""
    series = figure1_series(group_sizes)
    all_values = [v for values in series.values() for v in values]
    lo, hi = math.log10(min(all_values)), math.log10(max(all_values))
    span = max(hi - lo, 1e-9)
    lines: List[str] = [
        "Figure 1 — per-node energy (J), log scale "
        f"[{10 ** lo:.3g} J ... {10 ** hi:.3g} J]"
    ]
    for index, n in enumerate(group_sizes):
        lines.append(f"-- n = {n} --")
        ranked = sorted(series.items(), key=lambda item: item[1][index])
        for key, values in ranked:
            value = values[index]
            offset = int((math.log10(value) - lo) / span * (width - 1))
            letter = PAPER_CURVE_LETTERS.get(key, "?")
            lines.append(f"  ({letter}) {key:22s} {' ' * offset}* {value:10.4f} J")
    return "\n".join(lines)


def figure1_report(group_sizes: Sequence[int] = FIGURE1_GROUP_SIZES) -> str:
    """CSV plus ASCII chart, ready to print from the benchmark harness."""
    return figure1_csv(group_sizes) + "\n\n" + figure1_ascii(group_sizes)
