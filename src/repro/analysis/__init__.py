"""Complexity and energy analysis: the closed-form models behind Tables 1, 4,
5 and Figure 1, plus plain-text table/figure rendering."""

from .complexity import (
    DynamicComplexityParams,
    TABLE1_METRICS,
    Table1Row,
    Table4Row,
    table1_complexity,
    table4_complexity,
)
from .energy_model import (
    FIGURE1_GROUP_SIZES,
    INITIAL_PROTOCOLS,
    MESSAGE_SIZES_BITS,
    PAPER_TABLE5_J,
    dynamic_energy_table,
    figure1_series,
    initial_gka_energy_j,
)
from .figures import figure1_ascii, figure1_csv, figure1_report
from .tables import format_table, format_value, to_csv

__all__ = [
    "DynamicComplexityParams",
    "TABLE1_METRICS",
    "Table1Row",
    "Table4Row",
    "table1_complexity",
    "table4_complexity",
    "FIGURE1_GROUP_SIZES",
    "INITIAL_PROTOCOLS",
    "MESSAGE_SIZES_BITS",
    "PAPER_TABLE5_J",
    "dynamic_energy_table",
    "figure1_series",
    "initial_gka_energy_j",
    "figure1_ascii",
    "figure1_csv",
    "figure1_report",
    "format_table",
    "format_value",
    "to_csv",
]
