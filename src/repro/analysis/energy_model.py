"""Closed-form energy model: Figure 1 and Table 5.

The paper's energy results are analytical: per-node energy = (operation counts
from the complexity analysis) x (per-operation costs of Table 2) + (message
bits) x (per-bit costs of Table 3).  This module implements exactly that
model, using the paper's nominal message sizes, so the benchmark harness can
regenerate Figure 1's ten curves and Table 5's per-role figures and compare
them against the values printed in the paper.

The *simulation* path (running the real protocols over the simulated network
and pricing the recorded costs) lives in the protocols themselves; it differs
from the closed form only in encoding overheads (length prefixes, MAC tags on
the symmetric envelopes) and is used as a cross-check in the benchmarks and
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import EnergyModelError
from ..energy.opcosts import OperationCostTable
from ..energy.transceiver import RADIO_100KBPS, Transceiver, WLAN_SPECTRUM24
from .complexity import DynamicComplexityParams, table1_complexity

__all__ = [
    "MESSAGE_SIZES_BITS",
    "INITIAL_PROTOCOLS",
    "initial_gka_energy_j",
    "figure1_series",
    "dynamic_energy_table",
    "PAPER_TABLE5_J",
    "FIGURE1_GROUP_SIZES",
]

#: Nominal wire sizes (bits) used by the closed-form model, following the
#: paper: 32-bit identities, 1024-bit group elements (|p| = 1024), 1024-bit
#: GQ modulus values, signature and certificate sizes from Table 3.
MESSAGE_SIZES_BITS: Dict[str, int] = {
    "identity": 32,
    "group_element": 1024,       # z_i, X_i (elements of Z_p^*)
    "gq_modulus_element": 1024,  # t_i, s_i (elements of Z_n^*)
    "gq_signature": 1184,
    "dsa_signature": 320,
    "ecdsa_signature": 320,
    "sok_signature": 388,
    "dsa_certificate": 8 * 263,
    "ecdsa_certificate": 8 * 86,
    "symmetric_key_blob": 1024,  # E_K(K* || U) charged at the size of K*
}

#: The five initial-GKA protocols of Figure 1, keyed as in the complexity table.
INITIAL_PROTOCOLS = ("proposed", "bd-sok", "bd-ecdsa", "bd-dsa", "ssn")

#: The group sizes on Figure 1's x axis.
FIGURE1_GROUP_SIZES = (10, 50, 100, 500)

#: Table 5 of the paper (Joules), used as the reference column in the
#: benchmark output.  Keys: (protocol, event, role).
PAPER_TABLE5_J: Dict[Tuple[str, str, str], float] = {
    ("bd-rerun", "join", "incumbent"): 1.234,
    ("bd-rerun", "join", "newcomer"): 2.31,
    ("proposed", "join", "controller"): 0.039,
    ("proposed", "join", "last"): 0.049,
    ("proposed", "join", "newcomer"): 0.057,
    ("proposed", "join", "others"): 0.00134,
    ("bd-rerun", "leave", "remaining"): 1.179,
    ("proposed", "leave", "odd"): 0.160,
    ("proposed", "leave", "even"): 0.150,
    ("bd-rerun", "merge", "group_a"): 1.660,
    ("bd-rerun", "merge", "group_b"): 2.532,
    ("proposed", "merge", "controller_a"): 0.079,
    ("proposed", "merge", "controller_b"): 0.079,
    ("proposed", "merge", "others"): 0.000986,
    ("bd-rerun", "partition", "remaining"): 0.942,
    ("proposed", "partition", "odd"): 0.142,
    ("proposed", "partition", "even"): 0.132,
}

_S = MESSAGE_SIZES_BITS


def _round1_round2_bits(protocol: str) -> Tuple[int, int]:
    """Per-user Round 1 / Round 2 transmitted bits for the initial protocols."""
    ident, elem, modn = _S["identity"], _S["group_element"], _S["gq_modulus_element"]
    if protocol == "proposed":
        return ident + elem + modn, ident + elem + modn
    if protocol == "bd-sok":
        return ident + elem, ident + elem + _S["sok_signature"]
    if protocol == "bd-ecdsa":
        return ident + elem + _S["ecdsa_certificate"], ident + elem + _S["ecdsa_signature"]
    if protocol == "bd-dsa":
        return ident + elem + _S["dsa_certificate"], ident + elem + _S["dsa_signature"]
    if protocol == "ssn":
        return ident + elem + 2 * modn, ident + elem
    raise EnergyModelError(f"unknown protocol {protocol!r}")


def initial_gka_energy_j(
    protocol: str,
    n: int,
    transceiver: Transceiver,
    op_costs: Optional[OperationCostTable] = None,
) -> float:
    """Per-node energy (Joules) of one initial-GKA run — one point of Figure 1."""
    if n < 2:
        raise EnergyModelError("group size must be at least 2")
    costs = op_costs or OperationCostTable()
    if protocol not in INITIAL_PROTOCOLS:
        raise EnergyModelError(
            f"unknown protocol {protocol!r}; known: {', '.join(INITIAL_PROTOCOLS)}"
        )
    counts = table1_complexity(n)[protocol]

    computation_mj = counts["exponentiations"] * costs.energy_mj("modexp")
    computation_mj += counts["map_to_point"] * costs.energy_mj("map_to_point")
    if protocol == "proposed":
        computation_mj += costs.energy_mj("sign_gen_gq") + costs.energy_mj("sign_ver_gq")
    elif protocol == "bd-sok":
        computation_mj += costs.energy_mj("sign_gen_sok")
        computation_mj += counts["signature_verifications"] * costs.energy_mj("sign_ver_sok")
    elif protocol == "bd-ecdsa":
        computation_mj += costs.energy_mj("sign_gen_ecdsa")
        computation_mj += counts["signature_verifications"] * costs.energy_mj("sign_ver_ecdsa")
        computation_mj += counts["certificate_verifications"] * costs.energy_mj("sign_ver_ecdsa")
    elif protocol == "bd-dsa":
        computation_mj += costs.energy_mj("sign_gen_dsa")
        computation_mj += counts["signature_verifications"] * costs.energy_mj("sign_ver_dsa")
        computation_mj += counts["certificate_verifications"] * costs.energy_mj("sign_ver_dsa")
    # the SSN scheme has no signature operations: everything is in the exponent count

    round1_bits, round2_bits = _round1_round2_bits(protocol)
    tx_mj = transceiver.tx_energy_mj(round1_bits + round2_bits)
    rx_mj = transceiver.rx_energy_mj((n - 1) * (round1_bits + round2_bits))
    return (computation_mj + tx_mj + rx_mj) / 1000.0


def figure1_series(
    group_sizes: Sequence[int] = FIGURE1_GROUP_SIZES,
    op_costs: Optional[OperationCostTable] = None,
) -> Dict[str, List[float]]:
    """All ten curves of Figure 1 (5 protocols x 2 transceivers), in Joules.

    Keys are ``"<protocol>/<transceiver>"`` with transceiver ``"100kbps"`` or
    ``"wlan"``, matching the paper's curve labels (a)–(j).
    """
    curves: Dict[str, List[float]] = {}
    for protocol in INITIAL_PROTOCOLS:
        for label, transceiver in (("100kbps", RADIO_100KBPS), ("wlan", WLAN_SPECTRUM24)):
            curves[f"{protocol}/{label}"] = [
                initial_gka_energy_j(protocol, n, transceiver, op_costs) for n in group_sizes
            ]
    return curves


# ---------------------------------------------------------------------------
# Table 5: dynamic protocols, per role
# ---------------------------------------------------------------------------


def _sym(costs: OperationCostTable, count: int) -> float:
    return count * costs.energy_mj("symmetric")


def dynamic_energy_table(
    params: DynamicComplexityParams = DynamicComplexityParams(),
    transceiver: Transceiver = WLAN_SPECTRUM24,
    op_costs: Optional[OperationCostTable] = None,
) -> Dict[Tuple[str, str, str], float]:
    """Table 5: per-role energy (Joules) of the dynamic protocols.

    Default parameters are the paper's: ``n = 100`` current members, ``m = 20``
    merging users, ``ld = 20`` leaving users, StrongARM CPU and the Spectrum24
    WLAN card.

    The BD baseline rows follow the paper's accounting for a re-executed
    BD + ECDSA run: incumbents verify only certificates they have not seen
    before (the newcomer's), while joining/merging users verify everyone's.
    """
    costs = op_costs or OperationCostTable()
    n, m, ld = params.n, params.m, params.ld
    tx = transceiver.tx_energy_mj
    rx = transceiver.rx_energy_mj
    ident, elem, modn = _S["identity"], _S["group_element"], _S["gq_modulus_element"]
    gq_sig, ecdsa_sig, ecdsa_cert = _S["gq_signature"], _S["ecdsa_signature"], _S["ecdsa_certificate"]
    sym_blob = _S["symmetric_key_blob"]
    modexp = costs.energy_mj("modexp")
    gq_gen = costs.energy_mj("sign_gen_gq")
    gq_ver = costs.energy_mj("sign_ver_gq")
    ecdsa_gen = costs.energy_mj("sign_gen_ecdsa")
    ecdsa_ver = costs.energy_mj("sign_ver_ecdsa")

    table: Dict[Tuple[str, str, str], float] = {}

    # ------------------------------------------------------------------ join
    # BD re-run over n+1 members.
    bd_members = n + 1
    bd_r1 = ident + elem + ecdsa_cert
    bd_r2 = ident + elem + ecdsa_sig
    bd_comm = tx(bd_r1 + bd_r2) + rx((bd_members - 1) * (bd_r1 + bd_r2))
    bd_comp_incumbent = 3 * modexp + ecdsa_gen + (bd_members - 1) * ecdsa_ver + 1 * ecdsa_ver
    bd_comp_newcomer = 3 * modexp + ecdsa_gen + (bd_members - 1) * ecdsa_ver + (bd_members - 1) * ecdsa_ver
    table[("bd-rerun", "join", "incumbent")] = (bd_comp_incumbent + bd_comm) / 1000.0
    table[("bd-rerun", "join", "newcomer")] = (bd_comp_newcomer + bd_comm) / 1000.0

    # Proposed Join.
    m_new = ident + elem + gq_sig                  # m_{n+1}
    m_u1 = ident + sym_blob                        # m'_1 = U1 || E_K(K*)
    m_un = ident + sym_blob + elem + gq_sig        # m''_n
    m_un_unicast = ident + sym_blob                # m'''_n
    table[("proposed", "join", "controller")] = (
        gq_ver + 2 * modexp + _sym(costs, 2) + tx(m_u1) + rx(m_new + m_un)
    ) / 1000.0
    table[("proposed", "join", "last")] = (
        gq_ver + 1 * modexp + gq_gen + _sym(costs, 3)
        + tx(m_un + m_un_unicast) + rx(m_new + m_u1)
    ) / 1000.0
    table[("proposed", "join", "newcomer")] = (
        gq_gen + 2 * modexp + gq_ver + _sym(costs, 1) + tx(m_new) + rx(m_un + m_un_unicast)
    ) / 1000.0
    table[("proposed", "join", "others")] = (
        _sym(costs, 2) + rx(m_u1 + m_un)
    ) / 1000.0

    # ----------------------------------------------------------------- leave
    bd_members = n - 1
    bd_comm = tx(bd_r1 + bd_r2) + rx((bd_members - 1) * (bd_r1 + bd_r2))
    bd_comp = 3 * modexp + ecdsa_gen + (bd_members - 1) * ecdsa_ver
    table[("bd-rerun", "leave", "remaining")] = (bd_comp + bd_comm) / 1000.0

    remaining = n - 1
    v = params.resolved_v(remaining)
    leave_r1 = ident + elem + modn                 # U_j || z'_j || t'_j
    leave_r2 = ident + elem + modn                 # U_i || X'_i || s̄_i
    rx_odd = rx((v - 1) * leave_r1 + (remaining - 1) * leave_r2)
    rx_even = rx(v * leave_r1 + (remaining - 1) * leave_r2)
    table[("proposed", "leave", "odd")] = (
        3 * modexp + gq_gen + gq_ver + tx(leave_r1 + leave_r2) + rx_odd
    ) / 1000.0
    table[("proposed", "leave", "even")] = (
        2 * modexp + gq_gen + gq_ver + tx(leave_r2) + rx_even
    ) / 1000.0

    # ----------------------------------------------------------------- merge
    bd_members = n + m
    bd_comm = tx(bd_r1 + bd_r2) + rx((bd_members - 1) * (bd_r1 + bd_r2))
    comp_a = 3 * modexp + ecdsa_gen + (bd_members - 1) * ecdsa_ver + m * ecdsa_ver
    comp_b = 3 * modexp + ecdsa_gen + (bd_members - 1) * ecdsa_ver + n * ecdsa_ver
    table[("bd-rerun", "merge", "group_a")] = (comp_a + bd_comm) / 1000.0
    table[("bd-rerun", "merge", "group_b")] = (comp_b + bd_comm) / 1000.0

    merge_r1 = ident + 2 * elem + gq_sig           # m'_1 = U1 || z̃_1 || z_n || σ'_1
    merge_r2 = ident + 2 * sym_blob                # m''_1
    merge_r3 = ident + sym_blob                    # m'''_1
    controller = (
        4 * modexp + gq_gen + gq_ver + _sym(costs, 4)
        + tx(merge_r1 + merge_r2 + merge_r3) + rx(merge_r1 + merge_r2)
    ) / 1000.0
    table[("proposed", "merge", "controller_a")] = controller
    table[("proposed", "merge", "controller_b")] = controller
    table[("proposed", "merge", "others")] = (
        _sym(costs, 2) + rx(merge_r2 + merge_r3)
    ) / 1000.0

    # ------------------------------------------------------------- partition
    bd_members = n - ld
    bd_comm = tx(bd_r1 + bd_r2) + rx((bd_members - 1) * (bd_r1 + bd_r2))
    bd_comp = 3 * modexp + ecdsa_gen + (bd_members - 1) * ecdsa_ver
    table[("bd-rerun", "partition", "remaining")] = (bd_comp + bd_comm) / 1000.0

    remaining = n - ld
    v = params.resolved_v(remaining)
    rx_odd = rx((v - 1) * leave_r1 + (remaining - 1) * leave_r2)
    rx_even = rx(v * leave_r1 + (remaining - 1) * leave_r2)
    table[("proposed", "partition", "odd")] = (
        3 * modexp + gq_gen + gq_ver + tx(leave_r1 + leave_r2) + rx_odd
    ) / 1000.0
    table[("proposed", "partition", "even")] = (
        2 * modexp + gq_gen + gq_ver + tx(leave_r2) + rx_even
    ) / 1000.0

    return table
