"""2-D node positions stepped on the scenario clock.

A :class:`MobilityField` owns one :class:`~repro.mobility.models.NodeMotion`
per simulated node, all created from a single
:class:`~repro.mobility.models.MobilityModel` spec and one deterministic RNG.
Time is quantised into fixed ``tick`` steps so two passes over the same
scenario — the connectivity pass that *generates* the emergent churn events
and the protocol pass that *executes* them — see bit-identical positions:
``advance_to(t)`` rounds ``t`` to a whole number of ticks and replays exactly
that many model steps.

The field knows nothing about radios or protocols; it answers exactly two
questions — *where is node X* and *how far apart are X and Y* — for the link
model (:mod:`repro.mobility.radio`), the flooding medium
(:mod:`repro.mobility.relay`) and the connectivity monitor
(:mod:`repro.mobility.connectivity`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..exceptions import ParameterError
from ..mathutils.rand import DeterministicRNG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .models import MobilityModel

__all__ = ["Area", "MobilityField", "unit_draw"]

Vec = Tuple[float, float]


def unit_draw(rng: DeterministicRNG) -> float:
    """A uniform draw in ``[0, 1)`` on a 2^53 grid (double-precision exact)."""
    return rng.randbelow(1 << 53) / float(1 << 53)


@dataclass(frozen=True)
class Area:
    """The rectangular deployment region ``[0, width] x [0, height]`` (metres)."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ParameterError("area dimensions must be positive")

    def clamp(self, x: float, y: float) -> Vec:
        """The nearest point inside the area."""
        return (min(max(x, 0.0), self.width), min(max(y, 0.0), self.height))

    def random_point(self, rng: DeterministicRNG) -> Vec:
        """A uniform point inside the area."""
        return (unit_draw(rng) * self.width, unit_draw(rng) * self.height)

    def describe(self) -> str:
        """One-line summary used in reports."""
        return f"{self.width:g}x{self.height:g}m"


class MobilityField:
    """Positions for a fixed universe of named nodes, stepped in ticks.

    Parameters
    ----------
    names:
        The node names (identity names) inhabiting the field.  The universe is
        fixed at construction; querying an unknown name raises
        :class:`~repro.exceptions.ParameterError`.
    model:
        The :class:`~repro.mobility.models.MobilityModel` spec that builds one
        motion per node.
    area:
        The deployment region.
    tick:
        Length of one simulation step in seconds.
    rng:
        Deterministic randomness; every motion forks its own named child
        stream, so trajectories are independent of node iteration order.
    """

    def __init__(
        self,
        names: Sequence[str],
        model: "MobilityModel",
        area: Area,
        tick: float,
        rng: DeterministicRNG,
    ) -> None:
        if tick <= 0:
            raise ParameterError("tick must be positive")
        if not names:
            raise ParameterError("a mobility field needs at least one node")
        if len(set(names)) != len(names):
            raise ParameterError("duplicate node names in mobility field")
        self.area = area
        self.tick = tick
        self.model = model
        self._motions = model.build(list(names), area, rng)
        self._order = sorted(self._motions)
        self._step = 0

    # ------------------------------------------------------------------ time
    @property
    def time(self) -> float:
        """Current simulated time in seconds (a whole number of ticks)."""
        return self._step * self.tick

    @property
    def step_count(self) -> int:
        """Number of ticks stepped so far."""
        return self._step

    def advance_ticks(self, ticks: int) -> None:
        """Step every motion forward by ``ticks`` whole ticks."""
        if ticks < 0:
            raise ParameterError("cannot step a mobility field backwards")
        for _ in range(ticks):
            self._step += 1
            for name in self._order:
                self._motions[name].advance(self.tick, self._step)

    def advance_to(self, time: float) -> None:
        """Advance to ``time``, rounded to the nearest whole tick.

        Both the event-generation pass and the protocol pass quantise this
        way, so positions at an event's timestamp are identical in both.
        """
        target = int(round(time / self.tick))
        if target < self._step:
            raise ParameterError(
                f"cannot rewind mobility field from t={self.time:g}s to t={time:g}s"
            )
        self.advance_ticks(target - self._step)

    # ------------------------------------------------------------- positions
    def position(self, name: str) -> Vec:
        """Current position of one node."""
        try:
            return self._motions[name].position
        except KeyError:
            raise ParameterError(
                f"node {name!r} is not part of this mobility field "
                f"(universe: {len(self._motions)} nodes)"
            ) from None

    def distance(self, a: str, b: str) -> float:
        """Euclidean distance between two nodes."""
        ax, ay = self.position(a)
        bx, by = self.position(b)
        return math.hypot(ax - bx, ay - by)

    def names(self) -> List[str]:
        """All node names in the field (creation order)."""
        return list(self._motions)

    def __contains__(self, name: str) -> bool:
        return name in self._motions

    def snapshot(self) -> Dict[str, Vec]:
        """All current positions (used by tests and trace exports)."""
        return {name: motion.position for name, motion in self._motions.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MobilityField(n={len(self._motions)}, t={self.time:g}s, "
            f"area={self.area.describe()}, model={type(self.model).__name__})"
        )
