"""Multi-hop message delivery by bounded flooding.

:class:`MultiHopMedium` replaces the single-hop broadcast domain for mobile
networks: a transmission only reaches the nodes inside radio range, and nodes
that already hold the message re-broadcast it (bounded by ``max_hops``) until
every addressed member is covered.  Every physical transmission — origin and
relays alike — is charged through the existing
:class:`~repro.energy.accounting.CostRecorder` / transceiver accounting: the
transmitter pays ``wire_bits`` of TX and *every* attached node in its range
pays RX for the copy it overhears, whether or not it needed it.  Protocol
comparisons over this medium therefore reflect the true relaying cost of the
topology, not just the end-point cost.

Losses are drawn per directed link per copy from the
:class:`~repro.mobility.radio.RadioLink` model; a wave that leaves addressed
members uncovered (deep fades) triggers a retransmission wave in which every
current holder re-floods, mirroring the paper's "all members retransmit"
recovery.  Addressed members that are graph-unreachable (the component
containing the sender cannot reach them at any loss draw) raise
:class:`~repro.exceptions.NetworkError` immediately — that is a partition the
connectivity layer should have turned into a membership event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..exceptions import NetworkError
from ..mathutils.rand import DeterministicRNG
from ..network.medium import BroadcastMedium, DeliveryReceipt, LinkModel
from ..network.message import Message
from .field import MobilityField, unit_draw
from .graph import adjacency, component

__all__ = ["MultiHopMedium"]


class MultiHopMedium(BroadcastMedium):
    """A mobile ad-hoc radio domain with relaying.

    Parameters
    ----------
    field:
        Node positions (read at the field's current time for every send).
        ``None`` for static relaying topologies whose link model does not
        read positions (e.g. the tiered media in
        :mod:`repro.mobility.tiered`).
    link_model:
        The link model deciding reachability and loss — typically the
        distance-dependent :class:`~repro.mobility.radio.RadioLink`, or any
        other :class:`~repro.network.medium.LinkModel`.
    max_hops:
        Flood depth bound (TTL) per wave.
    max_retries:
        How many extra flood waves may recover from per-link losses before
        :class:`~repro.exceptions.NetworkError` is raised.
    rng:
        Deterministic randomness for per-link loss draws.
    """

    def __init__(
        self,
        field: Optional[MobilityField],
        link_model: LinkModel,
        *,
        max_hops: int = 8,
        max_retries: int = 10,
        rng: Optional[DeterministicRNG] = None,
    ) -> None:
        if max_hops < 1:
            raise NetworkError("max_hops must be at least 1")
        super().__init__(
            loss_probability=0.0, max_retries=max_retries, rng=rng, link_model=link_model
        )
        self.field = field
        self.max_hops = max_hops
        self._graph_cache: Optional[Tuple[int, Tuple[str, ...], Dict[str, List[str]]]] = None

    # ------------------------------------------------------------- topology
    def neighbours(self) -> Dict[str, List[str]]:
        """Adjacency among the *attached* nodes at the field's current time.

        Cached per (field step, attached-node set); rebuilding is O(n^2)
        distance checks and node sets change only on membership events.
        Without a field the topology only changes with membership.
        """
        names = tuple(sorted(name for name in (n.identity.name for n in self.nodes)))
        key = (self.field.step_count if self.field is not None else -1, names)
        if self._graph_cache is not None and self._graph_cache[:2] == key:
            return self._graph_cache[2]
        graph = adjacency(self.link_model, names)
        self._graph_cache = (key[0], key[1], graph)
        return graph

    def reachable_set(self, origin: str) -> Set[str]:
        """Names reachable from ``origin`` over any number of hops (loss-free)."""
        return component(self.neighbours(), origin)

    # ------------------------------------------------------------------ send
    def _copy_lost(self, sender: str, receiver: str) -> bool:
        loss = self.link_model.loss_probability(sender, receiver)
        if loss <= 0.0:
            return False
        return unit_draw(self._rng) < loss

    def send(self, message: Message) -> DeliveryReceipt:
        """Flood ``message`` through the network, charging every hop.

        One *wave* is a bounded BFS flood: the origin transmits, each newly
        covered node re-transmits on the next hop, up to ``max_hops`` hops or
        until all addressed nodes are covered.  If per-link losses leave
        addressed nodes uncovered, a retry wave starts in which every covered
        node re-floods.  Receipts record the physical transmission count,
        relay bits, and the deepest hop used.
        """
        origin = self.node(message.sender)
        origin_name = origin.identity.name
        bits = message.wire_bits
        graph = self.neighbours()

        addressed = {
            node.identity.name for node in self._nodes.values()
            if message.addressed_to(node.identity)
        }
        unreachable = addressed - self.reachable_set(origin_name)
        if unreachable:
            when = f" at t={self.field.time:g}s" if self.field is not None else ""
            raise NetworkError(
                f"message from {origin_name} cannot reach {sorted(unreachable)}: "
                f"no relay path{when} "
                "(the connectivity monitor should have partitioned them out)"
            )

        covered: Set[str] = {origin_name}
        transmissions = 0
        relay_bits = 0
        deepest_hop = 0
        waves = 0
        if not addressed:
            # Nobody (else) to reach: the origin still puts one copy on air.
            origin.recorder.record_tx(bits)
            receipt = DeliveryReceipt(
                message=message, attempts=1, delivered_to=[], hops=1,
                transmissions=1, relay_bits=0,
            )
            return self._finalize(message, receipt)
        while True:
            waves += 1
            # Wave 1 floods out from the origin; retry waves re-flood from
            # every node already holding the message.
            frontier = [origin_name] if waves == 1 else sorted(covered)
            hop = 0
            while frontier and hop < self.max_hops and not addressed <= covered:
                hop += 1
                next_frontier: List[str] = []
                for tx_name in frontier:
                    tx_node = self._nodes[tx_name]
                    tx_node.recorder.record_tx(bits)
                    transmissions += 1
                    if tx_name != origin_name:
                        relay_bits += bits
                    for rx_name in graph[tx_name]:
                        rx_node = self._nodes[rx_name]
                        # Everyone in range overhears (and pays for) the copy.
                        rx_node.recorder.record_rx(bits)
                        if rx_name in covered:
                            continue
                        if self._copy_lost(tx_name, rx_name):
                            continue
                        covered.add(rx_name)
                        next_frontier.append(rx_name)
                        if rx_name in addressed:
                            rx_node.deliver(message)
                deepest_hop = max(deepest_hop, hop)
                frontier = next_frontier
            if addressed <= covered:
                break
            if waves > self.max_retries:
                missing = sorted(addressed - covered)
                raise NetworkError(
                    f"message from {origin_name} still missing {missing} "
                    f"after {waves} flood waves (TTL {self.max_hops} hops per "
                    "wave); raise max_retries for lossy links or max_hops if "
                    "the topology is deeper than the TTL"
                )

        delivered = [
            node.identity for node in self._nodes.values() if node.identity.name in covered
            and node.identity.name in addressed
        ]
        receipt = DeliveryReceipt(
            message=message,
            attempts=waves,
            delivered_to=delivered,
            hops=max(deepest_hop, 1),
            transmissions=transmissions,
            relay_bits=relay_bits,
        )
        return self._finalize(message, receipt)

    def transmit(self, message: Message) -> DeliveryReceipt:
        """One *single* flood wave (engine latency mode): no retry waves.

        Unlike :meth:`send`, graph-unreachable or loss-starved addressed
        members do not raise — they simply stay out of ``delivered_to`` and
        the protocol machines recover through round timeouts and
        retransmission waves in virtual time.  The receipt records the flood
        depth at which each receiver first decoded its copy
        (``hop_by_receiver``) so latency models can charge relay
        re-serialization per hop actually travelled.
        """
        origin = self.node(message.sender)
        origin_name = origin.identity.name
        bits = message.wire_bits
        graph = self.neighbours()
        addressed = {
            node.identity.name for node in self._nodes.values()
            if message.addressed_to(node.identity)
        }
        covered: Set[str] = {origin_name}
        hop_of: Dict[str, int] = {}
        transmissions = 0
        relay_bits = 0
        deepest_hop = 0
        frontier = [origin_name]
        hop = 0
        while frontier and hop < self.max_hops and not addressed <= covered:
            hop += 1
            next_frontier: List[str] = []
            for tx_name in frontier:
                tx_node = self._nodes[tx_name]
                tx_node.recorder.record_tx(bits)
                transmissions += 1
                if tx_name != origin_name:
                    relay_bits += bits
                for rx_name in graph[tx_name]:
                    rx_node = self._nodes[rx_name]
                    rx_node.recorder.record_rx(bits)
                    if rx_name in covered:
                        continue
                    if self._copy_lost(tx_name, rx_name):
                        continue
                    covered.add(rx_name)
                    hop_of[rx_name] = hop
                    next_frontier.append(rx_name)
                    if rx_name in addressed:
                        rx_node.deliver(message)
            deepest_hop = max(deepest_hop, hop)
            frontier = next_frontier
        if transmissions == 0:
            # Nobody to reach (or nobody in range): the origin still puts one
            # copy on air, mirroring send()'s no-addressee behaviour.
            origin.recorder.record_tx(bits)
            transmissions = 1
        delivered = [
            node.identity for node in self._nodes.values()
            if node.identity.name in covered and node.identity.name in addressed
        ]
        receipt = DeliveryReceipt(
            message=message,
            attempts=1,
            delivered_to=delivered,
            hops=max(deepest_hop, 1),
            transmissions=transmissions,
            relay_bits=relay_bits,
            hop_by_receiver=hop_of,
        )
        return self._finalize(message, receipt)
