"""Shared reachability-graph helpers.

The flooding medium (:mod:`repro.mobility.relay`) and the connectivity
monitor (:mod:`repro.mobility.connectivity`) must agree *exactly* on what the
radio topology looks like — the monitor's partition decisions are promises
about what the medium can deliver.  Both therefore build adjacency and
connected components through these two functions instead of private copies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..network.medium import LinkModel

__all__ = ["adjacency", "component", "induced_component"]


def adjacency(link: LinkModel, names: Sequence[str]) -> Dict[str, List[str]]:
    """Symmetric single-hop adjacency lists among ``names`` under ``link``."""
    ordered = list(names)
    graph: Dict[str, List[str]] = {name: [] for name in ordered}
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            if link.reachable(a, b):
                graph[a].append(b)
                graph[b].append(a)
    return graph


def component(graph: Dict[str, List[str]], origin: str) -> Set[str]:
    """Names reachable from ``origin`` over any number of hops."""
    if origin not in graph:
        return set()
    seen = {origin}
    frontier = [origin]
    while frontier:
        nxt: List[str] = []
        for name in frontier:
            for peer in graph[name]:
                if peer not in seen:
                    seen.add(peer)
                    nxt.append(peer)
        frontier = nxt
    return seen


def induced_component(graph: Dict[str, List[str]], subset: Sequence[str], origin: str) -> Set[str]:
    """Names in ``subset`` reachable from ``origin`` through ``subset`` only.

    Equivalent to ``component(adjacency(link, subset), origin)`` but reuses
    an already-built full graph instead of re-measuring pairwise distances.
    """
    allowed = set(subset)
    if origin not in allowed or origin not in graph:
        return set()
    seen = {origin}
    frontier = [origin]
    while frontier:
        nxt: List[str] = []
        for name in frontier:
            for peer in graph[name]:
                if peer in allowed and peer not in seen:
                    seen.add(peer)
                    nxt.append(peer)
        frontier = nxt
    return seen
