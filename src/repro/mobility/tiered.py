"""Multi-tier relaying: bounded floods that cross tiers through gateways.

:class:`TieredMedium` is a :class:`~repro.mobility.relay.MultiHopMedium`
without a mobility field: topology comes from a static
:class:`~repro.network.tiers.TierMap` instead of node positions.  Nodes are
adjacent iff they share a tier, so a flood leaving the ground segment can
only continue through a *gateway* node homed in one tier and participating
in another — the multi-homed relay terminals of a tiered deployment.  Every
relayed copy is charged through the same energy accounting as any other
multi-hop transmission, and per-copy losses come from each link class's
knob, including stateful Gilbert–Elliott burst chains.
"""

from __future__ import annotations

from typing import Optional

from ..mathutils.rand import DeterministicRNG
from ..network.tiers import TieredLink, TierMap
from .relay import MultiHopMedium

__all__ = ["TieredMedium"]


class TieredMedium(MultiHopMedium):
    """A static multi-tier broadcast domain with gateway relaying.

    Parameters
    ----------
    tier_map:
        The resolved node-to-tier assignment (see
        :meth:`~repro.network.tiers.TierConfig.build_map`).  Exposed as
        ``self.tier_map`` so latency models
        (:class:`~repro.engine.latency.TieredLatency`) can bind to it.
    max_hops:
        Flood TTL per wave; a two-tier path needs at least 2 (member →
        gateway → other tier), three tiers at least 3.
    max_retries:
        Extra flood waves allowed to recover from per-link losses.
    rng:
        Deterministic randomness for loss draws (and, via the medium's
        ``links`` child, the burst chains).
    """

    def __init__(
        self,
        tier_map: TierMap,
        *,
        max_hops: int = 4,
        max_retries: int = 10,
        rng: Optional[DeterministicRNG] = None,
    ) -> None:
        super().__init__(
            None,
            TieredLink(tier_map),
            max_hops=max_hops,
            max_retries=max_retries,
            rng=rng,
        )
        self.tier_map = tier_map
