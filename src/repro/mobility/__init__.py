"""``repro.mobility`` — the mobility-aware MANET network layer.

The paper evaluates group key agreement in mobile ad-hoc networks, where
partitions and merges are caused by nodes *moving*, not by a scripted
schedule.  This subsystem supplies the missing physical layer:

* :mod:`repro.mobility.field` — 2-D node positions stepped deterministically
  on the scenario clock (:class:`MobilityField`, :class:`Area`);
* :mod:`repro.mobility.models` — pluggable mobility models:
  :class:`StaticGrid`, :class:`RandomWaypoint` and
  :class:`ReferencePointGroup` (RPGM);
* :mod:`repro.mobility.radio` — :class:`RadioLink`, a per-pair
  distance-dependent link model replacing the global loss knob;
* :mod:`repro.mobility.relay` — :class:`MultiHopMedium`, bounded-flood
  multi-hop delivery where every relay hop is charged real transmit/receive
  energy;
* :mod:`repro.mobility.connectivity` — :class:`ConnectivityMonitor`, which
  watches the reachability graph and emits partition/merge membership events
  as the topology changes;
* :mod:`repro.mobility.config` — :class:`MobilityConfig`, the frozen bundle
  a :class:`~repro.sim.scenarios.Scenario` embeds to opt in.

Quickstart::

    from repro import SystemSetup
    from repro.mobility import Area, MobilityConfig, RandomWaypoint
    from repro.sim import Scenario, ScenarioRunner, comparison_table

    setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
    scenario = Scenario(
        name="rwp-demo",
        initial_size=20,
        mobility=MobilityConfig(
            model=RandomWaypoint(min_speed=2.0, max_speed=8.0),
            area=Area(600.0, 600.0),
            tx_range=180.0,
            duration=120.0,
        ),
        seed=7,
    )
    runner = ScenarioRunner(setup)
    reports = runner.run_all(["proposed", "bd", "ssn"], scenario)
    print(comparison_table(reports))

Everything is seed-deterministic: the same master seed reproduces the same
trajectories, the same emergent event stream and the same per-node energy
ledgers, bit for bit.
"""

from .config import MobilityConfig
from .connectivity import ConnectivityMonitor
from .field import Area, MobilityField
from .models import (
    MobilityModel,
    NodeMotion,
    RandomWaypoint,
    ReferencePointGroup,
    StaticGrid,
)
from .radio import RadioLink
from .relay import MultiHopMedium
from .tiered import TieredMedium

__all__ = [
    "Area",
    "ConnectivityMonitor",
    "MobilityConfig",
    "MobilityField",
    "MobilityModel",
    "MultiHopMedium",
    "NodeMotion",
    "RadioLink",
    "RandomWaypoint",
    "ReferencePointGroup",
    "StaticGrid",
    "TieredMedium",
]
