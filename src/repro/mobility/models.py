"""Pluggable mobility models: static grid, random waypoint, RPGM.

A :class:`MobilityModel` is a small frozen *spec* (safe to embed in a frozen
:class:`~repro.sim.scenarios.Scenario`); calling :meth:`MobilityModel.build`
instantiates one stateful :class:`NodeMotion` per node.  Every motion draws
from its own named child RNG (``motion/<name>``), so a node's trajectory
depends only on the master seed and its name — never on how many other nodes
exist or in which order they are stepped.

Three models cover the MANET evaluation literature's staples:

* :class:`StaticGrid` — nodes pinned to a jittered grid (the degenerate,
  fully-predictable baseline; useful for line/star topology tests);
* :class:`RandomWaypoint` — the classic model: pick a uniform waypoint,
  travel at a uniform random speed, pause, repeat;
* :class:`ReferencePointGroup` — RPGM: squads of nodes follow a shared
  moving reference point (itself a random-waypoint walker) with bounded
  member jitter, producing the squad-level partitions and merges group-key
  papers care about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..exceptions import ParameterError
from ..mathutils.rand import DeterministicRNG
from .field import Area, Vec, unit_draw

__all__ = [
    "NodeMotion",
    "MobilityModel",
    "StaticGrid",
    "RandomWaypoint",
    "ReferencePointGroup",
]


class NodeMotion:
    """One node's stateful trajectory; ``position`` is the current location."""

    position: Vec

    def advance(self, dt: float, step: int) -> None:
        """Advance the motion by ``dt`` seconds (``step`` is the global tick index)."""
        raise NotImplementedError


class MobilityModel:
    """Base spec: builds one :class:`NodeMotion` per node name."""

    def build(
        self, names: Sequence[str], area: Area, rng: DeterministicRNG
    ) -> Dict[str, NodeMotion]:
        """Create all motions for ``names`` (deterministic in ``rng``)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line summary used in reports."""
        return type(self).__name__


# ---------------------------------------------------------------------------
# Static grid
# ---------------------------------------------------------------------------

class _StaticMotion(NodeMotion):
    def __init__(self, position: Vec) -> None:
        self.position = position

    def advance(self, dt: float, step: int) -> None:
        pass


@dataclass(frozen=True)
class StaticGrid(MobilityModel):
    """Nodes pinned to a regular grid filling the area, with optional jitter.

    Nodes are placed row-major in ``names`` order on a ``ceil(sqrt(n))``-wide
    grid of cell centres; ``jitter`` metres of uniform offset (per axis) are
    added at spawn so radio links are not artificially degenerate.
    """

    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise ParameterError("jitter cannot be negative")

    def build(
        self, names: Sequence[str], area: Area, rng: DeterministicRNG
    ) -> Dict[str, NodeMotion]:
        count = len(names)
        cols = max(1, math.ceil(math.sqrt(count)))
        rows = max(1, math.ceil(count / cols))
        motions: Dict[str, NodeMotion] = {}
        for index, name in enumerate(names):
            col, row = index % cols, index // cols
            x = (col + 0.5) * area.width / cols
            y = (row + 0.5) * area.height / rows
            if self.jitter > 0:
                node_rng = rng.fork(f"motion/{name}")
                x += (unit_draw(node_rng) * 2.0 - 1.0) * self.jitter
                y += (unit_draw(node_rng) * 2.0 - 1.0) * self.jitter
            motions[name] = _StaticMotion(area.clamp(x, y))
        return motions

    def describe(self) -> str:
        return f"static-grid(jitter={self.jitter:g}m)"


# ---------------------------------------------------------------------------
# Random waypoint
# ---------------------------------------------------------------------------

class _WaypointMotion(NodeMotion):
    """Travel to a uniform waypoint at a uniform speed, pause, repeat."""

    def __init__(
        self,
        area: Area,
        rng: DeterministicRNG,
        min_speed: float,
        max_speed: float,
        pause: float,
    ) -> None:
        self._area = area
        self._rng = rng
        self._min_speed = min_speed
        self._max_speed = max_speed
        self._pause = pause
        self.position = area.random_point(rng)
        self._pause_left = 0.0
        self._pick_leg()

    def _pick_leg(self) -> None:
        self._target = self._area.random_point(self._rng)
        self._speed = self._min_speed + unit_draw(self._rng) * (self._max_speed - self._min_speed)

    def advance(self, dt: float, step: int) -> None:
        remaining = dt
        while remaining > 1e-12:
            if self._pause_left > 0.0:
                waited = min(self._pause_left, remaining)
                self._pause_left -= waited
                remaining -= waited
                continue
            dx = self._target[0] - self.position[0]
            dy = self._target[1] - self.position[1]
            gap = math.hypot(dx, dy)
            travel = self._speed * remaining
            if travel >= gap:
                # Reached the waypoint inside this step: pause, then new leg.
                self.position = self._target
                remaining -= gap / self._speed if self._speed > 0 else remaining
                self._pause_left = self._pause
                self._pick_leg()
            else:
                frac = travel / gap
                self.position = (self.position[0] + dx * frac, self.position[1] + dy * frac)
                remaining = 0.0


@dataclass(frozen=True)
class RandomWaypoint(MobilityModel):
    """The classic random-waypoint model (uniform waypoint, speed, pause)."""

    min_speed: float = 1.0
    max_speed: float = 5.0
    pause: float = 0.0

    def __post_init__(self) -> None:
        if self.min_speed <= 0 or self.max_speed < self.min_speed:
            raise ParameterError("need 0 < min_speed <= max_speed")
        if self.pause < 0:
            raise ParameterError("pause cannot be negative")

    def build(
        self, names: Sequence[str], area: Area, rng: DeterministicRNG
    ) -> Dict[str, NodeMotion]:
        return {
            name: _WaypointMotion(
                area, rng.fork(f"motion/{name}"), self.min_speed, self.max_speed, self.pause
            )
            for name in names
        }

    def describe(self) -> str:
        return (
            f"random-waypoint(v={self.min_speed:g}-{self.max_speed:g}m/s, "
            f"pause={self.pause:g}s)"
        )


# ---------------------------------------------------------------------------
# Reference-point group mobility (RPGM)
# ---------------------------------------------------------------------------

class _GroupMemberMotion(NodeMotion):
    """A squad member riding a shared leader with bounded local jitter."""

    def __init__(
        self,
        area: Area,
        rng: DeterministicRNG,
        leader: "_SharedLeader",
        radius: float,
        local_speed: float,
    ) -> None:
        self._area = area
        self._rng = rng
        self._leader = leader
        self._radius = radius
        self._local_speed = local_speed
        angle = unit_draw(rng) * 2.0 * math.pi
        span = math.sqrt(unit_draw(rng)) * radius  # uniform over the disk
        self._offset = (span * math.cos(angle), span * math.sin(angle))
        self._sync()

    def _sync(self) -> None:
        lx, ly = self._leader.motion.position
        self.position = self._area.clamp(lx + self._offset[0], ly + self._offset[1])

    def advance(self, dt: float, step: int) -> None:
        self._leader.advance_shared(dt, step)
        if self._local_speed > 0.0:
            # Bounded random walk of the offset inside the squad disk.
            ox = self._offset[0] + (unit_draw(self._rng) * 2.0 - 1.0) * self._local_speed * dt
            oy = self._offset[1] + (unit_draw(self._rng) * 2.0 - 1.0) * self._local_speed * dt
            span = math.hypot(ox, oy)
            if span > self._radius:
                scale = self._radius / span
                ox, oy = ox * scale, oy * scale
            self._offset = (ox, oy)
        self._sync()


class _SharedLeader:
    """One squad's reference point: a waypoint walker advanced once per tick.

    Several member motions share a leader; ``advance_shared`` is idempotent
    per global tick so the leader moves exactly once regardless of how many
    members step it.
    """

    def __init__(self, motion: _WaypointMotion) -> None:
        self.motion = motion
        self._last_step = 0

    def advance_shared(self, dt: float, step: int) -> None:
        if step > self._last_step:
            self.motion.advance(dt, step)
            self._last_step = step


@dataclass(frozen=True)
class ReferencePointGroup(MobilityModel):
    """RPGM: squads follow shared random-waypoint reference points.

    Node ``i`` (in ``names`` order) belongs to squad ``i % groups``.  Each
    squad's reference point does a random-waypoint walk; members keep a
    bounded random offset (radius ``member_radius``) around it.  When two
    squads drift out of mutual radio range the connectivity monitor sees a
    clean partition; when their paths cross again, a merge.
    """

    groups: int = 4
    min_speed: float = 1.0
    max_speed: float = 5.0
    pause: float = 0.0
    member_radius: float = 50.0
    member_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ParameterError("need at least one group")
        if self.min_speed <= 0 or self.max_speed < self.min_speed:
            raise ParameterError("need 0 < min_speed <= max_speed")
        if self.member_radius <= 0:
            raise ParameterError("member_radius must be positive")
        if self.member_speed < 0 or self.pause < 0:
            raise ParameterError("member_speed and pause cannot be negative")

    def build(
        self, names: Sequence[str], area: Area, rng: DeterministicRNG
    ) -> Dict[str, NodeMotion]:
        leaders: List[_SharedLeader] = [
            _SharedLeader(
                _WaypointMotion(
                    area, rng.fork(f"leader/{g}"), self.min_speed, self.max_speed, self.pause
                )
            )
            for g in range(self.groups)
        ]
        return {
            name: _GroupMemberMotion(
                area,
                rng.fork(f"motion/{name}"),
                leaders[index % self.groups],
                self.member_radius,
                self.member_speed,
            )
            for index, name in enumerate(names)
        }

    def describe(self) -> str:
        return (
            f"rpgm(groups={self.groups}, v={self.min_speed:g}-{self.max_speed:g}m/s, "
            f"radius={self.member_radius:g}m)"
        )
