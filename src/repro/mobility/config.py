"""Declarative mobility configuration for scenarios.

:class:`MobilityConfig` is the frozen value object a
:class:`~repro.sim.scenarios.Scenario` embeds to opt into the mobility-aware
network layer: which :class:`~repro.mobility.models.MobilityModel` moves the
nodes, over what :class:`~repro.mobility.field.Area`, with what radio range
and loss ramp, for how long, and how deep the relay flooding may go.  It
also owns the factory methods the scenario engine uses so that the
event-generation pass and the protocol pass build *identical* fields and
link models from the same named RNG children.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exceptions import ParameterError
from ..mathutils.rand import DeterministicRNG
from .field import Area, MobilityField
from .models import MobilityModel
from .radio import RadioLink

__all__ = ["MobilityConfig"]


@dataclass(frozen=True)
class MobilityConfig:
    """Everything the scenario engine needs to simulate a mobile deployment.

    Attributes
    ----------
    model:
        The mobility model spec (static grid, random waypoint, RPGM...).
    area:
        Deployment region.
    tx_range:
        Radio range in metres (drives both reachability and emergent churn).
    duration:
        How long (simulated seconds) the connectivity monitor watches the
        field for emergent events.
    tick:
        Mobility time step; event times are quantised to it.
    base_loss / edge_loss / path_loss_exponent:
        The :class:`~repro.mobility.radio.RadioLink` loss ramp.
    max_hops:
        Relay flooding TTL for :class:`~repro.mobility.relay.MultiHopMedium`.
    settle_ticks:
        Connectivity-change hysteresis (ticks) before an event is emitted.
    """

    model: MobilityModel
    area: Area
    tx_range: float
    duration: float
    tick: float = 1.0
    base_loss: float = 0.0
    edge_loss: float = 0.0
    path_loss_exponent: float = 2.0
    max_hops: int = 8
    settle_ticks: int = 1

    def __post_init__(self) -> None:
        if self.tx_range <= 0:
            raise ParameterError("tx_range must be positive")
        if self.duration < 0:
            raise ParameterError("duration cannot be negative")
        if self.tick <= 0:
            raise ParameterError("tick must be positive")
        if self.max_hops < 1:
            raise ParameterError("max_hops must be at least 1")
        if self.settle_ticks < 1:
            raise ParameterError("settle_ticks must be at least 1")
        # Range/ramp validation is delegated to RadioLink at build time; fail
        # fast here instead so bad configs die at construction.
        if not 0.0 <= self.base_loss < 1.0 or not 0.0 <= self.edge_loss < 1.0:
            raise ParameterError("loss probabilities must be in [0, 1)")
        if self.edge_loss < self.base_loss:
            raise ParameterError("edge_loss cannot be below base_loss")

    # -------------------------------------------------------------- factories
    def build_field(self, names: Sequence[str], rng: DeterministicRNG) -> MobilityField:
        """A fresh field at t=0 for ``names`` (same rng => same trajectories)."""
        return MobilityField(names, self.model, self.area, self.tick, rng)

    def build_link(self, field: MobilityField) -> RadioLink:
        """The radio link model over ``field``."""
        return RadioLink(
            field,
            self.tx_range,
            base_loss=self.base_loss,
            edge_loss=self.edge_loss,
            exponent=self.path_loss_exponent,
        )

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.model.describe()} over {self.area.describe()}, "
            f"range={self.tx_range:g}m, loss={self.base_loss:g}->{self.edge_loss:g}, "
            f"{self.duration:g}s @ {self.tick:g}s ticks, <= {self.max_hops} hops"
        )
