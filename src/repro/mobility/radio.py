"""Distance-dependent radio links over a mobility field.

:class:`RadioLink` implements the :class:`~repro.network.medium.LinkModel`
hook for moving nodes: a pair is reachable while their distance is within the
transmit range, and the per-copy loss probability rises from ``base_loss`` at
zero distance to ``edge_loss`` at the range limit following a power law in
``d / tx_range`` (exponent 2 by default — free-space-like).  Beyond the range
the link is dead (loss 1), which is what turns node mobility into partitions.

The model replaces the single global loss knob of the uniform medium: the
same :class:`~repro.mobility.field.MobilityField` that generates emergent
churn also drives every per-link loss draw, so "far" pairs really are flakier
than "near" pairs in the energy ledgers.
"""

from __future__ import annotations

from ..exceptions import ParameterError
from ..network.medium import LinkModel
from .field import MobilityField

__all__ = ["RadioLink"]

#: Loss probabilities are clamped below 1 so a reachable link can always be
#: retried successfully (an unreachable link is handled by ``reachable``).
_MAX_LOSS = 0.999


class RadioLink(LinkModel):
    """Range-limited, distance-weighted links derived from node positions.

    Parameters
    ----------
    field:
        The mobility field positions are read from (at its *current* time).
    tx_range:
        Maximum radio range in metres; pairs further apart are unreachable.
    base_loss / edge_loss:
        Per-copy loss probability at distance zero / at ``tx_range``.
    exponent:
        Shape of the loss ramp: ``p(d) = base + (edge-base) * (d/range)**exponent``.
    """

    def __init__(
        self,
        field: MobilityField,
        tx_range: float,
        *,
        base_loss: float = 0.0,
        edge_loss: float = 0.0,
        exponent: float = 2.0,
    ) -> None:
        if tx_range <= 0:
            raise ParameterError("tx_range must be positive")
        if not 0.0 <= base_loss < 1.0 or not 0.0 <= edge_loss < 1.0:
            raise ParameterError("loss probabilities must be in [0, 1)")
        if edge_loss < base_loss:
            raise ParameterError("edge_loss cannot be below base_loss")
        if exponent <= 0:
            raise ParameterError("exponent must be positive")
        self.field = field
        self.tx_range = tx_range
        self.base_loss = base_loss
        self.edge_loss = edge_loss
        self.exponent = exponent

    def reachable(self, sender: str, receiver: str) -> bool:
        if sender == receiver:
            return False
        return self.field.distance(sender, receiver) <= self.tx_range

    def loss_probability(self, sender: str, receiver: str) -> float:
        distance = self.field.distance(sender, receiver)
        if distance > self.tx_range:
            return 1.0
        if self.edge_loss <= self.base_loss:
            # Clamp the flat branch too: base_loss alone can exceed _MAX_LOSS
            # (e.g. 0.9995), and an unclamped return here would break the
            # "reachable links stay below 1" retry invariant.
            return min(self.base_loss, _MAX_LOSS)
        ramp = (distance / self.tx_range) ** self.exponent
        return min(self.base_loss + (self.edge_loss - self.base_loss) * ramp, _MAX_LOSS)

    def describe(self) -> str:
        return (
            f"radio(range={self.tx_range:g}m, loss={self.base_loss:g}"
            f"->{self.edge_loss:g}@edge, exp={self.exponent:g})"
        )
