"""Connectivity-driven churn: partitions and merges emerge from motion.

:class:`ConnectivityMonitor` watches the multi-hop reachability graph of a
:class:`~repro.mobility.field.MobilityField` under a
:class:`~repro.mobility.radio.RadioLink` and maintains the *group*: the
connected component containing the controller (the first universe member,
``U_1``).  Stepping the field tick by tick, it emits ordinary
:mod:`repro.network.events` membership events whenever the component changes:

* members that drift out of the controller's component leave as a
  :class:`~repro.network.events.PartitionEvent` (or a single
  :class:`~repro.network.events.LeaveEvent`);
* universe nodes that wander (back) into the component arrive as a
  :class:`~repro.network.events.MergeEvent` (or a single
  :class:`~repro.network.events.JoinEvent`).

The scenario engine replays those events through
:class:`~repro.sim.runner.ScenarioRunner` exactly like hand-written
schedules — churn becomes an emergent property of mobility rather than a
scripted list.  Everything is a pure function of the field's trajectories, so
the same master seed always yields the same event stream.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..exceptions import ParameterError
from ..network.events import (
    JoinEvent,
    LeaveEvent,
    MembershipEvent,
    MergeEvent,
    PartitionEvent,
)
from ..pki.identity import Identity
from .field import MobilityField
from .graph import adjacency, component, induced_component
from .radio import RadioLink

__all__ = ["ConnectivityMonitor"]


class ConnectivityMonitor:
    """Derives membership events from the reachability graph as nodes move.

    Parameters
    ----------
    field:
        The mobility field to watch (the monitor advances it itself).
    link:
        Radio link model giving single-hop reachability.
    universe:
        Every identity that exists in the deployment, controller first.  The
        group at any instant is the subset connected (over any number of
        hops) to the controller.
    min_group_size:
        Departures are deferred while they would shrink the group below this
        (the protocols need a viable ring); the nodes remain nominal members
        until either more of the universe reconnects or they return.
    settle_ticks:
        A connectivity change must persist this many consecutive ticks before
        it becomes an event — hysteresis against range-boundary flapping.
    """

    def __init__(
        self,
        field: MobilityField,
        link: RadioLink,
        universe: Sequence[Identity],
        *,
        min_group_size: int = 3,
        settle_ticks: int = 1,
    ) -> None:
        if len(universe) < 2:
            raise ParameterError("the universe needs at least two identities")
        if min_group_size < 2:
            raise ParameterError("min_group_size must be at least 2")
        if settle_ticks < 1:
            raise ParameterError("settle_ticks must be at least 1")
        names = [identity.name for identity in universe]
        if len(set(names)) != len(names):
            raise ParameterError("duplicate identities in the universe")
        self.field = field
        self.link = link
        self.universe = list(universe)
        self.controller = universe[0]
        self.min_group_size = min_group_size
        self.settle_ticks = settle_ticks
        self._by_name: Dict[str, Identity] = {identity.name: identity for identity in universe}
        self._out_streak: Dict[str, int] = {name: 0 for name in names}
        self._in_streak: Dict[str, int] = {name: 0 for name in names}
        self._group: List[str] = self.component()

    # ------------------------------------------------------------ reachability
    def _universe_graph(self) -> Dict[str, List[str]]:
        """Single-hop adjacency over the whole universe, built once per tick.

        Built with the same :mod:`repro.mobility.graph` helpers the flooding
        medium uses; all gating checks derive induced subgraphs from this one
        O(n^2) distance pass.
        """
        return adjacency(self.link, [identity.name for identity in self.universe])

    def component(self) -> List[str]:
        """The controller's connected component over the whole universe."""
        seen = component(self._universe_graph(), self.controller.name)
        return [identity.name for identity in self.universe if identity.name in seen]

    # ----------------------------------------------------------------- state
    def group_members(self) -> List[Identity]:
        """Current nominal group membership (controller first)."""
        return [self._by_name[name] for name in self._group]

    def initial_members(self) -> List[Identity]:
        """The group at the field's current (usually initial) time."""
        members = self.group_members()
        if len(members) < self.min_group_size:
            raise ParameterError(
                f"only {len(members)} of {len(self.universe)} nodes are connected to "
                f"the controller at t={self.field.time:g}s; raise the node density or "
                "transmit range so a viable initial group forms"
            )
        return members

    # ---------------------------------------------------------------- events
    def _tick_events(self) -> List[MembershipEvent]:
        """Events implied by the reachability graph at the field's current time.

        Emitted events are a promise the medium must honour: the runner
        replays them at this tick's positions, and each event's protocol step
        broadcasts to every member of its *own* post-event group (a same-tick
        departure is applied before the arrival).  An event therefore only
        fires when its post-event membership is one connected component of
        the graph induced on exactly those members — members bridged only by
        non-members are undeliverable and stay counted as disconnected.  A
        departure additionally may not shrink the group below two members
        mid-tick, nor below ``min_group_size`` once same-tick arrivals are
        counted; gated changes simply wait (streaks keep accumulating, so
        nothing is lost, only delayed).
        """
        # One O(n^2) distance pass per tick; every reachability question below
        # is an induced subgraph of this graph.  Departure detection runs on
        # the member-induced graph (what the medium can actually deliver);
        # arrival detection runs on the full universe graph, optimistically
        # (returning squads bridge each other).
        graph = self._universe_graph()
        controller = self.controller.name
        members = set(self._group)
        member_component = induced_component(graph, self._group, controller)
        universe_component = component(graph, controller)

        for name in self._out_streak:
            in_group = name in members
            self._out_streak[name] = (
                self._out_streak[name] + 1 if in_group and name not in member_component else 0
            )
            self._in_streak[name] = (
                self._in_streak[name] + 1 if not in_group and name in universe_component else 0
            )

        departures = [
            name for name in self._group
            if self._out_streak[name] >= self.settle_ticks and name != controller
        ]
        arrivals = sorted(
            name for name, streak in self._in_streak.items()
            if streak >= self.settle_ticks and name not in members
        )

        departed = set(departures)
        remaining = [name for name in self._group if name not in departed]
        departures_ok = (
            bool(departures)
            and len(remaining) >= 2
            and set(remaining) <= induced_component(graph, remaining, controller)
        )
        base = remaining if departures_ok else list(self._group)
        arrivals_ok = bool(arrivals) and set(base + arrivals) <= induced_component(
            graph, base + arrivals, controller
        )
        final_size = len(base) + (len(arrivals) if arrivals_ok else 0)
        if departures_ok and final_size < self.min_group_size:
            # The tick would end below the viability floor: defer the
            # departures and re-gate the arrivals against the intact group.
            departures_ok = False
            base = list(self._group)
            arrivals_ok = bool(arrivals) and set(base + arrivals) <= induced_component(
                graph, base + arrivals, controller
            )

        events: List[MembershipEvent] = []
        if departures_ok:
            leaving = tuple(self._by_name[name] for name in departures)
            events.append(
                LeaveEvent(leaving=leaving[0]) if len(leaving) == 1
                else PartitionEvent(leaving=leaving)
            )
            self._group = remaining
            for name in departures:
                self._out_streak[name] = 0
        if arrivals_ok:
            joining = tuple(self._by_name[name] for name in arrivals)
            events.append(
                JoinEvent(joining=joining[0]) if len(joining) == 1
                else MergeEvent(other_group=joining)
            )
            self._group = self._group + list(arrivals)
            for name in arrivals:
                self._in_streak[name] = 0
        return events

    def emergent_events(self, duration: float) -> List[Tuple[float, MembershipEvent]]:
        """Step the field to ``duration`` and return the timed event stream.

        Call once, starting from the field's initial time; each returned pair
        is ``(time, event)`` with times quantised to field ticks.  The stream
        is a deterministic function of the field's seed and the radio
        parameters.
        """
        events: List[Tuple[float, MembershipEvent]] = []
        ticks = int(round(duration / self.field.tick))
        for _ in range(ticks):
            self.field.advance_ticks(1)
            for event in self._tick_events():
                events.append((self.field.time, event))
        return events
