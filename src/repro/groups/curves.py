"""Named elliptic curves.

``SECP160R1`` backs the paper's "160-bit ECDSA" baseline (Table 1 uses an
86-byte ECDSA certificate and a 2x160-bit signature).  ``P-192`` and
``P-256`` are provided for completeness and for the test-suite; ``TINY_CURVE``
is a deliberately small curve whose whole group can be enumerated in tests.
"""

from __future__ import annotations

from typing import Dict

from ..exceptions import ParameterError
from .elliptic import EllipticCurve

__all__ = ["SECP160R1", "NIST_P192", "NIST_P256", "TINY_CURVE", "CURVES", "get_curve"]


#: secp160r1 (SECG), the 160-bit curve matching the paper's ECDSA key size.
SECP160R1 = EllipticCurve(
    name="secp160r1",
    p=0x00FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFF,
    a=0x00FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFC,
    b=0x001C97BEFC54BD7A8B65ACF89F81D4D4ADC565FA45,
    gx=0x004A96B5688EF573284664698968C38BB913CBFC82,
    gy=0x0023A628553168947D59DCC912042351377AC5FB32,
    n=0x0100000000000000000001F4C8F927AED3CA752257,
    h=1,
)

#: NIST P-192 (secp192r1).
NIST_P192 = EllipticCurve(
    name="P-192",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFC,
    b=0x64210519E59C80E70FA7E9AB72243049FEB8DEECC146B9B1,
    gx=0x188DA80EB03090F67CBF20EB43A18800F4FF0AFD82FF1012,
    gy=0x07192B95FFC8DA78631011ED6B24CDD573F977A11E794811,
    n=0xFFFFFFFFFFFFFFFFFFFFFFFF99DEF836146BC9B1B4D22831,
    h=1,
)

#: NIST P-256 (secp256r1).
NIST_P256 = EllipticCurve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFC,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    gx=0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
    gy=0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
    h=1,
)

#: A toy curve over GF(10007) used only by unit / property tests where the
#: whole group can be walked.  y^2 = x^3 + 3x + 6 over GF(10007) has prime
#: order 10039, so every non-identity point is a generator.
TINY_CURVE = EllipticCurve(
    name="tiny-10007",
    p=10007,
    a=3,
    b=6,
    gx=0,
    gy=1973,
    n=10039,
    h=1,
)

CURVES: Dict[str, EllipticCurve] = {
    "secp160r1": SECP160R1,
    "P-192": NIST_P192,
    "P-256": NIST_P256,
    "tiny-10007": TINY_CURVE,
}


def get_curve(name: str) -> EllipticCurve:
    """Look up a named curve.

    Raises
    ------
    ParameterError
        If the curve name is not registered.
    """
    try:
        return CURVES[name]
    except KeyError:
        raise ParameterError(
            f"unknown curve {name!r}; available: {', '.join(sorted(CURVES))}"
        ) from None
