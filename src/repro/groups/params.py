"""Named, deterministic parameter sets.

The paper's Setup uses a 1024-bit prime ``p`` with a 160-bit prime ``q``
dividing ``p - 1`` for the GKA, and a 1024-bit RSA-style modulus (two 512-bit
primes) for the GQ signature scheme.  Generating those parameters is cheap in
CPython (well under a second), so rather than embedding large hex constants,
this module exposes *named* parameter sets generated from fixed seeds and
memoised per process — every run of every test, example and benchmark sees the
exact same numbers.

Use :func:`get_schnorr_group` / :func:`get_gq_modulus` with one of the names in
:data:`SCHNORR_PARAM_SETS` / :data:`GQ_PARAM_SETS`.  ``"ipps2006-1024"`` and
``"gq-1024"`` are the paper-faithful sizes; the ``"test-*"`` sets are small and
exist purely to keep the unit-test suite fast.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from ..exceptions import ParameterError
from ..mathutils.primes import RSAModulus, generate_rsa_modulus, generate_schnorr_parameters
from ..mathutils.rand import DeterministicRNG
from .schnorr import SchnorrGroup

__all__ = [
    "SCHNORR_PARAM_SETS",
    "GQ_PARAM_SETS",
    "get_schnorr_group",
    "get_gq_modulus",
    "PAPER_SCHNORR_SET",
    "PAPER_GQ_SET",
    "TEST_SCHNORR_SET",
    "TEST_GQ_SET",
]

#: name -> (p_bits, q_bits, seed)
SCHNORR_PARAM_SETS: Dict[str, Tuple[int, int, str]] = {
    "ipps2006-1024": (1024, 160, "schnorr-1024-160"),
    "medium-768": (768, 160, "schnorr-768-160"),
    "small-512": (512, 160, "schnorr-512-160"),
    "test-256": (256, 64, "schnorr-256-64"),
    "test-128": (128, 32, "schnorr-128-32"),
}

#: name -> (modulus_bits, seed)
GQ_PARAM_SETS: Dict[str, Tuple[int, str]] = {
    "gq-1024": (1024, "gq-1024"),
    "gq-512": (512, "gq-512"),
    "gq-test-256": (256, "gq-256"),
}

#: The parameter sets matching the paper's Setup (Section 4).
PAPER_SCHNORR_SET = "ipps2006-1024"
PAPER_GQ_SET = "gq-1024"

#: Small parameter sets used by fast unit tests.
TEST_SCHNORR_SET = "test-256"
TEST_GQ_SET = "gq-test-256"


@lru_cache(maxsize=None)
def get_schnorr_group(name: str = PAPER_SCHNORR_SET) -> SchnorrGroup:
    """Return the named Schnorr group, generating it on first use.

    The result is cached for the lifetime of the process, so repeated calls
    (every protocol instance, every benchmark iteration) are free.
    """
    try:
        p_bits, q_bits, seed = SCHNORR_PARAM_SETS[name]
    except KeyError:
        raise ParameterError(
            f"unknown Schnorr parameter set {name!r}; "
            f"available: {', '.join(sorted(SCHNORR_PARAM_SETS))}"
        ) from None
    rng = DeterministicRNG(seed, label=name)
    p, q, g = generate_schnorr_parameters(p_bits, q_bits, rng)
    group = SchnorrGroup(p=p, q=q, g=g)
    group.validate(check_primality=False)
    return group


@lru_cache(maxsize=None)
def get_gq_modulus(name: str = PAPER_GQ_SET) -> RSAModulus:
    """Return the named GQ (RSA-style) modulus, generating it on first use."""
    try:
        bits, seed = GQ_PARAM_SETS[name]
    except KeyError:
        raise ParameterError(
            f"unknown GQ parameter set {name!r}; "
            f"available: {', '.join(sorted(GQ_PARAM_SETS))}"
        ) from None
    rng = DeterministicRNG(seed, label=name)
    return generate_rsa_modulus(bits, rng)
