"""Algebraic groups: Schnorr subgroups, elliptic curves, simulated pairings."""

from .curves import CURVES, NIST_P192, NIST_P256, SECP160R1, TINY_CURVE, get_curve
from .elliptic import ECPoint, EllipticCurve
from .pairing import G1Element, GTElement, SimulatedPairingGroup
from .params import (
    GQ_PARAM_SETS,
    PAPER_GQ_SET,
    PAPER_SCHNORR_SET,
    SCHNORR_PARAM_SETS,
    TEST_GQ_SET,
    TEST_SCHNORR_SET,
    get_gq_modulus,
    get_schnorr_group,
)
from .schnorr import SchnorrGroup

__all__ = [
    "CURVES",
    "NIST_P192",
    "NIST_P256",
    "SECP160R1",
    "TINY_CURVE",
    "get_curve",
    "ECPoint",
    "EllipticCurve",
    "G1Element",
    "GTElement",
    "SimulatedPairingGroup",
    "GQ_PARAM_SETS",
    "PAPER_GQ_SET",
    "PAPER_SCHNORR_SET",
    "SCHNORR_PARAM_SETS",
    "TEST_GQ_SET",
    "TEST_SCHNORR_SET",
    "get_gq_modulus",
    "get_schnorr_group",
    "SchnorrGroup",
]
