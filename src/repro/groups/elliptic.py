"""Elliptic curves over prime fields (short Weierstrass form).

Needed for the BD + ECDSA baseline of Table 1 / Figure 1.  The implementation
is a standard affine/Jacobian-free pure-Python curve with:

* point validation, addition, doubling,
* double-and-add scalar multiplication (with a small sliding improvement of
  processing the scalar MSB-first),
* the point-at-infinity represented by ``None`` wrapped in :class:`ECPoint`.

Named curves (NIST P-192, P-256 and a secp160r1-like 160-bit curve matching
the paper's "160-bit ECDSA") live in :mod:`repro.groups.curves`, together with
a tiny 16-bit toy curve for exhaustive unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..backends.registry import active_backend
from ..exceptions import ParameterError
from ..mathutils.rand import DeterministicRNG

__all__ = ["EllipticCurve", "ECPoint", "ec_multi_scalar"]


@dataclass(frozen=True)
class EllipticCurve:
    """The curve ``y^2 = x^3 + a*x + b`` over ``GF(p)`` with base point of order ``n``.

    Attributes
    ----------
    name:
        Human-readable curve name (e.g. ``"P-256"``).
    p:
        Field prime.
    a, b:
        Curve coefficients.
    gx, gy:
        Affine coordinates of the base point ``G``.
    n:
        Prime order of ``G``.
    h:
        Cofactor (1 for all curves shipped with the library).
    """

    name: str
    p: int
    a: int
    b: int
    gx: int
    gy: int
    n: int
    h: int = 1

    # ---------------------------------------------------------------- basics
    def validate(self) -> None:
        """Check the discriminant and that the base point is on the curve."""
        disc = (4 * pow(self.a, 3, self.p) + 27 * pow(self.b, 2, self.p)) % self.p
        if disc == 0:
            raise ParameterError(f"curve {self.name} is singular")
        if not self.contains(self.gx, self.gy):
            raise ParameterError(f"base point of {self.name} is not on the curve")
        if self.n <= 1:
            raise ParameterError("base point order must exceed 1")

    def contains(self, x: int, y: int) -> bool:
        """Whether affine ``(x, y)`` satisfies the curve equation."""
        left = (y * y) % self.p
        right = (pow(x, 3, self.p) + self.a * x + self.b) % self.p
        return left == right

    @property
    def generator(self) -> "ECPoint":
        """The base point ``G`` as an :class:`ECPoint`."""
        return ECPoint(self, self.gx, self.gy)

    @property
    def infinity(self) -> "ECPoint":
        """The point at infinity (group identity)."""
        return ECPoint(self, None, None)

    @property
    def coordinate_bits(self) -> int:
        """Bit size of one field coordinate (wire size of ``r``/``s`` in ECDSA)."""
        return self.p.bit_length()

    def random_scalar(self, rng: DeterministicRNG) -> int:
        """A uniform non-zero scalar modulo the group order."""
        return rng.zq_star(self.n)

    def point(self, x: Optional[int], y: Optional[int]) -> "ECPoint":
        """Construct (and validate) a point on this curve."""
        pt = ECPoint(self, x, y)
        if not pt.is_infinity and not self.contains(pt.x, pt.y):  # type: ignore[arg-type]
            raise ParameterError(f"({x}, {y}) is not on curve {self.name}")
        return pt


class ECPoint:
    """An affine point on an :class:`EllipticCurve` (``x is None`` => infinity)."""

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: EllipticCurve, x: Optional[int], y: Optional[int]) -> None:
        self.curve = curve
        self.x = x if x is None else x % curve.p
        self.y = y if y is None else y % curve.p

    # ---------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ECPoint):
            return NotImplemented
        return self.curve is other.curve and self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((id(self.curve), self.x, self.y))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_infinity:
            return f"ECPoint({self.curve.name}, INF)"
        return f"ECPoint({self.curve.name}, x={self.x}, y={self.y})"

    # ---------------------------------------------------------------- status
    @property
    def is_infinity(self) -> bool:
        """Whether this is the group identity."""
        return self.x is None

    # ------------------------------------------------------------- operations
    def negate(self) -> "ECPoint":
        """The additive inverse ``-P``."""
        if self.is_infinity:
            return self
        return ECPoint(self.curve, self.x, (-self.y) % self.curve.p)  # type: ignore[operator]

    def add(self, other: "ECPoint") -> "ECPoint":
        """Point addition ``P + Q``."""
        if self.curve is not other.curve:
            raise ParameterError("cannot add points on different curves")
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        p = self.curve.p
        if self.x == other.x:
            if (self.y + other.y) % p == 0:
                return self.curve.infinity
            return self.double()
        slope = ((other.y - self.y) * active_backend().modinv(other.x - self.x, p)) % p  # type: ignore[operator]
        x3 = (slope * slope - self.x - other.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p  # type: ignore[operator]
        return ECPoint(self.curve, x3, y3)

    def double(self) -> "ECPoint":
        """Point doubling ``2P``."""
        if self.is_infinity:
            return self
        p = self.curve.p
        if self.y == 0:
            return self.curve.infinity
        slope = ((3 * self.x * self.x + self.curve.a) * active_backend().modinv(2 * self.y, p)) % p  # type: ignore[operator]
        x3 = (slope * slope - 2 * self.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p  # type: ignore[operator]
        return ECPoint(self.curve, x3, y3)

    def multiply(self, scalar: int) -> "ECPoint":
        """Scalar multiplication ``scalar * P`` (routes through the backend)."""
        return active_backend().ec_scalar_mul(self, scalar)

    __add__ = add

    def __neg__(self) -> "ECPoint":
        return self.negate()

    def __rmul__(self, scalar: int) -> "ECPoint":
        return self.multiply(scalar)

    def __mul__(self, scalar: int) -> "ECPoint":
        return self.multiply(scalar)


def ec_multi_scalar(points: "list[ECPoint]", scalars: "list[int]") -> ECPoint:
    """Simultaneous multi-scalar multiplication ``sum scalars[i] * points[i]``.

    The elliptic-curve analogue of :func:`repro.mathutils.modular.multi_exp`:
    one interleaved Straus double chain over the widest scalar, adding each
    point at its set bits.  For the batch signature check — a handful of
    order-sized scalars plus many 64-bit random coefficients — this replaces
    ``len(points)`` independent double-and-add ladders (each paying a full
    run of field inversions) with a single shared chain, which is where the
    batch-verification speedup on the pure backend comes from.

    Negative scalars negate the point first (point negation is one field
    negation, unlike the modular case where a full inverse is needed).
    """
    if len(points) != len(scalars):
        raise ParameterError("points and scalars must have the same length")
    pairs = []
    curve = None
    for point, scalar in zip(points, scalars):
        if curve is None:
            curve = point.curve
        elif point.curve is not curve:
            raise ParameterError("cannot combine points on different curves")
        if scalar < 0:
            point, scalar = point.negate(), -scalar
        if scalar == 0 or point.is_infinity:
            continue
        pairs.append((point, scalar))
    if curve is None:
        raise ParameterError("multi-scalar multiplication needs at least one point")
    acc = curve.infinity
    if not pairs:
        return acc
    top = max(scalar.bit_length() for _, scalar in pairs)
    for bit in range(top - 1, -1, -1):
        acc = acc.double()
        for point, scalar in pairs:
            if (scalar >> bit) & 1:
                acc = acc.add(point)
    return acc
