"""Deterministic randomness utilities.

Every experiment in the reproduction must be replayable bit-for-bit, so all
randomness flows through :class:`DeterministicRNG`, a small counter-mode
generator built on SHA-256.  It exposes exactly the sampling operations the
protocols need:

* uniform integers below a bound / within a bit length,
* elements of ``Z_q^*`` and ``Z_n^*`` (the paper's ``r_i`` and ``tau_i``),
* random byte strings for nonces and symmetric keys,
* child generators (``fork``) so that each simulated node can own an
  independent but still reproducible stream.

The generator intentionally does **not** use :mod:`secrets`: this is a
research reproduction whose goal is replayable protocol executions and energy
measurements, not production key generation.  The docstrings flag this
explicitly so downstream users are not misled.
"""

from __future__ import annotations

import hashlib
import math
from typing import Optional

from ..exceptions import ParameterError

__all__ = ["DeterministicRNG", "default_rng"]


class DeterministicRNG:
    """A reproducible pseudo-random generator based on SHA-256 in counter mode.

    Parameters
    ----------
    seed:
        Any of ``int``, ``bytes`` or ``str``.  Two generators constructed with
        equal seeds produce identical streams.
    label:
        Optional domain-separation label; ``fork`` uses it so that child
        streams never collide with the parent stream.
    """

    _HASH_BYTES = 32

    def __init__(self, seed: object = 0, label: str = "root") -> None:
        self._seed_bytes = self._normalise_seed(seed)
        self._label = label
        self._counter = 0
        self._buffer = b""

    # ------------------------------------------------------------------ utils
    @staticmethod
    def _normalise_seed(seed: object) -> bytes:
        if isinstance(seed, bytes):
            return seed
        if isinstance(seed, str):
            return seed.encode("utf-8")
        if isinstance(seed, int):
            if seed < 0:
                seed = -seed * 2 + 1
            length = max(1, (seed.bit_length() + 7) // 8)
            return seed.to_bytes(length, "big")
        raise ParameterError(f"unsupported seed type: {type(seed)!r}")

    def _refill(self) -> None:
        block = hashlib.sha256(
            self._seed_bytes
            + b"|"
            + self._label.encode("utf-8")
            + b"|"
            + self._counter.to_bytes(8, "big")
        ).digest()
        self._counter += 1
        self._buffer += block

    # ------------------------------------------------------------------ bytes
    def random_bytes(self, length: int) -> bytes:
        """Return ``length`` pseudo-random bytes."""
        if length < 0:
            raise ParameterError("length must be non-negative")
        while len(self._buffer) < length:
            self._refill()
        out, self._buffer = self._buffer[:length], self._buffer[length:]
        return out

    # --------------------------------------------------------------- integers
    def getrandbits(self, bits: int) -> int:
        """Return a uniform integer in ``[0, 2**bits)``."""
        if bits < 0:
            raise ParameterError("bits must be non-negative")
        if bits == 0:
            return 0
        nbytes = (bits + 7) // 8
        raw = int.from_bytes(self.random_bytes(nbytes), "big")
        return raw >> (nbytes * 8 - bits)

    def randbelow(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` by rejection sampling."""
        if bound <= 0:
            raise ParameterError("bound must be positive")
        bits = bound.bit_length()
        while True:
            candidate = self.getrandbits(bits)
            if candidate < bound:
                return candidate

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise ParameterError("high must be >= low")
        return low + self.randbelow(high - low + 1)

    def random_bits_exact(self, bits: int) -> int:
        """Return a uniform integer of exactly ``bits`` bits (MSB set)."""
        if bits <= 0:
            raise ParameterError("bits must be positive")
        if bits == 1:
            return 1
        return (1 << (bits - 1)) | self.getrandbits(bits - 1)

    def random_odd_bits_exact(self, bits: int) -> int:
        """Return a uniform *odd* integer of exactly ``bits`` bits."""
        value = self.random_bits_exact(bits)
        return value | 1

    # ----------------------------------------------------- group-element draws
    def zq_star(self, q: int) -> int:
        """Sample an element of ``Z_q^* = {1, ..., q-1}`` (the paper's r_i)."""
        if q <= 2:
            raise ParameterError("q must exceed 2")
        return 1 + self.randbelow(q - 1)

    def zn_star(self, n: int) -> int:
        """Sample an element of ``Z_n^*`` (the paper's tau_i), coprime to n."""
        if n <= 2:
            raise ParameterError("n must exceed 2")
        while True:
            candidate = 1 + self.randbelow(n - 1)
            if math.gcd(candidate, n) == 1:
                return candidate

    # ------------------------------------------------------------------ misc
    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle of ``items``."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randbelow(i + 1)
            items[i], items[j] = items[j], items[i]

    def choice(self, items: list):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not items:
            raise ParameterError("cannot choose from an empty sequence")
        return items[self.randbelow(len(items))]

    def sample(self, items: list, k: int) -> list:
        """Return ``k`` distinct elements chosen uniformly without replacement."""
        if k < 0 or k > len(items):
            raise ParameterError("sample size out of range")
        pool = list(items)
        self.shuffle(pool)
        return pool[:k]

    def derive_seed(self, label: str) -> bytes:
        """The child seed :meth:`fork` would use for ``label``.

        Exposed so that callers which need a *seed object* rather than a
        generator (e.g. the scenario runner handing protocols their per-event
        seeds) can derive named children from one master seed without
        consuming any of this generator's stream.
        """
        return hashlib.sha256(
            self._seed_bytes + b"|fork|" + self._label.encode("utf-8") + b"|" + label.encode("utf-8")
        ).digest()

    def fork(self, label: str) -> "DeterministicRNG":
        """Create an independent child generator for domain ``label``.

        Children with different labels (or forked from different parents)
        produce independent streams; forking is how each simulated node gets
        its own reproducible randomness.
        """
        return DeterministicRNG(self.derive_seed(label), label=label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRNG(label={self._label!r}, counter={self._counter})"


def default_rng(seed: object = 0, label: str = "root") -> DeterministicRNG:
    """Convenience constructor mirroring :func:`numpy.random.default_rng`."""
    return DeterministicRNG(seed, label=label)
