"""Prime generation and primality testing.

The protocols in the paper need three kinds of parameters:

* an RSA-style modulus ``n' = p' * q'`` with two large (512-bit) primes for
  the GQ identity-based signature scheme,
* a Schnorr group: a 1024-bit prime ``p`` with a 160-bit prime ``q`` dividing
  ``p - 1`` and a generator ``g`` of the order-``q`` subgroup of ``Z_p^*``,
* assorted smaller primes for the DSA / ECDSA baselines and for the fast test
  parameter sets.

Everything is generated from a :class:`~repro.mathutils.rand.DeterministicRNG`
so parameter generation is reproducible; named precomputed parameter sets live
in :mod:`repro.groups.params` so the test-suite does not pay the generation
cost on every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..exceptions import ParameterError
from .modular import modinv
from .rand import DeterministicRNG

__all__ = [
    "SMALL_PRIMES",
    "is_probable_prime",
    "miller_rabin",
    "next_prime",
    "random_prime",
    "random_safe_prime",
    "generate_schnorr_parameters",
    "generate_rsa_modulus",
    "RSAModulus",
]


def _sieve(limit: int) -> Tuple[int, ...]:
    """Primes below ``limit`` via a simple Eratosthenes sieve."""
    flags = bytearray([1]) * limit
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = b"\x00" * len(flags[i * i :: i])
    return tuple(i for i, f in enumerate(flags) if f)


#: Small primes used for trial division before Miller-Rabin.
SMALL_PRIMES: Tuple[int, ...] = _sieve(2000)


def miller_rabin(n: int, witness: int) -> bool:
    """Single Miller-Rabin round: return True if ``n`` passes for ``witness``."""
    if n % 2 == 0:
        return n == 2
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(witness % n, d, n)
    if x in (1, n - 1):
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[DeterministicRNG] = None) -> bool:
    """Probabilistic primality test (trial division + Miller-Rabin).

    With ``rounds=40`` the error probability is below ``4^-40``; for the
    deterministic small range (< 3.3e24) the fixed witness set makes the test
    exact, which keeps the fast unit-test parameters provably prime.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Deterministic witness set correct for n < 3,317,044,064,679,887,385,961,981.
    deterministic_witnesses = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    if n < 3_317_044_064_679_887_385_961_981:
        return all(miller_rabin(n, w) for w in deterministic_witnesses)
    rng = rng or DeterministicRNG(n & 0xFFFFFFFF, label="miller-rabin")
    for _ in range(rounds):
        witness = rng.randint(2, n - 2)
        if not miller_rabin(n, witness):
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = max(2, n + 1)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def random_prime(bits: int, rng: DeterministicRNG) -> int:
    """Return a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise ParameterError("a prime needs at least 2 bits")
    while True:
        candidate = rng.random_odd_bits_exact(bits) if bits > 2 else rng.choice([2, 3])
        if is_probable_prime(candidate):
            return candidate


def random_safe_prime(bits: int, rng: DeterministicRNG, max_attempts: int = 100000) -> int:
    """Return a random safe prime ``p = 2q + 1`` with ``bits`` bits.

    Safe primes are only needed by a couple of baseline configurations and by
    tests of the group substrate; the main Schnorr parameter generation below
    uses the faster "q divides p-1" construction the paper describes.
    """
    if bits < 3:
        raise ParameterError("a safe prime needs at least 3 bits")
    for _ in range(max_attempts):
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p):
            return p
    raise ParameterError(f"could not find a {bits}-bit safe prime in {max_attempts} attempts")


def generate_schnorr_parameters(
    p_bits: int,
    q_bits: int,
    rng: DeterministicRNG,
    max_attempts: int = 200000,
) -> Tuple[int, int, int]:
    """Generate ``(p, q, g)`` with ``q | p - 1`` and ``g`` of order ``q``.

    This is the parameter shape the paper's Setup uses: a 160-bit prime ``q``
    dividing ``p - 1`` for a 1024-bit prime ``p``, with generator ``g`` of the
    order-``q`` subgroup of ``Z_p^*``.

    The construction draws ``q`` first, then searches for a cofactor ``k``
    such that ``p = k*q + 1`` is prime, then derives ``g = h^((p-1)/q)`` for a
    random ``h`` until ``g != 1``.
    """
    if q_bits >= p_bits:
        raise ParameterError("q_bits must be smaller than p_bits")
    q = random_prime(q_bits, rng)
    k_bits = p_bits - q_bits
    for _ in range(max_attempts):
        k = rng.random_bits_exact(k_bits)
        if k % 2 == 1:
            k += 1  # keep p-1 even
        p = k * q + 1
        if p.bit_length() != p_bits:
            continue
        if is_probable_prime(p):
            break
    else:
        raise ParameterError(
            f"could not find a {p_bits}-bit prime p with {q_bits}-bit q | p-1"
        )
    cofactor = (p - 1) // q
    while True:
        h = rng.randint(2, p - 2)
        g = pow(h, cofactor, p)
        if g != 1:
            break
    assert pow(g, q, p) == 1, "generator must have order q"
    return p, q, g


@dataclass(frozen=True)
class RSAModulus:
    """An RSA-style modulus with its factorisation and GQ exponents.

    Attributes
    ----------
    n:
        The public modulus ``p * q``.
    p, q:
        The private prime factors (512-bit each for the paper's parameters).
    e:
        The public verification exponent of the GQ scheme.
    d:
        The private exponent with ``e * d = 1 (mod phi(n))``; this is the
        PKG's master extraction key.
    """

    n: int
    p: int
    q: int
    e: int
    d: int

    @property
    def phi(self) -> int:
        """Euler's totient of ``n``."""
        return (self.p - 1) * (self.q - 1)

    @property
    def bits(self) -> int:
        """Bit length of the modulus."""
        return self.n.bit_length()

    def validate(self) -> None:
        """Raise :class:`ParameterError` if the modulus is internally inconsistent."""
        if self.p * self.q != self.n:
            raise ParameterError("n != p*q")
        if not is_probable_prime(self.p) or not is_probable_prime(self.q):
            raise ParameterError("p and q must both be prime")
        if (self.e * self.d) % self.phi != 1:
            raise ParameterError("e*d != 1 mod phi(n)")
        if math.gcd(self.e, self.phi) != 1:
            raise ParameterError("e must be coprime to phi(n)")


def generate_rsa_modulus(
    bits: int,
    rng: DeterministicRNG,
    e: Optional[int] = None,
) -> RSAModulus:
    """Generate an RSA-style modulus for the GQ scheme.

    Parameters
    ----------
    bits:
        Total modulus size; the two primes get ``bits // 2`` bits each (the
        paper uses two 512-bit primes for a 1024-bit ``n``).
    rng:
        Deterministic randomness source.
    e:
        Optional public exponent.  The paper only requires ``gcd(e, d) = 1``
        with ``d`` coprime to ``phi(n)``; we follow standard GQ practice and
        pick a prime ``e`` coprime to ``phi(n)`` (default: the smallest
        suitable odd prime >= 65537), because the verification exponent also
        bounds the soundness of the identification underlying the signature.
    """
    if bits < 16:
        raise ParameterError("modulus must be at least 16 bits")
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if e is None:
            candidate_e = 65537 if bits > 40 else 17
            while math.gcd(candidate_e, phi) != 1:
                candidate_e = next_prime(candidate_e)
        else:
            candidate_e = e
            if math.gcd(candidate_e, phi) != 1:
                continue
        d = modinv(candidate_e, phi)
        modulus = RSAModulus(n=n, p=p, q=q, e=candidate_e, d=d)
        modulus.validate()
        return modulus
