"""Modular-arithmetic primitives used throughout the library.

These are the small, heavily exercised building blocks under every signature
scheme and group-key protocol in the reproduction: extended gcd, modular
inverse, CRT recombination, Jacobi symbols, and product-mod helpers.  They are
pure functions over Python integers; CPython's arbitrary-precision ``int`` and
three-argument ``pow`` make them fast enough for 1024/2048-bit parameters
without any C extension.

Design notes (per the hpc-parallel guides): keep the functions simple and
testable first; the only "optimization" applied is using builtin ``pow`` /
``math.gcd`` which are already C-level, and an iterative extended gcd to avoid
recursion limits on large inputs.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

from ..exceptions import ParameterError

__all__ = [
    "egcd",
    "modinv",
    "gcd",
    "lcm",
    "crt",
    "jacobi",
    "is_quadratic_residue",
    "product_mod",
    "modexp",
    "legendre",
    "int_nth_root",
    "is_perfect_square",
    "FixedBaseExp",
    "multi_exp",
]


def gcd(a: int, b: int) -> int:
    """Greatest common divisor of ``a`` and ``b`` (non-negative result)."""
    return math.gcd(a, b)


def lcm(a: int, b: int) -> int:
    """Least common multiple of ``a`` and ``b``."""
    if a == 0 or b == 0:
        return 0
    return abs(a // math.gcd(a, b) * b)


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.

    The implementation is iterative so it works for arbitrarily large inputs
    without hitting the recursion limit.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    # Normalise so the gcd is non-negative.
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def modinv(a: int, n: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``n``.

    Raises
    ------
    ParameterError
        If ``gcd(a, n) != 1`` (no inverse exists) or ``n <= 0``.
    """
    if n <= 0:
        raise ParameterError(f"modulus must be positive, got {n}")
    a %= n
    g, x, _ = egcd(a, n)
    if g != 1:
        raise ParameterError(f"{a} has no inverse modulo {n} (gcd={g})")
    return x % n


def modexp(base: int, exponent: int, modulus: int) -> int:
    """Modular exponentiation ``base**exponent mod modulus``.

    Thin wrapper over builtin :func:`pow` that supports negative exponents by
    inverting the base first, which the protocols need for terms such as
    ``(z_{i-1})^{-r_i}`` and ``H(ID)^{-c}``.
    """
    if modulus <= 0:
        raise ParameterError(f"modulus must be positive, got {modulus}")
    if exponent < 0:
        base = modinv(base, modulus)
        exponent = -exponent
    return pow(base, exponent, modulus)


def crt(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Chinese Remainder Theorem recombination.

    Given pairwise-coprime ``moduli`` and corresponding ``residues``, return
    the unique ``x`` modulo ``prod(moduli)`` with ``x = residues[i] (mod
    moduli[i])`` for every ``i``.  Used by the RSA-style GQ private-key
    generator to speed up ``H(ID)^d mod n`` via the factorisation of ``n``.
    """
    if len(residues) != len(moduli):
        raise ParameterError("residues and moduli must have the same length")
    if not moduli:
        raise ParameterError("need at least one congruence")
    x, m = residues[0] % moduli[0], moduli[0]
    for r_i, m_i in zip(residues[1:], moduli[1:]):
        g = math.gcd(m, m_i)
        if g != 1:
            raise ParameterError("moduli must be pairwise coprime for CRT")
        # Solve x + m*t = r_i (mod m_i)  ->  t = (r_i - x) * m^{-1} (mod m_i)
        t = ((r_i - x) * modinv(m, m_i)) % m_i
        x = x + m * t
        m *= m_i
        x %= m
    return x


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd positive ``n``.

    Returns -1, 0 or +1.  Used by the primality tests and by parameter
    validation (checking that the Schnorr-group generator is not trivially a
    quadratic non-residue when it should generate the order-q subgroup).
    """
    if n <= 0 or n % 2 == 0:
        raise ParameterError("Jacobi symbol defined only for odd positive n")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def legendre(a: int, p: int) -> int:
    """Legendre symbol ``(a/p)`` for odd prime ``p`` (no primality check)."""
    return jacobi(a, p)


def is_quadratic_residue(a: int, p: int) -> bool:
    """Whether ``a`` is a non-zero quadratic residue modulo odd prime ``p``."""
    a %= p
    if a == 0:
        return False
    return pow(a, (p - 1) // 2, p) == 1


def product_mod(values: Iterable[int], modulus: int) -> int:
    """Product of ``values`` reduced modulo ``modulus``.

    This is the workhorse of the proposed protocol's batch operations:
    ``Z = prod z_i mod p``, ``T = prod t_i mod n``, ``prod s_i mod n`` and the
    Lemma 1 check ``prod X_i mod p``.
    """
    if modulus <= 0:
        raise ParameterError(f"modulus must be positive, got {modulus}")
    acc = 1
    for v in values:
        acc = (acc * v) % modulus
    return acc


class FixedBaseExp:
    """Fixed-base modular exponentiation via windowed precomputation.

    Every protocol's Round 1 computes ``z_i = g^{r_i} mod p`` for the *same*
    base ``g``; a scenario sweep over hundreds of members repeats that
    exponentiation thousands of times.  This class trades a one-time table of
    ``g^{j · 2^{w·i}} mod m`` (for every window digit ``j`` and block ``i``)
    for exponentiations that need only ``ceil(bits/w) - 1`` multiplications
    and **no squarings**: write ``e`` in base ``2^w`` as digits ``d_i``, then
    ``g^e = prod_i table[i][d_i]``.

    Results are exactly ``pow(base, exponent, modulus)`` — the tests assert
    bit-identity — and exponents wider than ``max_bits`` transparently fall
    back to builtin :func:`pow`.

    Parameters
    ----------
    base / modulus:
        The fixed base and modulus.
    max_bits:
        Largest exponent width the table covers (e.g. the subgroup order's
        bit length for a Schnorr group).
    window:
        Window width ``w`` in bits.  The table holds
        ``ceil(max_bits/w) · 2^w`` residues; ``w = 5`` keeps that near 1000
        entries for 160-bit exponents, amortising after a handful of calls.
    """

    __slots__ = ("base", "modulus", "window", "max_bits", "_mask", "_table")

    def __init__(self, base: int, modulus: int, max_bits: int, window: int = 5) -> None:
        if modulus <= 0:
            raise ParameterError(f"modulus must be positive, got {modulus}")
        if max_bits <= 0:
            raise ParameterError(f"max_bits must be positive, got {max_bits}")
        if not 1 <= window <= 16:
            raise ParameterError(f"window must be in [1, 16], got {window}")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self.max_bits = max_bits
        self._mask = (1 << window) - 1
        blocks = (max_bits + window - 1) // window
        table = []
        block_base = self.base
        for _ in range(blocks):
            row = [1] * (1 << window)
            row[1] = block_base
            for j in range(2, 1 << window):
                row[j] = (row[j - 1] * block_base) % modulus
            table.append(row)
            # The next block's base is block_base^(2^window).
            block_base = (row[-1] * block_base) % modulus
        self._table = table

    def pow(self, exponent: int) -> int:
        """``base ** exponent mod modulus``, identical to builtin ``pow``."""
        if exponent < 0:
            raise ParameterError("FixedBaseExp handles non-negative exponents only")
        if exponent >> self.max_bits:
            return pow(self.base, exponent, self.modulus)
        result = 1
        modulus = self.modulus
        mask = self._mask
        window = self.window
        for row in self._table:
            if exponent == 0:
                break
            digit = exponent & mask
            if digit:
                result = (result * row[digit]) % modulus
            exponent >>= window
        return result

    __call__ = pow


def multi_exp(bases: Sequence[int], exponents: Sequence[int], modulus: int) -> int:
    """Simultaneous multi-exponentiation ``prod bases[i]**exponents[i] mod modulus``.

    Uses Straus's interleaved square-and-multiply: one shared squaring chain
    over the widest exponent, multiplying in each base at its set bits.  For
    the Burmester–Desmedt key — one ``q``-sized exponent plus ``n - 1`` tiny
    exponents ``n-1, n-2, ..., 1`` — this replaces ``n`` independent
    exponentiations with a single pass, cutting the squaring work to that of
    the one wide exponent.

    Negative exponents are supported by inverting the base first (the
    protocols need this for ``(z_{i-1})^{-r_i}``-style terms).
    """
    if modulus <= 0:
        raise ParameterError(f"modulus must be positive, got {modulus}")
    if len(bases) != len(exponents):
        raise ParameterError("bases and exponents must have the same length")
    # Bucket pairs by exponent width (log-scale) so the many narrow exponents
    # of a BD key don't ride the single wide exponent's full squaring chain:
    # the buckets' chains are independent and their results simply multiply.
    buckets: dict = {}
    for base, exponent in zip(bases, exponents):
        if exponent < 0:
            base = modinv(base, modulus)
            exponent = -exponent
        if exponent == 0:
            continue
        width = exponent.bit_length()
        buckets.setdefault(width.bit_length(), []).append((base % modulus, exponent))
    result = 1 % modulus
    for pairs in buckets.values():
        acc = 1
        top = max(exponent.bit_length() for _, exponent in pairs)
        for bit in range(top - 1, -1, -1):
            acc = (acc * acc) % modulus
            for base, exponent in pairs:
                if (exponent >> bit) & 1:
                    acc = (acc * base) % modulus
        result = (result * acc) % modulus
    return result


def int_nth_root(x: int, n: int) -> int:
    """Floor of the n-th root of a non-negative integer ``x``."""
    if x < 0:
        raise ParameterError("x must be non-negative")
    if n <= 0:
        raise ParameterError("n must be positive")
    if x in (0, 1):
        return x
    hi = 1 << ((x.bit_length() + n - 1) // n + 1)
    lo = 0
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if mid**n <= x:
            lo = mid
        else:
            hi = mid - 1
    return lo


def is_perfect_square(x: int) -> bool:
    """Whether ``x`` is a perfect square (used by primality sanity checks)."""
    if x < 0:
        return False
    r = int_nth_root(x, 2)
    return r * r == x
