"""Number-theoretic substrate: modular arithmetic, primes, RNG, serialization.

This subpackage has no dependency on the rest of the library; everything else
(groups, signatures, protocols) is built on top of it.
"""

from .modular import (
    crt,
    egcd,
    gcd,
    is_perfect_square,
    is_quadratic_residue,
    int_nth_root,
    jacobi,
    lcm,
    legendre,
    modexp,
    modinv,
    product_mod,
)
from .primes import (
    RSAModulus,
    SMALL_PRIMES,
    generate_rsa_modulus,
    generate_schnorr_parameters,
    is_probable_prime,
    miller_rabin,
    next_prime,
    random_prime,
    random_safe_prime,
)
from .rand import DeterministicRNG, default_rng
from .serialization import (
    bit_size,
    byte_size,
    bytes_to_int,
    concat_bits,
    decode_fields,
    encode_fields,
    i2osp,
    int_to_bytes,
    os2ip,
)

__all__ = [
    # modular
    "crt",
    "egcd",
    "gcd",
    "is_perfect_square",
    "is_quadratic_residue",
    "int_nth_root",
    "jacobi",
    "lcm",
    "legendre",
    "modexp",
    "modinv",
    "product_mod",
    # primes
    "RSAModulus",
    "SMALL_PRIMES",
    "generate_rsa_modulus",
    "generate_schnorr_parameters",
    "is_probable_prime",
    "miller_rabin",
    "next_prime",
    "random_prime",
    "random_safe_prime",
    # rand
    "DeterministicRNG",
    "default_rng",
    # serialization
    "bit_size",
    "byte_size",
    "bytes_to_int",
    "concat_bits",
    "decode_fields",
    "encode_fields",
    "i2osp",
    "int_to_bytes",
    "os2ip",
]
