"""Wire-format helpers: integers <-> byte strings, length-prefixed records.

The energy analysis depends on *exact* message sizes (the paper charges
transmission and reception per bit, e.g. a GQ signature is ``s`` = 1024 bits
plus ``c`` = 160 bits), so every protocol message in the reproduction is
serialised through these helpers and its size measured in bits rather than
estimated.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..exceptions import SerializationError

__all__ = [
    "int_to_bytes",
    "bytes_to_int",
    "i2osp",
    "os2ip",
    "bit_size",
    "byte_size",
    "encode_fields",
    "decode_fields",
    "concat_bits",
]


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer big-endian.

    If ``length`` is omitted the minimal number of bytes is used (at least 1);
    if given, the value must fit and is left-padded with zeros — this is what
    fixes signature components to their nominal wire sizes.
    """
    if value < 0:
        raise SerializationError("cannot encode negative integers")
    minimal = max(1, (value.bit_length() + 7) // 8)
    if length is None:
        length = minimal
    elif length < minimal:
        raise SerializationError(f"value needs {minimal} bytes but only {length} allowed")
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into a non-negative integer."""
    return int.from_bytes(data, "big")


# RFC 8017 style aliases used by the signature code.
def i2osp(value: int, length: int) -> bytes:
    """Integer-to-Octet-String primitive (fixed length)."""
    return int_to_bytes(value, length)


def os2ip(data: bytes) -> int:
    """Octet-String-to-Integer primitive."""
    return bytes_to_int(data)


def bit_size(value: int | bytes) -> int:
    """Size of an integer (bit_length, min 1) or byte string (8 * len) in bits."""
    if isinstance(value, bytes):
        return 8 * len(value)
    if value < 0:
        raise SerializationError("bit_size of negative integers is undefined")
    return max(1, value.bit_length())


def byte_size(value: int | bytes) -> int:
    """Size in whole bytes (rounded up for integers)."""
    if isinstance(value, bytes):
        return len(value)
    return (bit_size(value) + 7) // 8


def encode_fields(fields: Sequence[bytes]) -> bytes:
    """Encode a sequence of byte strings with 4-byte length prefixes.

    This is the canonical unambiguous concatenation used wherever the paper
    writes ``a || b || c``: hashing the naive concatenation would allow
    boundary-shifting forgeries, so the library always hashes and transmits
    the length-prefixed form.
    """
    out = bytearray()
    out += len(fields).to_bytes(2, "big")
    for field in fields:
        if len(field) > 0xFFFFFFFF:
            raise SerializationError("field too long")
        out += len(field).to_bytes(4, "big")
        out += field
    return bytes(out)


def decode_fields(blob: bytes) -> List[bytes]:
    """Inverse of :func:`encode_fields`."""
    if len(blob) < 2:
        raise SerializationError("truncated record (missing field count)")
    count = int.from_bytes(blob[:2], "big")
    offset = 2
    fields: List[bytes] = []
    for _ in range(count):
        if offset + 4 > len(blob):
            raise SerializationError("truncated record (missing length prefix)")
        length = int.from_bytes(blob[offset : offset + 4], "big")
        offset += 4
        if offset + length > len(blob):
            raise SerializationError("truncated record (field shorter than declared)")
        fields.append(blob[offset : offset + length])
        offset += length
    if offset != len(blob):
        raise SerializationError("trailing bytes after final field")
    return fields


def concat_bits(sizes: Iterable[int]) -> int:
    """Sum a collection of bit sizes (tiny helper for message-size accounting)."""
    return sum(sizes)
