"""The hierarchical cluster-tree GKA protocol.

``cluster-tree[<sub>]`` partitions the group into clusters, runs the
registered flat protocol ``<sub>`` *inside* each cluster (scoped to the
cluster's members), and bridges the clusters through their leaders with the
contributory key tree of :mod:`repro.cluster.tree`.  Membership events rekey
only the affected cluster plus the O(log m) dirty path to the tree root:

* **join** — the joiner enters the nearest (mobility field) or smallest
  cluster, which re-runs the sub-protocol; oversized clusters split;
* **leave / partition** — each cluster that lost members re-runs the
  sub-protocol (leader loss therefore re-elects the leader: the new sub-ring
  controller is the new leader/gateway); clusters shrunk to one member are
  folded into the smallest surviving cluster;
* **merge** — the incoming members form new clusters appended on the tree's
  right spine.

Every other cluster keeps its key and its blinded-key cache; its members only
process the O(log m) fresh blinded keys.  The dense flat
:class:`~repro.core.base.GroupState` is replaced by the sparse
:class:`~repro.cluster.state.ClusterState`, which still satisfies the full
``GroupState`` contract, so the scenario runner, oracles, energy ledgers,
campaign runner and session façade work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.base import GroupState, PartyState, Protocol, ProtocolResult, SystemSetup
from ..core.registry import create_protocol, register_protocol, resolve_protocol
from ..engine.executor import EngineConfig, EngineStats, drive_plan
from ..engine.machine import MachinePlan
from ..exceptions import ParameterError, ProtocolError
from ..network.events import MembershipEvent, MergeEvent, membership_after
from ..network.medium import BroadcastMedium
from ..network.topology import RingTopology
from ..pki.identity import Identity
from .machines import ClusterCrew, ClusterMachine, TreeRun
from .partitioning import (
    auto_cluster_size,
    choose_join_cluster,
    chunk_members,
    geographic_clusters,
)
from .state import ClusterDef, ClusterState
from .tree import build_tree

__all__ = ["ClusterTreeProtocol"]

_SHORT_NAMES = {"bd-unauthenticated": "bd", "proposed-gka": "gka"}


@dataclass
class _Draft:
    """A cluster's planned shape for the run being built."""

    uid: int
    epoch: int
    members: List[Identity]
    rekey: bool
    prior_key: Optional[int] = None
    prior_sub_state: Optional[GroupState] = None

    @property
    def leader(self) -> Identity:
        return self.members[0]

    @property
    def size(self) -> int:
        return len(self.members)

    def mark_rekey(self) -> None:
        if not self.rekey:
            self.rekey = True
            self.epoch += 1
            self.prior_key = None
            self.prior_sub_state = None


class ClusterTreeProtocol(Protocol):
    """Hierarchical GKA: a flat sub-protocol per cluster plus a key tree."""

    supported_events = frozenset({"join", "leave", "merge", "partition"})

    def __init__(
        self,
        setup: SystemSetup,
        *,
        sub_protocol: str = "bd-unauthenticated",
        cluster_size: Optional[int] = None,
    ) -> None:
        super().__init__(setup)
        self.sub_protocol = resolve_protocol(sub_protocol)
        self.cluster_size = cluster_size
        short = _SHORT_NAMES.get(self.sub_protocol, self.sub_protocol)
        self.name = f"cluster-tree[{short}]"

    # ----------------------------------------------------------- establishment
    def build_machines(
        self,
        members: Sequence[Identity],
        *,
        medium: BroadcastMedium,
        seed: object = 0,
        **kwargs: object,
    ) -> MachinePlan:
        cluster_size = kwargs.pop("cluster_size", None) or self.cluster_size
        if kwargs:
            raise ParameterError(f"unknown run options: {sorted(kwargs)}")
        if len(members) < 2:
            raise ParameterError("the GKA needs at least two members")
        target = cluster_size or auto_cluster_size(len(members))
        field = getattr(medium, "field", None)
        if field is not None:
            chunks = geographic_clusters(members, target, field)
        else:
            chunks = chunk_members(members, target)
        drafts = [
            _Draft(uid=index, epoch=0, members=chunk, rekey=True)
            for index, chunk in enumerate(chunks)
        ]
        return self._plan(
            drafts,
            medium=medium,
            seed=seed,
            prior_bk={},
            prior_parties={},
            next_uid=len(drafts),
        )

    # ----------------------------------------------------------- shared plan
    def _plan(
        self,
        drafts: List[_Draft],
        *,
        medium: BroadcastMedium,
        seed: object,
        prior_bk: Dict[str, int],
        prior_parties: Dict[str, PartyState],
        next_uid: int,
    ) -> MachinePlan:
        from ..mathutils.rand import DeterministicRNG

        rng = DeterministicRNG(seed, label="cluster-tree")
        tree = build_tree([(d.uid, d.epoch, d.leader.name) for d in drafts])
        run = TreeRun(tree, prior_bk, self.setup)

        machines: List[ClusterMachine] = []
        crews: List[ClusterCrew] = []
        sub_plans: List[Tuple[_Draft, MachinePlan]] = []
        for draft in drafts:
            if draft.rekey:
                sub = create_protocol(self.sub_protocol, self.setup)
                sub_plan = sub.build_machines(
                    draft.members,
                    medium=medium,
                    seed=rng.derive_seed(f"sub/c{draft.uid}.e{draft.epoch}"),
                )
                sub_plans.append((draft, sub_plan))
                crew = ClusterCrew(
                    draft.uid, draft.epoch, draft.members, rekey=True
                )
                inner_by_name = {m.identity.name: m for m in sub_plan.machines}
                for member in draft.members:
                    inner = inner_by_name[member.name]
                    party = getattr(inner, "party", None)
                    if party is None:
                        raise ProtocolError(
                            f"sub-protocol {self.sub_protocol!r} machines carry no "
                            "party state; it cannot serve as a cluster sub-protocol"
                        )
                    machines.append(
                        ClusterMachine(party, self.setup, crew, run, inner=inner)
                    )
            else:
                crew = ClusterCrew(
                    draft.uid,
                    draft.epoch,
                    draft.members,
                    rekey=False,
                    cluster_key=draft.prior_key,
                )
                for member in draft.members:
                    party = prior_parties[member.name]
                    # Surviving members keep their node (and its ledger);
                    # re-attach in case the medium was replaced between events.
                    medium.attach(party.node)
                    machines.append(
                        ClusterMachine(party, self.setup, crew, run, inner=None)
                    )
            crews.append(crew)

        sub_rounds = max((plan.rounds for _, plan in sub_plans), default=0)
        total_rounds = sub_rounds + tree.depth

        def finish(stats: EngineStats) -> ProtocolResult:
            parties: Dict[str, PartyState] = {}
            clusters: List[ClusterDef] = []
            for draft, crew in zip(drafts, crews):
                sub_state = draft.prior_sub_state
                if draft.rekey:
                    sub_plan = next(p for d, p in sub_plans if d is draft)
                    sub_state = sub_plan.finish(stats).state
                    sub_state.group_key = crew.cluster_key
                    for name, party in sub_state.parties.items():
                        parties[name] = party
                else:
                    for member in draft.members:
                        parties[member.name] = prior_parties[member.name]
                clusters.append(
                    ClusterDef(
                        uid=draft.uid,
                        epoch=draft.epoch,
                        members=list(draft.members),
                        cluster_key=crew.cluster_key,
                        sub_state=sub_state,
                    )
                )
            bk_cache = {
                label: bk
                for label, bk in machines[0].bk.items()
                if label in tree.nodes
            }
            state = ClusterState.assemble(
                self.setup,
                clusters,
                parties,
                bk_cache=bk_cache,
                tree=tree,
                sub_protocol=self.sub_protocol,
                next_uid=next_uid,
            )
            state.group_key = machines[0].party.group_key
            return ProtocolResult(
                protocol=self.name,
                state=state,
                medium=medium,
                rounds=total_rounds,
                sim_latency_s=stats.sim_time_s,
                timeouts=stats.timeouts,
            )

        return MachinePlan(machines=machines, finish=finish, rounds=total_rounds)

    # ---------------------------------------------------------------- events
    def apply_event(
        self,
        state: GroupState,
        event: MembershipEvent,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        if not isinstance(state, ClusterState):
            # A foreign (flat) state: re-cluster from scratch.
            return super().apply_event(
                state, event, medium=medium, seed=seed, engine=engine
            )
        medium = medium if medium is not None else BroadcastMedium()
        field = getattr(medium, "field", None)
        drafts, departed, next_uid = self._transform(state, event, field)
        expected = {m.name for m in membership_after(state.members, event)}
        resulting = {m.name for d in drafts for m in d.members}
        if resulting != expected:
            raise ProtocolError(
                f"cluster transform for {event.kind!r} produced membership "
                f"{sorted(resulting)} instead of {sorted(expected)}"
            )
        for identity in departed:
            medium.detach(identity)
        plan = self._plan(
            drafts,
            medium=medium,
            seed=seed,
            prior_bk=state.bk_cache,
            prior_parties=state.parties,
            next_uid=next_uid,
        )
        return drive_plan(plan, medium, engine=engine)

    def _transform(
        self,
        state: ClusterState,
        event: MembershipEvent,
        field,
    ) -> Tuple[List[_Draft], List[Identity], int]:
        drafts = [
            _Draft(
                uid=c.uid,
                epoch=c.epoch,
                members=list(c.members),
                rekey=False,
                prior_key=c.cluster_key,
                prior_sub_state=c.sub_state,
            )
            for c in state.clusters
        ]
        next_uid = state.next_uid
        departed: List[Identity] = []
        kind = getattr(event, "kind", None)
        if kind not in self.supported_events:
            raise ParameterError(f"unsupported membership event: {event!r}")

        n_after = len(membership_after(state.members, event))
        target = self.cluster_size or auto_cluster_size(max(n_after, 2))

        if kind == "join":
            joiner = event.joining
            index = choose_join_cluster(drafts, joiner, field)
            draft = drafts[index]
            draft.members.append(joiner)
            draft.mark_rekey()
            if draft.size > 2 * target:
                # Split: the second half becomes a fresh cluster right of the
                # original, so only the shared ancestors go dirty.
                half = draft.size // 2
                moved = draft.members[half:]
                draft.members = draft.members[:half]
                drafts.insert(
                    index + 1,
                    _Draft(uid=next_uid, epoch=0, members=moved, rekey=True),
                )
                next_uid += 1
        elif kind == "leave":
            gone = {event.leaving.name}
            departed = [event.leaving]
            self._remove(drafts, gone)
        elif kind == "partition":
            gone = {identity.name for identity in event.leaving}
            departed = [m for m in state.members if m.name in gone]
            self._remove(drafts, gone)
        elif kind == "merge":
            incoming = list(event.other_group)
            if field is not None:
                chunks = geographic_clusters(incoming, target, field)
            elif len(incoming) >= 2:
                chunks = chunk_members(incoming, target)
            else:
                chunks = [incoming]
            for chunk in chunks:
                if len(chunk) == 1:
                    # A lone newcomer joins the smallest existing cluster.
                    smallest = min(drafts, key=lambda d: (d.size, d.uid))
                    smallest.members.extend(chunk)
                    smallest.mark_rekey()
                    continue
                drafts.append(
                    _Draft(uid=next_uid, epoch=0, members=chunk, rekey=True)
                )
                next_uid += 1

        drafts = [d for d in drafts if d.size > 0]
        # Fold clusters shrunk below sub-protocol viability into neighbours.
        while len(drafts) > 1 and any(d.size == 1 for d in drafts):
            lone = next(d for d in drafts if d.size == 1)
            drafts.remove(lone)
            host = min(drafts, key=lambda d: (d.size, d.uid))
            host.members.extend(lone.members)
            host.mark_rekey()
        total = sum(d.size for d in drafts)
        if total < 2:
            raise ParameterError(
                f"{event.kind!r} would leave {total} member(s); the GKA needs at least two"
            )
        return drafts, departed, next_uid

    @staticmethod
    def _remove(drafts: List[_Draft], gone: set) -> None:
        for draft in drafts:
            kept = [m for m in draft.members if m.name not in gone]
            if len(kept) != len(draft.members):
                draft.members = kept
                if draft.members:
                    draft.mark_rekey()

    # ----------------------------------------------------------------- merge
    def merge_states(
        self,
        state: GroupState,
        other: GroupState,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        if not isinstance(state, ClusterState):
            return super().merge_states(
                state, other, medium=medium, seed=seed, engine=engine
            )
        if medium is not None:
            for member in other.members:
                medium.detach(member)
        return self.apply_event(
            state,
            MergeEvent(tuple(other.members)),
            medium=medium,
            seed=seed,
            engine=engine,
        )

    def describe(self) -> str:
        size = self.cluster_size if self.cluster_size else "auto(sqrt n)"
        return (
            f"{self.name} (sub-protocol: {self.sub_protocol}, "
            f"cluster size: {size}, native dynamic events: "
            f"{', '.join(sorted(self.supported_events))})"
        )


register_protocol(
    "cluster-tree[bd]",
    lambda setup: ClusterTreeProtocol(setup, sub_protocol="bd-unauthenticated"),
    aliases=("cluster-bd",),
    tags=("cluster",),
)
register_protocol(
    "cluster-tree[gka]",
    lambda setup: ClusterTreeProtocol(setup, sub_protocol="proposed-gka"),
    aliases=("cluster-gka",),
    tags=("cluster",),
)
