"""Sparse per-cluster group state.

:class:`ClusterState` is the hierarchical replacement for the dense flat
:class:`~repro.core.base.GroupState`: instead of one ring over every member it
holds a list of :class:`ClusterDef` (each a small ring with its own cluster
key and epoch counter), the public blinded-key cache of the inter-cluster
tree, and the tree shape itself.  It *is* a ``GroupState`` — the flat ring it
exposes is the concatenation of the cluster rings — so the scenario runner,
the oracles, the session façade and the energy ledgers keep working
unchanged; only the dynamic protocols look inside the cluster structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.base import GroupState, PartyState, SystemSetup
from ..network.topology import RingTopology
from ..pki.identity import Identity
from .tree import ClusterTree, leaf_label

__all__ = ["ClusterDef", "ClusterState"]


@dataclass
class ClusterDef:
    """One cluster: a stable uid, its members in sub-ring order, and its key.

    ``epoch`` counts intra-cluster rekeys; the pair ``(uid, epoch)`` is the
    content label of the cluster's leaf in the key tree, so bumping the epoch
    is what dirties the leaf-to-root path.
    """

    uid: int
    epoch: int
    members: List[Identity]
    #: the key the intra-cluster sub-protocol agreed on (shared by the
    #: cluster's members only; seeds this cluster's leaf of the key tree)
    cluster_key: Optional[int] = None
    #: the sub-protocol's own view of this cluster (None until established)
    sub_state: Optional[GroupState] = None

    @property
    def leader(self) -> Identity:
        """The sub-ring controller; doubles as the cluster's tree gateway."""
        return self.members[0]

    @property
    def leaf(self) -> str:
        return leaf_label(self.uid, self.epoch)

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class ClusterState(GroupState):
    """A :class:`GroupState` whose collective state is per-cluster, not dense."""

    clusters: List[ClusterDef] = field(default_factory=list)
    #: public blinded keys by tree-node label, carried across events — the
    #: cache that makes "dirty" (label missing) mean "must rebroadcast"
    bk_cache: Dict[str, int] = field(default_factory=dict)
    #: the current key tree's public shape
    tree: Optional[ClusterTree] = None
    #: registry name of the intra-cluster sub-protocol
    sub_protocol: str = ""
    #: next unused cluster uid (uids are never reused within a state's lineage)
    next_uid: int = 0

    @classmethod
    def assemble(
        cls,
        setup: SystemSetup,
        clusters: List[ClusterDef],
        parties: Dict[str, PartyState],
        *,
        bk_cache: Dict[str, int],
        tree: ClusterTree,
        sub_protocol: str,
        next_uid: int,
    ) -> "ClusterState":
        flat = [member for cluster in clusters for member in cluster.members]
        state = cls(
            setup=setup,
            ring=RingTopology(flat),
            parties={m.name: parties[m.name] for m in flat},
            clusters=clusters,
            bk_cache=bk_cache,
            tree=tree,
            sub_protocol=sub_protocol,
            next_uid=next_uid,
        )
        return state

    def cluster_of(self, name: str) -> ClusterDef:
        """The cluster a member belongs to."""
        for cluster in self.clusters:
            if any(m.name == name for m in cluster.members):
                return cluster
        raise KeyError(name)

    def cluster_sizes(self) -> List[int]:
        return [cluster.size for cluster in self.clusters]

    def describe(self) -> str:
        sizes = "/".join(str(s) for s in self.cluster_sizes())
        return f"{self.size} members in {len(self.clusters)} clusters ({sizes})"
