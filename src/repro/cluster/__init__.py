"""Hierarchical cluster-based group key agreement (``repro.cluster``).

The subsystem behind the ``cluster-tree[...]`` registry protocols: sparse
per-cluster state (:mod:`~repro.cluster.state`), cluster assignment
strategies (:mod:`~repro.cluster.partitioning`), the contributory
inter-cluster key tree (:mod:`~repro.cluster.tree`), the per-party machines
(:mod:`~repro.cluster.machines`) and the
:class:`~repro.cluster.protocol.ClusterTreeProtocol` that composes them over
any registered flat protocol.  Importing this package registers
``cluster-tree[bd]`` and ``cluster-tree[gka]``.
"""

from .partitioning import (
    auto_cluster_size,
    choose_join_cluster,
    chunk_members,
    geographic_clusters,
)
from .protocol import ClusterTreeProtocol
from .state import ClusterDef, ClusterState
from .tree import ClusterTree, build_tree, leaf_label

__all__ = [
    "ClusterTreeProtocol",
    "ClusterDef",
    "ClusterState",
    "ClusterTree",
    "build_tree",
    "leaf_label",
    "auto_cluster_size",
    "choose_join_cluster",
    "chunk_members",
    "geographic_clusters",
]
