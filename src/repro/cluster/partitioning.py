"""Cluster assignment strategies.

Two deterministic strategies produce the initial partition:

* :func:`chunk_members` — balanced contiguous chunks in ring order (the
  default, and the only option when no mobility field is present);
* :func:`geographic_clusters` — when the medium carries a mobility field,
  members are greedily grouped with their nearest unassigned neighbours, so
  clusters align with radio locality and intra-cluster traffic stays local.

Join placement (:func:`choose_join_cluster`) follows the same rule: nearest
cluster leader when positions are known, smallest cluster otherwise.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..pki.identity import Identity

__all__ = [
    "auto_cluster_size",
    "chunk_members",
    "geographic_clusters",
    "choose_join_cluster",
]


def auto_cluster_size(n: int) -> int:
    """The default target cluster size: ``max(2, isqrt(n))``.

    Splitting n members into ~sqrt(n) clusters of ~sqrt(n) balances the two
    rekey cost terms (one intra-cluster sub-run of size ``s`` plus the
    O(log(n/s)) tree path), and keeps even small test groups multi-cluster so
    the tree phase is always exercised.
    """
    return max(2, math.isqrt(max(n, 1)))


def chunk_members(members: Sequence[Identity], target_size: int) -> List[List[Identity]]:
    """Split ``members`` into balanced contiguous chunks of ~``target_size``.

    Chunk sizes differ by at most one and never drop below two (a lone member
    cannot run a sub-protocol), so the count is chosen as the nearest viable
    divisor rather than a strict ceiling.
    """
    n = len(members)
    if n < 2:
        raise ValueError("need at least two members to cluster")
    target = max(2, target_size)
    count = max(1, min(n // 2, round(n / target)))
    base, extra = divmod(n, count)
    chunks: List[List[Identity]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        chunks.append(list(members[start:start + size]))
        start += size
    return chunks


def geographic_clusters(
    members: Sequence[Identity], target_size: int, field
) -> List[List[Identity]]:
    """Greedy locality clustering over a mobility field's current positions.

    Repeatedly take the unassigned member closest to the origin-most corner as
    an anchor and group it with its nearest unassigned neighbours.  Falls back
    to :func:`chunk_members` for members the field does not know about.
    """
    known = [m for m in members if m.name in field]
    unknown = [m for m in members if m.name not in field]
    if len(known) < 2:
        return chunk_members(members, target_size)

    sizes = [len(chunk) for chunk in chunk_members(known, target_size)]
    remaining = list(known)
    clusters: List[List[Identity]] = []
    for size in sizes:
        # Deterministic anchor: lexicographically smallest (x, y, name).
        anchor = min(
            remaining,
            key=lambda m: (field.position(m.name).x, field.position(m.name).y, m.name),
        )
        by_distance = sorted(
            remaining,
            key=lambda m: (field.distance(anchor.name, m.name), m.name),
        )
        chosen = by_distance[:size]
        clusters.append(chosen)
        chosen_names = {m.name for m in chosen}
        remaining = [m for m in remaining if m.name not in chosen_names]
    if unknown:
        # Members without a position ride the last (nearest-by-default) cluster.
        clusters[-1].extend(unknown)
    return clusters


def choose_join_cluster(clusters, joiner: Identity, field=None) -> int:
    """Index of the cluster a joiner should enter.

    Nearest leader when both the joiner and leaders have known positions,
    otherwise the smallest cluster (ties to the lowest index, i.e. the oldest
    cluster — deterministic either way).
    """
    if field is not None and joiner.name in field:
        placed = [
            (field.distance(joiner.name, cluster.leader.name), index)
            for index, cluster in enumerate(clusters)
            if cluster.leader.name in field
        ]
        if placed:
            return min(placed)[1]
    sizes = [(cluster.size, index) for index, cluster in enumerate(clusters)]
    return min(sizes)[1]
