"""Per-party machines for the hierarchical cluster-tree GKA.

One :class:`_ClusterMachine` per member drives two phases on the event kernel:

1. **Sub-protocol phase** (rekeying clusters only): the member's machine from
   the intra-cluster sub-protocol runs *wrapped* — outbound round labels are
   prefixed with the cluster scope (``ct/<uid>.e<epoch>/``) and broadcasts are
   narrowed to the cluster's members, so concurrent sub-runs in different
   clusters never collide and only cluster members are charged for the
   traffic.  Inbound scoped messages are unwrapped and delegated.
2. **Tree phase** (every member): starting from the cluster key, walk the
   leaf-to-root path of :mod:`repro.cluster.tree`, combining the sibling
   blinded keys; representatives broadcast the blinded key of every *dirty*
   node they cover (``ct-bk/<label>``), and the root representative closes the
   run with a key-confirmation digest (``ct-confirm/<label>``).  A member
   whose computed root key contradicts the confirmation aborts with
   :class:`~repro.exceptions.KeyConfirmationError` — under an active
   adversary that abort is scored as *detection*.

Timeout recovery needs no custom logic: every tree message's round label is
unique and stored in ``sent``, so the executor's "all members retransmit the
stalled round" default re-broadcasts exactly the missing blinded key.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional

from ..core.base import PartyState, SystemSetup
from ..engine.machine import Outbound, PartyMachine
from ..exceptions import KeyConfirmationError, ProtocolError
from ..network.message import Message, group_element_part, identity_part
from ..pki.identity import Identity
from .tree import ClusterTree

__all__ = ["ClusterCrew", "TreeRun", "ClusterMachine"]

BK_PREFIX = "ct-bk/"
CONFIRM_PREFIX = "ct-confirm/"

#: wake payload asking a wrapper to re-check whether its inner machine
#: finished (a shared sub-protocol coordinator can finish machines whose
#: wrappers got no hook call)
_CHECK_INNER = "cluster-check-inner"


@dataclass(frozen=True)
class _InnerWake:
    """A sub-protocol coordinator wake-up routed through the wrapper."""

    payload: object


class _InnerContext:
    """The context the wrapped sub-protocol machines see.

    Sub-protocol coordinators call ``machine.context.wake(machine, payload)``
    on their *own* machines; this shim reroutes that to the wrapper so the
    kernel schedules the wrapper (which delegates back down).
    """

    def __init__(self, crew: "ClusterCrew") -> None:
        self._crew = crew

    def wake(self, inner: PartyMachine, payload: object) -> None:
        wrapper = self._crew.wrapper_by_inner[id(inner)]
        wrapper.context.wake(wrapper, _InnerWake(payload))


class ClusterCrew:
    """Shared per-cluster run state: scope, membership, the agreed key."""

    def __init__(
        self,
        uid: int,
        epoch: int,
        members: List[Identity],
        *,
        rekey: bool,
        cluster_key: Optional[int] = None,
    ) -> None:
        self.uid = uid
        self.epoch = epoch
        self.members = list(members)
        self.rekey = rekey
        #: known up-front for unaffected clusters; set at sub-run completion
        #: for rekeying ones
        self.cluster_key = cluster_key
        self.scope = f"ct/{uid}.e{epoch}/"
        self.leader = members[0]
        self.wrappers: List["ClusterMachine"] = []
        self.wrapper_by_inner: Dict[int, "ClusterMachine"] = {}
        self.inner_context = _InnerContext(self)

    def adopt(self, wrapper: "ClusterMachine") -> None:
        self.wrappers.append(wrapper)
        if wrapper.inner is not None:
            self.wrapper_by_inner[id(wrapper.inner)] = wrapper
            wrapper.inner.context = self.inner_context

    @property
    def recipients(self) -> tuple:
        return tuple(self.members)


class TreeRun:
    """Shared public context of one run's tree phase."""

    def __init__(
        self,
        tree: ClusterTree,
        prior_bk: Dict[str, int],
        setup: SystemSetup,
    ) -> None:
        self.tree = tree
        self.setup = setup
        #: blinded keys carried over from the previous run, limited to labels
        #: still present in this run's tree (the "clean" nodes)
        self.carried = {
            label: bk for label, bk in prior_bk.items() if label in tree.nodes
        }
        #: labels whose blinded keys must be recomputed and rebroadcast
        self.dirty = frozenset(tree.dirty_labels(self.carried))

    def confirm_digest(self, root_key: int) -> int:
        hf = self.setup.hash_function
        return hf.digest_int(
            b"cluster-confirm",
            self.tree.root_label.encode(),
            root_key.to_bytes((root_key.bit_length() + 7) // 8 or 1, "big"),
        )


class ClusterMachine(PartyMachine):
    """One member's view of a hierarchical cluster-tree run."""

    def __init__(
        self,
        party: PartyState,
        setup: SystemSetup,
        crew: ClusterCrew,
        run: TreeRun,
        inner: Optional[PartyMachine] = None,
    ) -> None:
        super().__init__(party.identity, party.node)
        self.party = party
        self.setup = setup
        self.crew = crew
        self.run = run
        self.inner = inner
        #: this member's view of the blinded-key table
        self.bk: Dict[str, int] = dict(run.carried)
        #: secret exponents along this member's leaf-to-root path
        self._secrets: Dict[str, int] = {}
        self._path = run.tree.path_from_leaf(self._leaf_label())
        self._in_tree = False
        self._root_key: Optional[int] = None
        self._confirm_expected: Optional[int] = None
        self._pending_confirm: Optional[int] = None
        crew.adopt(self)

    # ----------------------------------------------------------------- hooks
    def start(self, now: float) -> List[Outbound]:
        if self.inner is not None:
            return self._after_inner(self.inner.start(now), now)
        # Unaffected cluster: the key is already shared; go straight to the tree.
        return self._enter_tree(now)

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        label = message.round_label
        if label.startswith(self.crew.scope):
            if self.inner is None:
                return []
            unscoped = dc_replace(message, round_label=label[len(self.crew.scope):])
            return self._after_inner(self.inner.on_message(unscoped, now), now)
        if label.startswith(BK_PREFIX):
            node_label = label[len(BK_PREFIX):]
            if node_label in self.run.tree.nodes and node_label not in self.bk:
                self.bk[node_label] = int(message.value("bk"))
                if self._in_tree and not self.finished:
                    return self._advance(now)
            return []
        if label.startswith(CONFIRM_PREFIX):
            if label[len(CONFIRM_PREFIX):] == self.run.tree.root_label:
                self._pending_confirm = int(message.value("confirm"))
                if self._root_key is not None and not self.finished:
                    self._check_confirm()
            return []
        return []

    def on_wake(self, payload: object, now: float) -> List[Outbound]:
        if isinstance(payload, _InnerWake) and self.inner is not None:
            return self._after_inner(self.inner.on_wake(payload.payload, now), now)
        if payload == _CHECK_INNER:
            if (
                self.inner is not None
                and self.inner.finished
                and not self._in_tree
            ):
                return self._enter_tree(now)
        return []

    # ------------------------------------------------------ sub-run plumbing
    def _after_inner(self, outbounds: List[Outbound], now: float) -> List[Outbound]:
        wrapped = [
            Outbound(
                dc_replace(
                    out.message,
                    round_label=self.crew.scope + out.message.round_label,
                    recipients=(
                        self.crew.recipients
                        if out.message.recipients is None
                        else out.message.recipients
                    ),
                )
            )
            for out in outbounds
        ]
        if self.inner.finished and not self._in_tree:
            # A shared coordinator may have finished cluster-mates whose
            # wrappers got no hook — nudge them to check.
            for mate in self.crew.wrappers:
                if mate is not self and not mate._in_tree and mate.context is not None:
                    self.context.wake(mate, _CHECK_INNER)
            wrapped.extend(self._enter_tree(now))
        elif not self.finished:
            inner_waiting = self.inner.waiting_for
            self.waiting_for = (
                self.crew.scope + inner_waiting if inner_waiting else self.waiting_for
            )
        return wrapped

    # ------------------------------------------------------------ tree phase
    def _leaf_label(self) -> str:
        from .tree import leaf_label

        return leaf_label(self.crew.uid, self.crew.epoch)

    def _enter_tree(self, now: float) -> List[Outbound]:
        self._in_tree = True
        if self.crew.rekey and self.crew.cluster_key is None:
            self.crew.cluster_key = self.party.group_key
        key = self.crew.cluster_key if not self.crew.rekey else self.party.group_key
        if key is None:
            raise ProtocolError(
                f"cluster c{self.crew.uid} entered the tree phase without a cluster key"
            )
        group = self.setup.group
        hf = self.setup.hash_function
        leaf = self._path[0]
        k_leaf = hf.hash_to_zq(
            b"cluster-leaf",
            leaf.label.encode(),
            key.to_bytes((key.bit_length() + 7) // 8 or 1, "big"),
            q=group.q,
        )
        self.party.recorder.record_operation("hash")
        self._secrets[leaf.label] = k_leaf
        outs: List[Outbound] = []
        if (
            leaf.rep_name == self.identity.name
            and leaf.label in self.run.dirty
            and leaf.label != self.run.tree.root_label
            and leaf.label not in self.bk
        ):
            bk = group.exp_g(k_leaf)
            self.party.recorder.record_operation("modexp")
            self.bk[leaf.label] = bk
            outs.append(self._bk_message(leaf.label, bk))
        outs.extend(self._advance(now))
        return outs

    def _advance(self, now: float) -> List[Outbound]:
        group = self.setup.group
        hf = self.setup.hash_function
        tree = self.run.tree
        outs: List[Outbound] = []
        for child, node in zip(self._path, self._path[1:]):
            if node.label in self._secrets:
                continue
            sibling = tree.sibling(child.label)
            if sibling not in self.bk:
                self.waiting_for = BK_PREFIX + sibling
                return outs
            shared = group.power(self.bk[sibling], self._secrets[child.label])
            self.party.recorder.record_operation("modexp")
            k_node = hf.hash_to_zq(
                b"cluster-node",
                node.label.encode(),
                shared.to_bytes((shared.bit_length() + 7) // 8 or 1, "big"),
                q=group.q,
            )
            self.party.recorder.record_operation("hash")
            self._secrets[node.label] = k_node
            if (
                node.rep_name == self.identity.name
                and node.label in self.run.dirty
                and node.label != tree.root_label
                and node.label not in self.bk
            ):
                bk = group.exp_g(k_node)
                self.party.recorder.record_operation("modexp")
                self.bk[node.label] = bk
                outs.append(self._bk_message(node.label, bk))
        outs.extend(self._complete())
        return outs

    def _complete(self) -> List[Outbound]:
        tree = self.run.tree
        root_label = tree.root_label
        if self._root_key is None:
            group = self.setup.group
            self._root_key = group.exp_g(self._secrets[root_label])
            self.party.recorder.record_operation("modexp")
            self.party.group_key = self._root_key
        if self._confirm_expected is None:
            self._confirm_expected = self.run.confirm_digest(self._root_key)
            self.party.recorder.record_operation("hash")
        digest = self._confirm_expected
        if tree.nodes[root_label].rep_name == self.identity.name:
            message = Message.broadcast(
                self.identity,
                CONFIRM_PREFIX + root_label,
                [
                    identity_part(self.identity),
                    group_element_part(
                        "confirm", digest, self.setup.hash_function.output_bits
                    ),
                ],
            )
            self.finished = True
            self.waiting_for = None
            return [Outbound(message)]
        if self._pending_confirm is not None:
            self._check_confirm()
        else:
            self.waiting_for = CONFIRM_PREFIX + root_label
        return []

    def _check_confirm(self) -> None:
        expected = self._confirm_expected
        if expected is None:
            expected = self._confirm_expected = self.run.confirm_digest(self._root_key)
            self.party.recorder.record_operation("hash")
        if self._pending_confirm != expected:
            raise KeyConfirmationError(
                f"{self.identity.name}: cluster-tree key confirmation failed "
                f"(root {self.run.tree.root_label})"
            )
        self.finished = True
        self.waiting_for = None

    def _bk_message(self, node_label: str, bk: int) -> Outbound:
        return Outbound(
            Message.broadcast(
                self.identity,
                BK_PREFIX + node_label,
                [
                    identity_part(self.identity),
                    group_element_part("bk", bk, self.setup.group.element_bits),
                ],
            )
        )
