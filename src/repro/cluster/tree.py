"""The inter-cluster key tree: content-labelled binary tree over clusters.

Clusters are the leaves; every internal node holds a contributory
Diffie-Hellman secret combining its two children, TGDH-style:

* leaf secret exponent ``k_leaf = H(K_c, uid, epoch) mod q`` (``K_c`` the
  cluster key the intra-cluster sub-protocol agreed on);
* blinded key ``BK(v) = g^{k_v}`` — the only tree value ever transmitted;
* internal secret ``s_v = BK(other child)^{k(own child)} = g^{k_l · k_r}``,
  flattened back to an exponent ``k_v = H(label_v, s_v) mod q``;
* the group key is ``g^{k_root}`` — never transmitted, so a passive observer
  holding every broadcast ``BK`` still faces CDH.

Node labels are *content-based*: a leaf is labelled by ``(uid, epoch)`` and an
internal node by a hash of its children's labels, so a node's label changes
exactly when the key material beneath it changes.  "Dirty" (label not in the
previous run's blinded-key cache) therefore marks precisely the nodes that
must be recomputed and rebroadcast — for a single join/leave that is the
O(log m) leaf-to-root path, however the tree was reshaped.

The tree is *leftist*: the left subtree takes the largest power of two below
the leaf count, so appending clusters (merge) only dirties the right spine.

Everything here is pure data and arithmetic — no machines, no medium; the
per-party machines in :mod:`repro.cluster.machines` walk these structures.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TreeNode", "ClusterTree", "build_tree", "leaf_label"]


def leaf_label(uid: int, epoch: int) -> str:
    """The content label of a cluster's leaf (changes on every rekey)."""
    return f"c{uid}.e{epoch}"


def _internal_label(left: str, right: str) -> str:
    digest = hashlib.sha256(f"{left}|{right}".encode()).hexdigest()
    return f"n{digest[:16]}"


@dataclass(frozen=True)
class TreeNode:
    """One node of the key tree (public structure only, no secrets)."""

    label: str
    #: child labels (None for a leaf)
    left: Optional[str]
    right: Optional[str]
    #: the cluster uid at a leaf (None for internal nodes)
    cluster_uid: Optional[int]
    #: identity name of the representative: the leader of the leftmost
    #: cluster underneath — the member that broadcasts ``BK`` for this node
    rep_name: str

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class ClusterTree:
    """The public shape of one run's key tree plus path lookups."""

    def __init__(self, nodes: Dict[str, TreeNode], root: str, leaf_order: Sequence[str]) -> None:
        self.nodes = nodes
        self.root_label = root
        #: leaf labels in cluster order
        self.leaf_order = list(leaf_order)
        self._parent: Dict[str, str] = {}
        self._sibling: Dict[str, str] = {}
        for node in nodes.values():
            if node.left is not None:
                self._parent[node.left] = node.label
                self._parent[node.right] = node.label
                self._sibling[node.left] = node.right
                self._sibling[node.right] = node.left

    def path_from_leaf(self, leaf: str) -> List[TreeNode]:
        """Leaf-to-root node chain (the leaf first, the root last)."""
        chain = [self.nodes[leaf]]
        label = leaf
        while label != self.root_label:
            label = self._parent[label]
            chain.append(self.nodes[label])
        return chain

    def sibling(self, label: str) -> Optional[str]:
        """The other child of ``label``'s parent (None at the root)."""
        return self._sibling.get(label)

    def dirty_labels(self, cache: Dict[str, int]) -> List[str]:
        """Labels absent from the previous run's blinded-key cache."""
        return [label for label in self.nodes if label not in cache]

    @property
    def depth(self) -> int:
        """Longest leaf-to-root path length (1 for a single-cluster tree)."""
        return max(len(self.path_from_leaf(leaf)) for leaf in self.leaf_order)


def build_tree(leaves: Sequence[Tuple[int, int, str]]) -> ClusterTree:
    """Build the leftist tree over ``(uid, epoch, leader_name)`` leaves."""
    if not leaves:
        raise ValueError("a cluster tree needs at least one leaf")
    nodes: Dict[str, TreeNode] = {}

    def _build(lo: int, hi: int) -> TreeNode:
        if hi - lo == 1:
            uid, epoch, leader = leaves[lo]
            node = TreeNode(
                label=leaf_label(uid, epoch),
                left=None,
                right=None,
                cluster_uid=uid,
                rep_name=leader,
            )
            nodes[node.label] = node
            return node
        split = 1
        while split * 2 < hi - lo:
            split *= 2
        left = _build(lo, lo + split)
        right = _build(lo + split, hi)
        node = TreeNode(
            label=_internal_label(left.label, right.label),
            left=left.label,
            right=right.label,
            cluster_uid=None,
            rep_name=left.rep_name,
        )
        nodes[node.label] = node
        return node

    root = _build(0, len(leaves))
    return ClusterTree(nodes, root.label, [leaf_label(u, e) for u, e, _ in leaves])
