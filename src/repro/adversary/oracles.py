"""Security-property oracles evaluated after every scenario step.

The energy tables say what a protocol *costs*; these oracles say what it
*buys*.  After each step of a scenario the runner assembles an
:class:`OracleContext` — the post-step group state, the chain of keys agreed
so far, the keys known to members who have departed, and the adversary's
doings — and every oracle returns a verdict:

``True``
    the property held on this step;
``False``
    the property was violated — the headline result when it happens
    silently (unauthenticated BD under active injection);
``None``
    not applicable (e.g. forward secrecy before anyone has left).

The library set:

* :class:`KeyConsistency` — every member holds the same non-null key.
* :class:`ForwardSecrecy` — once members have departed, no later key may
  equal any key those members ever held (checked over the whole
  leave/join/rekey chain, not just the departure step).
* :class:`BackwardSecrecy` — a step that admits members must produce a key
  different from every previously used key, so joiners cannot read old
  traffic.
* :class:`ImplicitKeyAuthentication` — the adversary (eavesdropper included,
  stolen long-term keys included) cannot produce the agreed key.
* :class:`AttackDetected` — when the adversary tampered with this step, the
  protocol must have either aborted (detection) or still reached a
  consistent key (resistance); completing *wrong* without noticing is the
  failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

__all__ = [
    "ORACLE_NAMES",
    "OracleContext",
    "SecurityOracle",
    "KeyConsistency",
    "ForwardSecrecy",
    "BackwardSecrecy",
    "ImplicitKeyAuthentication",
    "AttackDetected",
    "default_oracles",
    "evaluate_oracles",
]


@dataclass(frozen=True)
class OracleContext:
    """Everything the oracles may look at after one scenario step."""

    #: event kind (``establish``/``join``/``leave``/``merge``/``partition``)
    kind: str
    #: step index (0 = establishment)
    index: int
    #: post-step group state (the *pre*-step state after an abort), or None
    state: Optional[object]
    #: every member holds the same non-null key
    agreed: bool
    #: the agreed key (None on disagreement or abort)
    key: Optional[int]
    #: keys agreed on *previous* steps, oldest first
    previous_keys: Tuple[int, ...] = ()
    #: keys known to members who have departed at any point so far
    departed_keys: FrozenSet[int] = frozenset()
    #: this step admitted members (join/merge)
    added_members: bool = False
    #: this step removed members (leave/partition)
    removed_members: bool = False
    #: the adversary suite, when one is configured
    adversary: Optional[object] = None
    #: message-level attack actions during this step
    attacks: int = 0
    #: the protocol aborted this step with an error
    aborted: bool = False
    #: the abort reason, when aborted
    error: str = ""


class SecurityOracle:
    """One mechanically checkable security property."""

    name = ""

    def evaluate(self, ctx: OracleContext) -> Optional[bool]:
        """Verdict for one step (``None`` when the property does not apply)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line summary used in reports."""
        return self.name


class KeyConsistency(SecurityOracle):
    """All members agree on one non-null group key after the step."""

    name = "key-consistency"

    def evaluate(self, ctx: OracleContext) -> Optional[bool]:
        if ctx.aborted:
            # The step never completed; the detection story belongs to
            # AttackDetected, not to a consistency verdict over missing keys.
            return None
        return ctx.agreed


class ForwardSecrecy(SecurityOracle):
    """Departed members must never learn a later key.

    Mechanised as key freshness over the whole chain: every key agreed after
    any departure must differ from every key the departed members held while
    they were inside.  (The stronger computational claim — that the departed
    state cannot *derive* the new key — is exercised separately by the
    property-based tests on the Leave/Partition algebra.)
    """

    name = "forward-secrecy"

    def evaluate(self, ctx: OracleContext) -> Optional[bool]:
        if ctx.aborted or not ctx.departed_keys or ctx.key is None:
            return None
        return ctx.key not in ctx.departed_keys


class BackwardSecrecy(SecurityOracle):
    """Newly admitted members must not be able to read earlier traffic."""

    name = "backward-secrecy"

    def evaluate(self, ctx: OracleContext) -> Optional[bool]:
        if ctx.aborted or not ctx.added_members or ctx.key is None:
            return None
        return ctx.key not in ctx.previous_keys


class ImplicitKeyAuthentication(SecurityOracle):
    """Nobody outside the group — the adversary included — holds the key."""

    name = "implicit-key-auth"

    def evaluate(self, ctx: OracleContext) -> Optional[bool]:
        if ctx.aborted or ctx.adversary is None or ctx.key is None:
            return None
        return not ctx.adversary.knows_key(ctx.key)


class AttackDetected(SecurityOracle):
    """Tampering must be detected (abort) or survived (consistent key).

    ``False`` is the silent break: the adversary tampered, the protocol ran
    to completion, and the members walked away with inconsistent keys and no
    idea anything happened.
    """

    name = "attack-detected"

    def evaluate(self, ctx: OracleContext) -> Optional[bool]:
        if ctx.attacks <= 0:
            return None
        if ctx.aborted:
            return True
        return ctx.agreed


#: The library oracle set, in evaluation (and report-column) order.
_DEFAULT = (
    KeyConsistency(),
    ForwardSecrecy(),
    BackwardSecrecy(),
    ImplicitKeyAuthentication(),
    AttackDetected(),
)

#: Canonical oracle names, in report-column order.
ORACLE_NAMES = tuple(oracle.name for oracle in _DEFAULT)


def default_oracles() -> Tuple[SecurityOracle, ...]:
    """The library's oracle set (a fresh tuple; oracles are stateless)."""
    return _DEFAULT


def evaluate_oracles(ctx: OracleContext) -> Dict[str, Optional[bool]]:
    """All default oracles over one context, keyed by oracle name."""
    return {oracle.name: oracle.evaluate(ctx) for oracle in _DEFAULT}
