"""``repro.adversary`` — active attackers and security-property oracles.

The paper's pitch is *authenticated* group keys at MANET-friendly energy;
the rest of the library measures the energy, this subsystem checks the
authentication.  It has three layers:

* :mod:`repro.adversary.actors` — attacker actors co-scheduled with the
  party machines on the event kernel: a passive :class:`Eavesdropper`, and
  active :class:`Injector` / :class:`Replayer` / :class:`ManInTheMiddle`
  (modify, drop or delay in flight) / :class:`Compromiser` (long-term key
  theft) models, bundled into an :class:`AdversarySuite` the executor
  consults on every transmission;
* :mod:`repro.adversary.oracles` — per-step security verdicts
  (:class:`KeyConsistency`, :class:`ForwardSecrecy`,
  :class:`BackwardSecrecy`, :class:`ImplicitKeyAuthentication`,
  :class:`AttackDetected`) the scenario runner records next to the energy
  numbers;
* :mod:`repro.adversary.matrix` — :func:`run_attack_matrix`, the
  protocol × attacker survival matrix distilled into a
  :class:`SecurityReport`.

Quickstart::

    from repro import SystemSetup
    from repro.adversary import AdversaryConfig, run_attack_matrix
    from repro.sim import PoissonChurn, Scenario, ScenarioRunner

    setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
    scenario = Scenario(
        name="under-attack", initial_size=6,
        schedule=PoissonChurn(length=4), seed=7,
        adversary=AdversaryConfig.preset("inject"),
    )
    report = ScenarioRunner(setup).run("bd", scenario)
    print(report.security_verdict)        # 'broken' — plain BD falls
    print(run_attack_matrix(setup).matrix_table())
"""

from .actors import (
    AdversarySuite,
    AttackStats,
    AttackerActor,
    Compromiser,
    Eavesdropper,
    Injector,
    Interception,
    ManInTheMiddle,
    Replayer,
)
from .config import ATTACKER_PRESETS, AdversaryConfig
from .matrix import (
    AttackOutcome,
    SecurityReport,
    classify_report,
    default_attackers,
    run_attack_matrix,
)
from .oracles import (
    ORACLE_NAMES,
    AttackDetected,
    BackwardSecrecy,
    ForwardSecrecy,
    ImplicitKeyAuthentication,
    KeyConsistency,
    OracleContext,
    SecurityOracle,
    default_oracles,
    evaluate_oracles,
)

__all__ = [
    "ATTACKER_PRESETS",
    "ORACLE_NAMES",
    "AdversaryConfig",
    "AdversarySuite",
    "AttackDetected",
    "AttackOutcome",
    "AttackStats",
    "AttackerActor",
    "BackwardSecrecy",
    "Compromiser",
    "Eavesdropper",
    "ForwardSecrecy",
    "ImplicitKeyAuthentication",
    "Injector",
    "Interception",
    "KeyConsistency",
    "ManInTheMiddle",
    "OracleContext",
    "Replayer",
    "SecurityOracle",
    "SecurityReport",
    "classify_report",
    "default_attackers",
    "default_oracles",
    "evaluate_oracles",
    "run_attack_matrix",
]
