"""The protocol × attacker survival matrix.

:func:`run_attack_matrix` drives every requested protocol through the same
scenario once per attacker model (plus a no-adversary baseline column) and
classifies each run from its :class:`~repro.sim.report.ScenarioReport`:

``clean``
    no attack actions fired (the baseline column, or an attacker whose
    trigger never matched);
``resisted``
    the adversary acted, the protocol absorbed it and still agreed on
    consistent keys everywhere (e.g. the proposed GKA's retransmission
    recovery);
``detected``
    the protocol noticed the attack and aborted the affected step;
``broken``
    the adversary acted, the run completed, and the members disagree on the
    key without anyone noticing — the silent failure unauthenticated BD
    exhibits under active injection;
``leaked``
    the adversary can produce the agreed group key (no protocol in this
    library may ever earn this one).

The result is a :class:`SecurityReport` that renders as the README's
survival matrix and exports to CSV/JSON for CI trend lines.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import ParameterError, ProtocolError
from .config import ATTACKER_PRESETS, AdversaryConfig

__all__ = [
    "AttackOutcome",
    "SecurityReport",
    "default_attackers",
    "classify_report",
    "run_attack_matrix",
]

#: Verdicts ordered from best to worst for a protocol under attack.
VERDICTS = ("clean", "resisted", "detected", "broken", "leaked")


@dataclass(frozen=True)
class AttackOutcome:
    """One cell of the matrix: one protocol under one attacker model."""

    protocol: str
    attacker: str
    verdict: str
    attacks: int
    detail: str = ""


def classify_report(report) -> "tuple[str, str]":
    """(verdict, detail) for one :class:`~repro.sim.report.ScenarioReport`.

    The verdict is :attr:`~repro.sim.report.ScenarioReport.security_verdict`
    — the single source of truth also exported in the comparison CSV/JSON —
    and this function only adds the human-readable detail string naming the
    step that sealed the cell's fate.
    """
    verdict = report.security_verdict
    if verdict == "leaked":
        for record in report.records:
            if record.oracles.get("implicit-key-auth") is False:
                return verdict, (
                    f"adversary derived the key at step {record.index} ({record.kind})"
                )
    if verdict == "broken":
        for record in report.records:
            if record.oracles.get("key-consistency") is False and not record.detected:
                return verdict, (
                    f"inconsistent keys after step {record.index} ({record.kind}), undetected"
                )
    if verdict == "detected":
        for record in report.records:
            if record.detected:
                return verdict, record.abort_reason or f"aborted step {record.index}"
    if verdict == "resisted":
        return verdict, f"{report.total_attacks} attack action(s) absorbed"
    return verdict, ""


def default_attackers() -> Dict[str, AdversaryConfig]:
    """The survey columns: every preset, in canonical order."""
    return {name: AdversaryConfig.preset(name) for name in ATTACKER_PRESETS}


@dataclass
class SecurityReport:
    """Which protocols survive which attackers, for one scenario."""

    scenario_name: str
    scenario_description: str
    outcomes: List[AttackOutcome]

    # -------------------------------------------------------------- accessors
    @property
    def protocols(self) -> List[str]:
        """Row order: protocols as first encountered."""
        return list(dict.fromkeys(outcome.protocol for outcome in self.outcomes))

    @property
    def attackers(self) -> List[str]:
        """Column order: attacker models as first encountered."""
        return list(dict.fromkeys(outcome.attacker for outcome in self.outcomes))

    def outcome(self, protocol: str, attacker: str) -> AttackOutcome:
        """The cell for one (protocol, attacker) pair."""
        for entry in self.outcomes:
            if entry.protocol == protocol and entry.attacker == attacker:
                return entry
        raise ParameterError(f"no outcome recorded for {protocol!r} under {attacker!r}")

    def verdict(self, protocol: str, attacker: str) -> str:
        """The cell's verdict string."""
        return self.outcome(protocol, attacker).verdict

    def fallen(self) -> List[AttackOutcome]:
        """Cells where a protocol was silently broken or leaked a key."""
        return [o for o in self.outcomes if o.verdict in ("broken", "leaked")]

    # -------------------------------------------------------------- rendering
    def matrix_table(self) -> str:
        """The protocol × attacker survival matrix as fixed-width text."""
        attackers = self.attackers
        width = max([8] + [len(name) for name in attackers]) + 2
        header = f"{'protocol':<18}" + "".join(f"{name:>{width}}" for name in attackers)
        lines = [f"scenario: {self.scenario_description}", header, "-" * len(header)]
        for protocol in self.protocols:
            row = f"{protocol:<18}"
            for attacker in attackers:
                row += f"{self.verdict(protocol, attacker):>{width}}"
            lines.append(row)
        return "\n".join(lines)

    def summary(self) -> str:
        """The matrix plus a one-line account of every fallen cell."""
        lines = [self.matrix_table()]
        for outcome in self.fallen():
            lines.append(
                f"  {outcome.protocol} fell to {outcome.attacker}: {outcome.detail}"
            )
        return "\n".join(lines)

    # --------------------------------------------------------------- exports
    def to_csv(self, path: Optional[str] = None) -> str:
        """One row per (protocol, attacker) cell."""
        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer,
            fieldnames=["protocol", "attacker", "verdict", "attacks", "detail"],
            lineterminator="\n",
        )
        writer.writeheader()
        for outcome in self.outcomes:
            writer.writerow(
                {
                    "protocol": outcome.protocol,
                    "attacker": outcome.attacker,
                    "verdict": outcome.verdict,
                    "attacks": outcome.attacks,
                    "detail": outcome.detail,
                }
            )
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    def to_json(self, path: Optional[str] = None, *, indent: int = 2) -> str:
        """The whole matrix as JSON."""
        payload = {
            "scenario": self.scenario_name,
            "description": self.scenario_description,
            "attackers": self.attackers,
            "protocols": {
                protocol: {
                    attacker: {
                        "verdict": self.verdict(protocol, attacker),
                        "attacks": self.outcome(protocol, attacker).attacks,
                        "detail": self.outcome(protocol, attacker).detail,
                    }
                    for attacker in self.attackers
                }
                for protocol in self.protocols
            },
        }
        text = json.dumps(payload, indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text


def _default_matrix_scenario():
    """The standard survey workload: establish + leave + leave + join.

    Two leaves make every round label recur (the replayer needs a later step
    reusing an earlier step's slots), and the join exercises the
    backward-secrecy oracle.
    """
    from ..network.events import JoinEvent, LeaveEvent
    from ..pki.identity import Identity
    from ..sim.scenarios import Scenario, TraceReplay

    return Scenario(
        name="attack-matrix",
        initial_size=6,
        schedule=TraceReplay(
            events=(
                LeaveEvent(leaving=Identity("member-003")),
                LeaveEvent(leaving=Identity("member-004")),
                JoinEvent(joining=Identity("member-new")),
            )
        ),
        seed="attack-matrix",
    )


def run_attack_matrix(
    setup,
    *,
    protocols: Optional[Sequence[str]] = None,
    attackers: Optional[Mapping[str, Optional[AdversaryConfig]]] = None,
    scenario=None,
    device=None,
    engine=None,
    workers: int = 1,
    cache_dir: Optional[str] = None,
) -> SecurityReport:
    """Run every protocol under every attacker model and classify the cells.

    ``attackers`` maps column name to :class:`AdversaryConfig` (``None`` for
    a no-adversary baseline column); defaults to a ``baseline`` column plus
    every preset.  ``scenario`` defaults to a small establish + leave + join
    trace exercising the dynamic sub-protocols too.

    The matrix is a :mod:`repro.campaign` sweep under the hood — protocols ×
    attacker columns as campaign axes — so ``workers`` shards the cells over
    a process pool and ``cache_dir`` replays unchanged cells, with output
    bit-identical to the serial run either way.  A non-default ``device`` (or
    an engine/scenario a JSON spec cannot express) falls back to the in-process
    serial loop, which is equivalent but unsharded.
    """
    # Imported lazily: this module is reachable from ``repro.sim`` (the
    # runner consults the oracles), so a module-level import would be a cycle.
    from ..core.registry import available_protocols

    if protocols is None:
        protocols = available_protocols()
    if attackers is None:
        columns: Dict[str, Optional[AdversaryConfig]] = {"baseline": None}
        columns.update(default_attackers())
        attackers = columns
    if scenario is None:
        scenario = _default_matrix_scenario()

    if device is None:
        try:
            return _run_matrix_campaign(
                setup,
                protocols=protocols,
                attackers=attackers,
                scenario=scenario,
                engine=engine,
                workers=workers,
                cache_dir=cache_dir,
            )
        except ParameterError:
            # Not spec-serializable (custom schedule class, exotic latency
            # model, ...): the serial loop below handles every live object.
            pass
    return _run_matrix_serial(
        setup,
        protocols=protocols,
        attackers=attackers,
        scenario=scenario,
        device=device,
        engine=engine,
    )


def _params_for_setup(setup) -> str:
    """The worker-side ``params`` name reproducing ``setup`` exactly.

    Campaign workers rebuild the setup from a name, so only the two canonical
    named parameter sets are expressible; anything else (custom groups,
    generated parameters, non-default hash sizes) raises
    :class:`~repro.exceptions.ParameterError`, which sends
    :func:`run_attack_matrix` down the serial fallback instead of silently
    evaluating a different cryptosystem.
    """
    from ..core.base import SystemSetup

    for params, reference in (
        ("test", SystemSetup.from_param_sets("test-256", "gq-test-256")),
        ("paper", SystemSetup.from_param_sets()),
    ):
        if (
            setup.group.p == reference.group.p
            and setup.group.q == reference.group.q
            and setup.group.g == reference.group.g
            and setup.pkg.params.n == reference.pkg.params.n
            and setup.hash_function.output_bits == reference.hash_function.output_bits
        ):
            return params
    raise ParameterError("setup is not a canonical named parameter set")


def _run_matrix_campaign(
    setup,
    *,
    protocols: Sequence[str],
    attackers: Mapping[str, Optional[AdversaryConfig]],
    scenario,
    engine,
    workers: int,
    cache_dir: Optional[str],
) -> SecurityReport:
    """The sharded path: protocols × attacker columns as a campaign grid."""
    from ..campaign.execute import run_campaign
    from ..campaign.spec import CampaignSpec
    from ..sim.specio import adversary_to_spec, engine_to_spec, scenario_to_spec

    scenario_spec = scenario_to_spec(scenario)
    params = _params_for_setup(setup)
    spec = CampaignSpec(
        name=f"attack-matrix/{scenario.name}",
        protocols=tuple(protocols),
        group_sizes=(scenario.initial_size,),
        losses=(scenario.loss_probability,),
        schedule=scenario_spec.get("schedule"),
        mobilities={"none": scenario_spec.get("mobility")},
        engines=(engine_to_spec(engine),),
        adversaries={
            name: adversary_to_spec(config) for name, config in attackers.items()
        },
        seed=scenario.seed,
        params=params,
        max_retries=scenario.max_retries,
        min_group_size=scenario.min_group_size,
    )
    # The matrix must replay the *scenario* verbatim — its exact seed, name,
    # member prefix, every field — not the campaign's derived workload
    # scenario: every cell gets the full faithful spec, varying only in the
    # adversary column the cell belongs to.
    cells = spec.cells()
    for cell in cells:
        pinned = dict(scenario_spec)
        adversary_spec = cell.payload["scenario"].get("adversary")
        if adversary_spec is not None:
            pinned["adversary"] = adversary_spec
        else:
            pinned.pop("adversary", None)
        cell.payload["scenario"] = pinned
    result = run_campaign(spec, cells=cells, workers=workers, cache_dir=cache_dir)

    outcomes: List[AttackOutcome] = []
    for row in result.rows:
        if row.get("error"):
            raise ProtocolError(
                f"attack-matrix cell {row.get('cell')} failed: {row['error']}"
            )
        outcomes.append(
            AttackOutcome(
                protocol=str(row["protocol"]),
                attacker=str(row["adversary"]),
                verdict=str(row["security_verdict"]),
                attacks=int(row["attacks"]),
                detail=str(row.get("security_detail", "")),
            )
        )
    return SecurityReport(
        scenario_name=scenario.name,
        scenario_description=scenario.describe(),
        outcomes=outcomes,
    )


def _run_matrix_serial(
    setup,
    *,
    protocols: Sequence[str],
    attackers: Mapping[str, Optional[AdversaryConfig]],
    scenario,
    device,
    engine,
) -> SecurityReport:
    """The in-process fallback for live objects a spec cannot express."""
    from ..sim.runner import ScenarioRunner

    runner = ScenarioRunner(setup, device=device, engine=engine, check_agreement=False)
    outcomes: List[AttackOutcome] = []
    for protocol in protocols:
        for attacker_name, config in attackers.items():
            staged = scenario.with_adversary(config)
            report = runner.run(protocol, staged)
            verdict, detail = classify_report(report)
            outcomes.append(
                AttackOutcome(
                    protocol=protocol,
                    attacker=attacker_name,
                    verdict=verdict,
                    attacks=report.total_attacks,
                    detail=detail,
                )
            )
    return SecurityReport(
        scenario_name=scenario.name,
        scenario_description=scenario.describe(),
        outcomes=outcomes,
    )
