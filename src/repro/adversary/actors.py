"""Attacker actors: the active half of the adversary subsystem.

Every attacker is an :class:`AttackerActor` living *next to* the legitimate
:class:`~repro.engine.machine.PartyMachine`\\ s on the same run: it observes
every message crossing the medium through the medium's tap hook
(:meth:`~repro.network.medium.BroadcastMedium.add_tap`), and — when active —
asks the :class:`~repro.engine.executor.MachineExecutor` to drop, modify,
delay or race messages on its behalf.  Attacker reactions become ordinary
kernel events: a forged copy is scheduled as a delivery *ahead of* the
legitimate same-instant copy (the attacker wins the race), so the executor's
duplicate filter then discards the honest original exactly as a real
first-copy-wins receiver would.

The library ships five models:

* :class:`Eavesdropper` — purely passive.  Records the whole transcript and
  every transmitted value, then answers :meth:`knows_key` by attempting key
  recovery from what it saw (direct observation of the key on the wire, plus
  anything derivable from long-term keys stolen by a :class:`Compromiser`).
  Attaching one to a run must not change a single bit of it: the actor has
  its own :class:`~repro.network.node.Node` whose recorder absorbs the
  overhearing cost, its own RNG stream, and no write access to anything.
* :class:`Injector` — forges a copy of an observed keying message (same
  sender, same round label, flipped keying value) and races it against the
  original.  Unauthenticated BD accepts the forgery and silently derives
  inconsistent keys; authenticated protocols reject it.
* :class:`Replayer` — stores keying messages and, when the same
  ``(sender, round)`` slot recurs in a *later* protocol step, races the stale
  recording against the fresh transmission.
* :class:`ManInTheMiddle` — intercepts messages in flight: per round label it
  replaces the keying value (``mode="modify"``), suppresses delivery
  (``mode="drop"``), or delays it (``mode="delay"``).  The physical
  transmission still happens — senders and listeners are charged exactly
  what the air interface cost them — only what the receivers *decode*
  changes.
* :class:`Compromiser` — an eavesdropper that additionally steals one
  party's **long-term** private key at a configured step.  The protocols'
  keys are built from ephemeral exponents, so the stolen key must not help
  recover any past or future group key (forward secrecy); the
  ``implicit-key-auth`` oracle checks exactly that.

:class:`AdversarySuite` bundles actors behind the single interface the
executor and the scenario runner talk to, with one shared
:class:`AttackStats` ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..mathutils.rand import DeterministicRNG
from ..network.medium import BroadcastMedium, DeliveryReceipt
from ..network.message import Message, MessagePart
from ..network.node import Node
from ..pki.identity import Identity

__all__ = [
    "AttackStats",
    "Interception",
    "AttackerActor",
    "Eavesdropper",
    "Injector",
    "Replayer",
    "ManInTheMiddle",
    "Compromiser",
    "AdversarySuite",
]


@dataclass
class AttackStats:
    """Shared action ledger for one adversary suite (all actors count here)."""

    #: messages seen crossing the medium (passive, free of side effects)
    observed: int = 0
    #: forged copies raced against legitimate ones
    injected: int = 0
    #: stale recordings raced against fresh transmissions
    replayed: int = 0
    #: in-flight payload substitutions
    modified: int = 0
    #: deliveries suppressed (jamming)
    dropped: int = 0
    #: deliveries postponed
    delayed: int = 0
    #: long-term keys stolen
    compromised: int = 0

    @property
    def tampering_actions(self) -> int:
        """Message-level attacks a protocol could conceivably detect."""
        return self.injected + self.replayed + self.modified + self.dropped + self.delayed

    @property
    def active_actions(self) -> int:
        """Every non-passive action, including undetectable key compromise."""
        return self.tampering_actions + self.compromised


@dataclass(frozen=True)
class Interception:
    """What a man-in-the-middle wants done with one in-flight message.

    Exactly one effect applies: ``drop`` suppresses every delivery,
    ``replacement`` substitutes the decoded payload, ``delay_s`` postpones
    the deliveries.  The physical transmission has already happened by the
    time the executor consults the interception, so energy ledgers keep the
    true on-air story.
    """

    drop: bool = False
    replacement: Optional[Message] = None
    delay_s: float = 0.0


def _forged_copy(
    message: Message,
    target_parts: Sequence[str],
    mutate: Callable[[int], int],
) -> Optional[Message]:
    """A copy of ``message`` with its first matching integer part mutated.

    Returns ``None`` when the message carries none of the targeted parts —
    the attack simply does not apply to it.  The forged part keeps the
    original's wire size: flipping a value is free, padding is not.
    """
    chosen: Optional[str] = None
    for part in message.parts:
        if part.name in target_parts and isinstance(part.value, int):
            chosen = part.name
            break
    if chosen is None:
        return None
    parts = tuple(
        part
        if part.name != chosen
        else MessagePart(name=part.name, value=mutate(int(part.value)), bits=part.bits)
        for part in message.parts
    )
    return Message(
        sender=message.sender,
        round_label=message.round_label,
        parts=parts,
        recipients=message.recipients,
    )


class AttackerActor:
    """Base class for one attacker's view of the runs it haunts.

    Actors never touch the medium or the kernel directly: they *observe*
    (via the suite's medium tap), *queue* forged messages for the executor to
    race, and *answer* interception questions.  All of their randomness comes
    from their own named RNG child, so attaching an actor can never perturb a
    legitimate party's draws.
    """

    kind = "attacker"

    def __init__(self, name: str, rng: DeterministicRNG, *, budget: int = 8) -> None:
        self.name = name
        self.rng = rng
        #: the attacker's own radio: its overhearing/transmission costs land
        #: here, never on a legitimate member's ledger
        self.node = Node(Identity(name))
        #: shared ledger, rebound by the suite so all actors count together
        self.stats = AttackStats()
        self.budget = budget
        self.step = 0
        self.active = True
        self._step_actions = 0
        self._queued: List[Message] = []

    # ---------------------------------------------------------------- lifecycle
    def begin_step(self, index: int, kind: str, active: bool) -> None:
        """A new scenario step starts; reset the per-step action budget."""
        self.step = index
        self.active = active
        self._step_actions = 0

    def end_step(self, state: Optional[object]) -> None:
        """The step finished; ``state`` is the post-step group state (or None)."""

    # ------------------------------------------------------------------ hooks
    def observe(self, message: Message, receipt: DeliveryReceipt) -> None:
        """See one message cross the medium (always called, even when passive)."""

    def intercept(self, message: Message) -> Optional[Interception]:
        """Decide the fate of one in-flight message (``None`` = hands off)."""
        return None

    def drain(self) -> List[Message]:
        """Hand the executor the forged messages queued since the last drain."""
        queued, self._queued = self._queued, []
        return queued

    def knows_key(self, key: int) -> bool:
        """Whether this actor can produce the given group key."""
        return False

    # ---------------------------------------------------------------- helpers
    def _spend(self) -> bool:
        """Consume one unit of the per-step action budget (False = exhausted)."""
        if not self.active or self._step_actions >= self.budget:
            return False
        self._step_actions += 1
        return True

    def _mutate_value(self, value: int) -> int:
        """A deterministic, guaranteed-different forgery of one keying value."""
        return value ^ (1 + self.rng.randbelow(1 << 16))

    def describe(self) -> str:
        """One-line summary used in reports."""
        return self.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Eavesdropper(AttackerActor):
    """A passive wiretap: records everything, changes nothing.

    Key-recovery attempts are mechanical, not rhetorical: the oracle layer
    asks :meth:`knows_key` for the concrete agreed key, and the eavesdropper
    answers from (a) every value it ever saw on the wire — catching any
    protocol careless enough to broadcast key material in the clear — and
    (b) keys derivable from long-term secrets a :class:`Compromiser` stole
    (none, for every protocol in this library: group keys are built from
    ephemeral exponents that never travel).
    """

    kind = "eavesdropper"

    def __init__(self, name: str, rng: DeterministicRNG, *, budget: int = 8) -> None:
        super().__init__(name, rng, budget=budget)
        self.transcript: List[Message] = []
        self.seen_values: Set[int] = set()
        self.seen_bits = 0

    def observe(self, message: Message, receipt: DeliveryReceipt) -> None:
        self.transcript.append(message)
        self.seen_bits += message.wire_bits
        # The tap is where the attacker's radio listens: the overhearing cost
        # is charged to the attacker's own node, never to a group member.
        self.node.recorder.record_rx(message.wire_bits)
        for part in message.parts:
            if isinstance(part.value, int):
                self.seen_values.add(part.value)

    def knows_key(self, key: int) -> bool:
        return key in self.seen_values or key in self.derivable_keys()

    def derivable_keys(self) -> Set[int]:
        """Keys computable from the attacker's accumulated knowledge."""
        return set()


class Injector(Eavesdropper):
    """Forges keying messages and races them against the originals.

    On observing a message that carries a targeted keying part (``X`` by
    default), the injector queues a same-size copy with the value flipped,
    spoofing the original sender.  The executor delivers the forgery *first*
    within the same virtual instant, so honest receivers consume it and
    discard the genuine copy as a duplicate — the textbook active attack
    plain BD cannot survive and every authenticated variant must reject.
    """

    kind = "injector"

    def __init__(
        self,
        name: str,
        rng: DeterministicRNG,
        *,
        budget: int = 8,
        target_parts: Tuple[str, ...] = ("X",),
    ) -> None:
        super().__init__(name, rng, budget=budget)
        self.target_parts = target_parts
        self._forged_labels: Set[str] = set()

    def begin_step(self, index: int, kind: str, active: bool) -> None:
        super().begin_step(index, kind, active)
        self._forged_labels = set()

    def observe(self, message: Message, receipt: DeliveryReceipt) -> None:
        super().observe(message, receipt)
        if not self.active or message.round_label in self._forged_labels:
            return
        forged = _forged_copy(message, self.target_parts, self._mutate_value)
        if forged is None or not self._spend():
            return
        # One forgery per round label per step: enough to poison the round,
        # bounded enough to keep runs deterministic and readable.
        self._forged_labels.add(message.round_label)
        self.node.recorder.record_tx(forged.wire_bits)
        self.stats.injected += 1
        self._queued.append(forged)


class Replayer(Eavesdropper):
    """Records keying messages and replays them into later protocol steps.

    A replay only fires when the same ``(sender, round label)`` slot comes up
    again in a *later* step — e.g. a re-executing baseline running
    ``bd-round1`` for every membership event, or repeated Leave re-keyings —
    and races the stale copy against the fresh one.
    """

    kind = "replayer"

    def __init__(
        self,
        name: str,
        rng: DeterministicRNG,
        *,
        budget: int = 8,
        target_parts: Tuple[str, ...] = ("X", "z"),
    ) -> None:
        super().__init__(name, rng, budget=budget)
        self.target_parts = target_parts
        self._recorded: Dict[Tuple[str, str], Tuple[int, Message]] = {}

    def observe(self, message: Message, receipt: DeliveryReceipt) -> None:
        super().observe(message, receipt)
        if not any(
            part.name in self.target_parts and isinstance(part.value, int)
            for part in message.parts
        ):
            return
        slot = (message.sender.name, message.round_label)
        stored = self._recorded.get(slot)
        if (
            stored is not None
            and stored[0] < self.step
            and self.active
            and self._spend()
        ):
            self.node.recorder.record_tx(stored[1].wire_bits)
            self.stats.replayed += 1
            self._queued.append(stored[1])
        self._recorded[slot] = (self.step, message)


class ManInTheMiddle(AttackerActor):
    """Intercepts messages in flight: modify, drop, or delay.

    The first message of each round label carrying a targeted part is
    attacked once per step (per-step budget permitting); in ``modify`` mode
    receivers decode a flipped keying value, in ``drop`` mode they decode
    nothing (jamming — recovery is the protocol's timeout problem), in
    ``delay`` mode their copies arrive ``delay_s`` late.
    """

    kind = "man-in-the-middle"
    MODES = ("modify", "drop", "delay")

    def __init__(
        self,
        name: str,
        rng: DeterministicRNG,
        *,
        budget: int = 8,
        target_parts: Tuple[str, ...] = ("X",),
        mode: str = "modify",
        delay_s: float = 0.5,
    ) -> None:
        super().__init__(name, rng, budget=budget)
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.target_parts = target_parts
        self.mode = mode
        self.delay_s = delay_s
        self._hit_labels: Set[str] = set()

    def begin_step(self, index: int, kind: str, active: bool) -> None:
        super().begin_step(index, kind, active)
        self._hit_labels = set()

    def intercept(self, message: Message) -> Optional[Interception]:
        if not self.active or message.round_label in self._hit_labels:
            return None
        if self.mode == "modify":
            forged = _forged_copy(message, self.target_parts, self._mutate_value)
            if forged is None or not self._spend():
                return None
            self._hit_labels.add(message.round_label)
            self.stats.modified += 1
            return Interception(replacement=forged)
        if not any(
            part.name in self.target_parts and isinstance(part.value, int)
            for part in message.parts
        ):
            return None
        if not self._spend():
            return None
        self._hit_labels.add(message.round_label)
        if self.mode == "drop":
            self.stats.dropped += 1
            return Interception(drop=True)
        self.stats.delayed += 1
        return Interception(delay_s=self.delay_s)

    def describe(self) -> str:
        return f"{self.kind}({self.mode})"


class Compromiser(Eavesdropper):
    """An eavesdropper that steals a party's long-term key mid-scenario.

    At the end of step ``at_step`` it copies the target member's long-term
    private key (the named ``target``, or the first non-controller member
    present).  The theft is silent — no protocol can detect it — so it does
    not count as a tamper for the ``attack-detected`` oracle; what it *does*
    test is forward secrecy: the ``implicit-key-auth`` oracle keeps asking
    whether the attacker can now produce the group key, and for every
    protocol in this library the answer must stay no.
    """

    kind = "compromiser"

    def __init__(
        self,
        name: str,
        rng: DeterministicRNG,
        *,
        budget: int = 8,
        target: Optional[str] = None,
        at_step: int = 0,
    ) -> None:
        super().__init__(name, rng, budget=budget)
        self.target = target
        self.at_step = at_step
        #: member name -> stolen long-term private key object
        self.stolen: Dict[str, object] = {}

    def end_step(self, state: Optional[object]) -> None:
        if state is None or self.step < self.at_step or self.stolen:
            return
        parties = getattr(state, "parties", None)
        if not parties:
            return
        name = self.target
        if name is None or name not in parties:
            members = [identity.name for identity in state.members]
            name = members[1] if len(members) > 1 else members[0]
        self.stolen[name] = parties[name].private_key
        self.stats.compromised += 1

    def derivable_keys(self) -> Set[int]:
        # The honest attempt: a long-term GQ/signature key authenticates, it
        # does not encrypt — the group key is prod g^{r_i r_{i+1}} over
        # ephemeral exponents the attacker never sees.  There is nothing to
        # derive; a protocol that *did* wrap the group key under a long-term
        # key would surface here.
        return set()

    @property
    def compromised_parties(self) -> Set[str]:
        """Names of members whose long-term keys the attacker holds."""
        return set(self.stolen)

    def describe(self) -> str:
        target = self.target or "auto"
        return f"{self.kind}(target={target}, at={self.at_step})"


class AdversarySuite:
    """All configured attackers behind one executor/runner-facing interface.

    The suite attaches one tap per medium (idempotent), fans observations out
    to every actor, answers the executor's interception question with the
    first actor that wants the message, and collects queued forgeries.  One
    suite persists across every step of a scenario, which is what lets the
    replayer carry recordings from one protocol run into the next.
    """

    def __init__(self, actors: Sequence[AttackerActor], *, attack_from: int = 0) -> None:
        self.actors: List[AttackerActor] = list(actors)
        self.stats = AttackStats()
        for actor in self.actors:
            actor.stats = self.stats
        self.attack_from = attack_from
        self.step = 0
        self._tapped: Set[int] = set()

    # ---------------------------------------------------------------- wiring
    def attach(self, medium: BroadcastMedium) -> None:
        """Tap a medium (idempotent; the executor calls this on every run)."""
        if id(medium) in self._tapped:
            return
        self._tapped.add(id(medium))
        medium.add_tap(self._tap)

    def _tap(self, message: Message, receipt: DeliveryReceipt) -> None:
        self.stats.observed += 1
        for actor in self.actors:
            actor.observe(message, receipt)

    # ------------------------------------------------------------- lifecycle
    def begin_step(self, index: int, kind: str) -> None:
        """A scenario step starts: arm/disarm actors per the attack window."""
        self.step = index
        active = index >= self.attack_from
        for actor in self.actors:
            actor.begin_step(index, kind, active)

    def end_step(self, state: Optional[object]) -> None:
        """A scenario step finished (state is ``None`` after an abort)."""
        for actor in self.actors:
            actor.end_step(state)

    # ------------------------------------------------------ executor-facing
    def intercept(self, message: Message, now: float) -> Optional[Interception]:
        """First actor that wants the message decides its fate."""
        for actor in self.actors:
            decision = actor.intercept(message)
            if decision is not None:
                return decision
        return None

    def drain_injections(self, now: float) -> List[Message]:
        """Forged messages queued by the actors since the last transmission."""
        out: List[Message] = []
        for actor in self.actors:
            out.extend(actor.drain())
        return out

    # -------------------------------------------------------- oracle-facing
    def knows_key(self, key: Optional[int]) -> bool:
        """Whether any actor can produce the given group key."""
        if key is None:
            return False
        return any(actor.knows_key(key) for actor in self.actors)

    @property
    def compromised_parties(self) -> Set[str]:
        """Members whose long-term keys have been stolen."""
        names: Set[str] = set()
        for actor in self.actors:
            names |= getattr(actor, "compromised_parties", set())
        return names

    def describe(self) -> str:
        """One-line summary used in reports."""
        actors = "+".join(actor.describe() for actor in self.actors) or "none"
        window = f", from step {self.attack_from}" if self.attack_from else ""
        return f"{actors}{window}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdversarySuite({self.describe()})"
