"""Declarative adversary configuration for scenarios.

:class:`AdversaryConfig` is the scenario-side description of an attacker —
a frozen dataclass, like the churn schedules and the mobility config, so a
:class:`~repro.sim.scenarios.Scenario` stays a pure value object.  The
scenario runner calls :meth:`AdversaryConfig.build` with a *named* child of
the scenario's master RNG, so attaching an adversary can never perturb any
other randomness stream.

Named presets cover the survey axes of the attack matrix::

    Scenario(..., adversary=AdversaryConfig.preset("mitm"))

``"eavesdrop"`` (passive wiretap), ``"inject"`` (forgery racing),
``"replay"`` (stale-message racing), ``"mitm"`` (in-flight modification),
``"drop"`` (jamming), ``"delay"`` (delivery postponement) and
``"compromise"`` (long-term key theft).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..exceptions import ParameterError
from ..mathutils.rand import DeterministicRNG
from .actors import (
    AdversarySuite,
    Compromiser,
    Eavesdropper,
    Injector,
    ManInTheMiddle,
    Replayer,
)

__all__ = ["AdversaryConfig", "ATTACKER_PRESETS"]

#: Names accepted by :meth:`AdversaryConfig.preset` (and the ``--adversary``
#: CLI flag), in the column order the attack matrix prints them.
ATTACKER_PRESETS = (
    "eavesdrop",
    "inject",
    "replay",
    "mitm",
    "drop",
    "delay",
    "compromise",
)


@dataclass(frozen=True)
class AdversaryConfig:
    """Which attackers to field, and how aggressively.

    The default configuration is a lone passive eavesdropper — the attacker
    every wireless protocol faces for free.  Active models are opt-in; all
    of them keep the eavesdropper's transcript (an active attacker hears
    everything a passive one does).
    """

    #: record the transcript and attempt key recovery from it
    eavesdropper: bool = True
    #: race forged keying messages against the originals
    injector: bool = False
    #: race recordings from earlier steps against fresh transmissions
    replayer: bool = False
    #: intercept in flight (see ``mitm_mode``)
    mitm: bool = False
    #: ``"modify"`` | ``"drop"`` | ``"delay"``
    mitm_mode: str = "modify"
    #: delivery postponement for ``mitm_mode="delay"`` (virtual seconds)
    mitm_delay_s: float = 0.5
    #: steal a long-term key mid-scenario
    compromiser: bool = False
    #: member whose key is stolen (default: first non-controller present)
    compromise_target: Optional[str] = None
    #: scenario step index after which the theft happens
    compromise_at: int = 0
    #: first scenario step index at which *active* attacks fire (0 = the
    #: establishment itself; the eavesdropper always listens)
    attack_from: int = 0
    #: message part names carrying the keying material worth attacking
    target_parts: Tuple[str, ...] = ("X",)
    #: active actions each actor may take per scenario step
    max_actions_per_step: int = 8

    def __post_init__(self) -> None:
        if self.mitm_mode not in ManInTheMiddle.MODES:
            raise ParameterError(
                f"mitm_mode must be one of {ManInTheMiddle.MODES}, got {self.mitm_mode!r}"
            )
        if self.max_actions_per_step < 1:
            raise ParameterError("max_actions_per_step must be at least 1")
        if self.attack_from < 0 or self.compromise_at < 0:
            raise ParameterError("step indices cannot be negative")
        if not self.target_parts:
            raise ParameterError("target_parts cannot be empty")
        # Normalise JSON-sourced lists so every entry point may pass either.
        if not isinstance(self.target_parts, tuple):
            object.__setattr__(self, "target_parts", tuple(self.target_parts))

    # ------------------------------------------------------------------ build
    def build(self, rng: DeterministicRNG) -> AdversarySuite:
        """Instantiate the configured actors on their own named RNG children."""
        actors = []
        budget = self.max_actions_per_step
        if self.compromiser:
            actors.append(
                Compromiser(
                    "attacker-compromiser",
                    rng.fork("compromiser"),
                    budget=budget,
                    target=self.compromise_target,
                    at_step=self.compromise_at,
                )
            )
        elif self.eavesdropper and not (self.injector or self.replayer):
            # Injector/Replayer *are* eavesdroppers (they record the full
            # transcript themselves), so a standalone wiretap would just
            # duplicate every observation; it is only needed when no
            # recording actor is otherwise present (pure-passive or
            # MITM-only configurations).
            actors.append(
                Eavesdropper("attacker-eavesdropper", rng.fork("eavesdropper"), budget=budget)
            )
        if self.injector:
            actors.append(
                Injector(
                    "attacker-injector",
                    rng.fork("injector"),
                    budget=budget,
                    target_parts=self.target_parts,
                )
            )
        if self.replayer:
            actors.append(
                Replayer(
                    "attacker-replayer",
                    rng.fork("replayer"),
                    budget=budget,
                    target_parts=self.target_parts + ("z",),
                )
            )
        if self.mitm:
            actors.append(
                ManInTheMiddle(
                    "attacker-mitm",
                    rng.fork("mitm"),
                    budget=budget,
                    target_parts=self.target_parts,
                    mode=self.mitm_mode,
                    delay_s=self.mitm_delay_s,
                )
            )
        if not actors:
            raise ParameterError("adversary configured with no actors at all")
        return AdversarySuite(actors, attack_from=self.attack_from)

    # ---------------------------------------------------------------- presets
    @staticmethod
    def preset(name: str) -> "AdversaryConfig":
        """A named single-model configuration (see :data:`ATTACKER_PRESETS`)."""
        presets = {
            "eavesdrop": AdversaryConfig(),
            "inject": AdversaryConfig(injector=True),
            "replay": AdversaryConfig(replayer=True),
            "mitm": AdversaryConfig(mitm=True),
            "drop": AdversaryConfig(mitm=True, mitm_mode="drop"),
            "delay": AdversaryConfig(mitm=True, mitm_mode="delay"),
            "compromise": AdversaryConfig(compromiser=True),
        }
        try:
            return presets[name]
        except KeyError:
            raise ParameterError(
                f"unknown adversary preset {name!r}; available: {', '.join(ATTACKER_PRESETS)}"
            ) from None

    def with_attack_from(self, index: int) -> "AdversaryConfig":
        """A copy whose active attacks start at scenario step ``index``."""
        return replace(self, attack_from=index)

    def describe(self) -> str:
        """One-line summary used in scenario descriptions."""
        models = []
        if self.compromiser:
            models.append(f"compromise@{self.compromise_at}")
        elif self.eavesdropper:
            models.append("eavesdrop")
        if self.injector:
            models.append("inject")
        if self.replayer:
            models.append("replay")
        if self.mitm:
            models.append(self.mitm_mode if self.mitm_mode != "modify" else "mitm")
        summary = "+".join(models) or "none"
        if self.attack_from:
            summary += f" from step {self.attack_from}"
        return summary
