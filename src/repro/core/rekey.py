"""Shared re-keying machinery for the Leave and Partition protocols.

The paper's Leave protocol and Partition protocol are the same two-round
construction — Partition "can be seen as multiple users leaving the group" —
so both are implemented here over a common core:

* **Round 1** — every *remaining odd-indexed* user refreshes its exponent
  (``r'_j``, ``z'_j = g^{r'_j}``) and its GQ commitment (``tau'_j``,
  ``t'_j``) and broadcasts ``m_j = U_j || z'_j || t'_j``.
* **Round 2** — every remaining user recomputes its ``X'_i`` over the *new*
  ring (the departed members spliced out), forms the aggregates
  ``Z̄ = prod z_i`` / ``T̄ = prod t_i`` (new values for refreshed users, the
  stored ones for the rest), the common challenge ``c̄ = H(T̄, Z̄)`` and its
  GQ response ``s̄_i``, and broadcasts ``m'_i = U_i || X'_i || s̄_i`` with the
  controller ``U_1`` transmitting last.
* **Verification & key computation** — the batch equation (10)/(12), Lemma 1
  over the remaining ``X'_i``, then the Burmester–Desmedt key over the new
  ring (equations (11)/(13)).

Execution is one :class:`~repro.engine.machine.PartyMachine` per remaining
member on the event kernel: refreshers emit Round 1 from ``start``, Round 2
fires on Round-1 completeness (non-refreshers know exactly how many refreshed
``z'`` broadcasts to expect), and — as in the initial GKA — the controller
withholds its Round-2 broadcast until every other member's has arrived.
Verification failures raise immediately; there is no retransmission loop in
the paper's Leave/Partition description.

Because the departed users' exponents no longer appear adjacent in the new
ring and the odd-indexed users refreshed theirs, the departed users cannot
compute the new key (key independence); the property-based tests check that
the new key differs from the old one and from anything derivable with the
departed state alone.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set

from ..engine.executor import EngineConfig, EngineStats, drive_plan
from ..engine.machine import MachinePlan, Outbound, PartyMachine
from ..exceptions import BatchVerificationError, KeyConfirmationError, MembershipError, ParameterError
from ..mathutils.modular import product_mod
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import int_to_bytes
from ..network.medium import BroadcastMedium
from ..network.message import Message, group_element_part, identity_part
from ..network.topology import RingTopology
from ..pki.identity import Identity
from ..signatures.gq import gq_batch_verify, gq_commitment, gq_response
from .base import (
    GroupState,
    PartyState,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
    verify_x_product,
)

__all__ = ["build_departure_rekey", "run_departure_rekey"]


class _RekeyPartyMachine(PartyMachine):
    """One remaining member's view of the Leave/Partition re-keying."""

    def __init__(
        self,
        party: PartyState,
        setup: SystemSetup,
        new_ring: RingTopology,
        parties: Mapping[str, PartyState],
        refresher_names: Set[str],
        round_prefix: str,
        protocol_name: str,
    ) -> None:
        super().__init__(party.identity, party.node)
        self.party = party
        self.setup = setup
        self.new_ring = new_ring
        self.parties = parties
        self.refresher_names = refresher_names
        self.round_prefix = round_prefix
        self.protocol_name = protocol_name
        self.is_refresher = party.identity.name in refresher_names
        self.is_controller = new_ring.controller().name == party.identity.name
        self._remaining_names = [m.name for m in new_ring.members]
        self._expected_round1 = len(refresher_names) - (1 if self.is_refresher else 0)
        self._received_round1 = 0
        self._z_view: Dict[str, int] = {}
        self._t_view: Dict[str, int] = {}
        self._x_table: Dict[str, int] = {}
        self._s_table: Dict[str, int] = {}
        self._challenge: Optional[int] = None
        self._aggregate: Optional[int] = None
        self._round1_complete = False
        self._round2_buffer: List[Message] = []

    # ----------------------------------------------------------------- hooks
    def start(self, now: float) -> List[Outbound]:
        group = self.setup.group
        params = self.setup.gq_params
        outs: List[Outbound] = []
        if self.is_refresher:
            party = self.party
            party.r = group.random_exponent(party.rng)
            party.z = group.exp_g(party.r)
            party.recorder.record_operation("modexp")  # z'_j = g^{r'_j}
            party.tau, party.t = gq_commitment(params, party.rng)
            outs.append(
                Outbound(
                    Message.broadcast(
                        self.identity,
                        f"{self.round_prefix}-round1",
                        [
                            identity_part(self.identity),
                            group_element_part("z", party.z, group.element_bits),
                            group_element_part("t", party.t, params.modulus_bits),
                        ],
                    )
                )
            )
        self.waiting_for = f"{self.round_prefix}-round1"
        if self._expected_round1 == 0:
            outs.extend(self._complete_round1(now))
        return outs

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        label = message.round_label
        if label == f"{self.round_prefix}-round1":
            sender: Identity = message.value("identity")  # type: ignore[assignment]
            self._z_view[sender.name] = int(message.value("z"))
            self._t_view[sender.name] = int(message.value("t"))
            self._received_round1 += 1
            if self._received_round1 == self._expected_round1:
                return self._complete_round1(now)
            return []
        if label == f"{self.round_prefix}-round2":
            if not self._round1_complete:
                self._round2_buffer.append(message)
                return []
            return self._on_round2(message, now)
        return []

    # --------------------------------------------------------------- round 1
    def _complete_round1(self, now: float) -> List[Outbound]:
        # Fill in the member's own (possibly refreshed) values and the stored
        # values of members that did not refresh.
        self._round1_complete = True
        for other in self.new_ring.members:
            other_state = self.parties[other.name]
            other_state.require_ephemeral()
            self._z_view.setdefault(other.name, other_state.z)  # type: ignore[arg-type]
            if other_state.t is None:
                raise KeyConfirmationError(
                    f"{other.name} has no stored GQ commitment; cannot re-key"
                )
            self._t_view.setdefault(other.name, other_state.t)
        outs: List[Outbound] = []
        if self.is_controller:
            # U_1 transmits last, after everyone else's Round 2.
            self.waiting_for = f"{self.round_prefix}-round2"
        else:
            outs.extend(self._emit_round2(now))
        buffered, self._round2_buffer = self._round2_buffer, []
        for held in buffered:
            outs.extend(self._on_round2(held, now))
        return outs

    # --------------------------------------------------------------- round 2
    def _emit_round2(self, now: float) -> List[Outbound]:
        group = self.setup.group
        params = self.setup.gq_params
        party = self.party
        left = self.new_ring.left_neighbour(self.identity)
        right = self.new_ring.right_neighbour(self.identity)
        x_value = compute_bd_x_value(
            group, self._z_view[right.name], self._z_view[left.name], party.r
        )
        party.recorder.record_operation("modexp")  # X'_i
        big_z = group.product(self._z_view[name] for name in sorted(self._z_view))
        big_t = product_mod((self._t_view[name] for name in sorted(self._t_view)), params.n)
        challenge = params.hash_function.challenge(int_to_bytes(big_t), int_to_bytes(big_z))
        party.recorder.record_operation("hash")
        response = gq_response(params, party.private_key, party.tau, challenge)
        party.recorder.record_signature("gq", "gen")
        self._challenge = challenge
        self._aggregate = big_z
        self._x_table[self.identity.name] = x_value
        self._s_table[self.identity.name] = response
        self.waiting_for = f"{self.round_prefix}-round2"
        return [
            Outbound(
                Message.broadcast(
                    self.identity,
                    f"{self.round_prefix}-round2",
                    [
                        identity_part(self.identity),
                        group_element_part("X", x_value, group.element_bits),
                        group_element_part("s", response, params.modulus_bits),
                    ],
                )
            )
        ]

    def _on_round2(self, message: Message, now: float) -> List[Outbound]:
        sender: Identity = message.value("identity")  # type: ignore[assignment]
        self._x_table[sender.name] = int(message.value("X"))
        self._s_table[sender.name] = int(message.value("s"))
        outs: List[Outbound] = []
        if self.is_controller and self.identity.name not in self._s_table:
            others = self.new_ring.size - 1
            if len(self._x_table) < others:
                return []
            outs.extend(self._emit_round2(now))
            self._verify(now)
            return outs
        if len(self._s_table) < self.new_ring.size:
            return []
        self._verify(now)
        return outs

    # ----------------------------------------------------------- verification
    def _verify(self, now: float) -> None:
        group = self.setup.group
        params = self.setup.gq_params
        party = self.party
        assert self._challenge is not None and self._aggregate is not None
        ordered_identities = [
            self.parties[name].identity.to_bytes() for name in self._remaining_names
        ]
        ordered_responses = [self._s_table[name] for name in self._remaining_names]
        if not gq_batch_verify(
            params,
            ordered_identities,
            ordered_responses,
            self._challenge,
            int_to_bytes(self._aggregate),
        ):
            raise BatchVerificationError(
                f"{self.identity.name} failed the batch verification during {self.protocol_name}"
            )
        party.recorder.record_signature("gq", "ver")
        if not verify_x_product(group, [self._x_table[name] for name in self._remaining_names]):
            raise KeyConfirmationError(
                f"{self.identity.name} found prod X'_i != 1 during {self.protocol_name}"
            )
        key = compute_bd_key(
            group,
            self._remaining_names,
            self.identity.name,
            party.r,
            self._z_view,
            self._x_table,
        )
        party.recorder.record_operation("modexp")
        party.group_key = key
        self.finished = True
        self.waiting_for = None


def build_departure_rekey(
    setup: SystemSetup,
    state: GroupState,
    departing: Sequence[Identity],
    *,
    protocol_name: str,
    round_prefix: str,
    medium: BroadcastMedium,
    seed: object = 0,
) -> MachinePlan:
    """Decompose the Leave/Partition re-keying into per-member machines."""
    if not departing:
        raise ParameterError("at least one member must depart")
    if not state.all_agree():
        raise ParameterError("the current group has not agreed on a key; run the GKA first")
    departing_names: Set[str] = {identity.name for identity in departing}
    for identity in departing:
        if identity not in state.ring:
            raise MembershipError(f"{identity.name!r} is not a group member")
    if state.ring.controller().name in departing_names:
        raise MembershipError("the controller U_1 cannot be removed by this protocol")

    # The rekey draws no protocol-level randomness of its own (each refresher
    # uses its party stream), but the label keeps the seed plumbing uniform.
    DeterministicRNG(seed, label=protocol_name)

    old_ring = state.ring
    new_ring = (
        old_ring.with_partition([i for i in departing])
        if len(departing) > 1
        else old_ring.with_leave(departing[0])
    )
    remaining = new_ring.members

    for member in remaining:
        medium.attach(state.party(member).node)
    # Departed members fall out of radio range: they are *not* attached, so
    # they neither receive the re-keying traffic nor get charged for it.
    for identity in departing:
        medium.detach(identity)

    refreshers = old_ring.odd_indexed(exclude=departing)
    refresher_names = {identity.name for identity in refreshers}
    remaining_parties = {m.name: state.party(m) for m in remaining}
    machines = [
        _RekeyPartyMachine(
            state.party(member),
            setup,
            new_ring,
            remaining_parties,
            refresher_names,
            round_prefix,
            protocol_name,
        )
        for member in remaining
    ]

    def finish(stats: EngineStats) -> ProtocolResult:
        parties = {
            name: party for name, party in state.parties.items() if name not in departing_names
        }
        new_state = GroupState(
            setup=setup,
            ring=new_ring,
            parties=parties,
            group_key=parties[new_ring.controller().name].group_key,
        )
        return ProtocolResult(
            protocol=protocol_name,
            state=new_state,
            medium=medium,
            rounds=2,
            sim_latency_s=stats.sim_time_s,
            timeouts=stats.timeouts,
        )

    return MachinePlan(machines=machines, finish=finish, rounds=2)


def run_departure_rekey(
    setup: SystemSetup,
    state: GroupState,
    departing: Sequence[Identity],
    *,
    protocol_name: str,
    round_prefix: str,
    medium: Optional[BroadcastMedium] = None,
    seed: object = 0,
    engine: Optional[EngineConfig] = None,
) -> ProtocolResult:
    """Run the Leave/Partition re-keying for the given departing members."""
    medium = medium if medium is not None else BroadcastMedium()
    plan = build_departure_rekey(
        setup,
        state,
        departing,
        protocol_name=protocol_name,
        round_prefix=round_prefix,
        medium=medium,
        seed=seed,
    )
    return drive_plan(plan, medium, engine=engine)
