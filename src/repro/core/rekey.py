"""Shared re-keying machinery for the Leave and Partition protocols.

The paper's Leave protocol and Partition protocol are the same two-round
construction — Partition "can be seen as multiple users leaving the group" —
so both are implemented here over a common core:

* **Round 1** — every *remaining odd-indexed* user refreshes its exponent
  (``r'_j``, ``z'_j = g^{r'_j}``) and its GQ commitment (``tau'_j``,
  ``t'_j``) and broadcasts ``m_j = U_j || z'_j || t'_j``.
* **Round 2** — every remaining user recomputes its ``X'_i`` over the *new*
  ring (the departed members spliced out), forms the aggregates
  ``Z̄ = prod z_i`` / ``T̄ = prod t_i`` (new values for refreshed users, the
  stored ones for the rest), the common challenge ``c̄ = H(T̄, Z̄)`` and its
  GQ response ``s̄_i``, and broadcasts ``m'_i = U_i || X'_i || s̄_i`` with the
  controller ``U_1`` transmitting last.
* **Verification & key computation** — the batch equation (10)/(12), Lemma 1
  over the remaining ``X'_i``, then the Burmester–Desmedt key over the new
  ring (equations (11)/(13)).

Because the departed users' exponents no longer appear adjacent in the new
ring and the odd-indexed users refreshed theirs, the departed users cannot
compute the new key (key independence); the property-based tests check that
the new key differs from the old one and from anything derivable with the
departed state alone.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..exceptions import BatchVerificationError, KeyConfirmationError, MembershipError, ParameterError
from ..mathutils.modular import product_mod
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import int_to_bytes
from ..network.medium import BroadcastMedium
from ..network.message import Message, group_element_part, identity_part
from ..network.topology import RingTopology
from ..pki.identity import Identity
from ..signatures.gq import gq_batch_verify, gq_commitment, gq_response
from .base import (
    GroupState,
    PartyState,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
    verify_x_product,
)

__all__ = ["run_departure_rekey"]


def run_departure_rekey(
    setup: SystemSetup,
    state: GroupState,
    departing: Sequence[Identity],
    *,
    protocol_name: str,
    round_prefix: str,
    medium: Optional[BroadcastMedium] = None,
    seed: object = 0,
) -> ProtocolResult:
    """Run the Leave/Partition re-keying for the given departing members."""
    if not departing:
        raise ParameterError("at least one member must depart")
    if not state.all_agree():
        raise ParameterError("the current group has not agreed on a key; run the GKA first")
    departing_names: Set[str] = {identity.name for identity in departing}
    for identity in departing:
        if identity not in state.ring:
            raise MembershipError(f"{identity.name!r} is not a group member")
    if state.ring.controller().name in departing_names:
        raise MembershipError("the controller U_1 cannot be removed by this protocol")

    group = setup.group
    params = setup.gq_params
    rng = DeterministicRNG(seed, label=protocol_name)
    medium = medium if medium is not None else BroadcastMedium()

    old_ring = state.ring
    new_ring = old_ring.with_partition([i for i in departing]) if len(departing) > 1 else old_ring.with_leave(departing[0])
    remaining = new_ring.members
    remaining_names = [m.name for m in remaining]

    for member in remaining:
        medium.attach(state.party(member).node)
    # Departed members fall out of radio range: they are *not* attached, so
    # they neither receive the re-keying traffic nor get charged for it.
    for identity in departing:
        medium.detach(identity)

    # --------------------------------------------------------------- Round 1
    refreshers = old_ring.odd_indexed(exclude=departing)
    refresher_names = {identity.name for identity in refreshers}
    for identity in refreshers:
        party = state.party(identity)
        party.r = group.random_exponent(party.rng)
        party.z = group.exp_g(party.r)
        party.recorder.record_operation("modexp")  # z'_j = g^{r'_j}
        party.tau, party.t = gq_commitment(params, party.rng)
        medium.send(
            Message.broadcast(
                identity,
                f"{round_prefix}-round1",
                [
                    identity_part(identity),
                    group_element_part("z", party.z, group.element_bits),
                    group_element_part("t", party.t, params.modulus_bits),
                ],
            )
        )

    # Each remaining member's view of the (partially refreshed) z and t tables.
    views: Dict[str, Dict[str, Dict[str, int]]] = {}
    for identity in remaining:
        party = state.party(identity)
        z_view: Dict[str, int] = {}
        t_view: Dict[str, int] = {}
        for message in party.node.drain_inbox(f"{round_prefix}-round1"):
            sender: Identity = message.value("identity")  # type: ignore[assignment]
            z_view[sender.name] = int(message.value("z"))
            t_view[sender.name] = int(message.value("t"))
        # Fill in its own (possibly refreshed) values and the stored values of
        # members that did not refresh.
        for other in remaining:
            other_state = state.party(other)
            other_state.require_ephemeral()
            z_view.setdefault(other.name, other_state.z)  # type: ignore[arg-type]
            if other_state.t is None:
                raise KeyConfirmationError(
                    f"{other.name} has no stored GQ commitment; cannot re-key"
                )
            t_view.setdefault(other.name, other_state.t)
        views[identity.name] = {"z": z_view, "t": t_view}

    # --------------------------------------------------------------- Round 2
    broadcast_order = remaining[1:] + [new_ring.controller()]
    challenges: Dict[str, int] = {}
    aggregates: Dict[str, int] = {}
    for identity in broadcast_order:
        party = state.party(identity)
        view = views[identity.name]
        left = new_ring.left_neighbour(identity)
        right = new_ring.right_neighbour(identity)
        x_value = compute_bd_x_value(group, view["z"][right.name], view["z"][left.name], party.r)
        party.recorder.record_operation("modexp")  # X'_i
        big_z = group.product(view["z"][name] for name in sorted(view["z"]))
        big_t = product_mod((view["t"][name] for name in sorted(view["t"])), params.n)
        challenge = params.hash_function.challenge(int_to_bytes(big_t), int_to_bytes(big_z))
        party.recorder.record_operation("hash")
        response = gq_response(params, party.private_key, party.tau, challenge)
        party.recorder.record_signature("gq", "gen")
        challenges[identity.name] = challenge
        aggregates[identity.name] = big_z
        medium.send(
            Message.broadcast(
                identity,
                f"{round_prefix}-round2",
                [
                    identity_part(identity),
                    group_element_part("X", x_value, group.element_bits),
                    group_element_part("s", response, params.modulus_bits),
                ],
            )
        )

    # ------------------------------------------- verification and key derivation
    for identity in remaining:
        party = state.party(identity)
        view = views[identity.name]
        x_table: Dict[str, int] = {}
        s_table: Dict[str, int] = {}
        for message in party.node.drain_inbox(f"{round_prefix}-round2"):
            sender: Identity = message.value("identity")  # type: ignore[assignment]
            x_table[sender.name] = int(message.value("X"))
            s_table[sender.name] = int(message.value("s"))
        left = new_ring.left_neighbour(identity)
        right = new_ring.right_neighbour(identity)
        x_table[identity.name] = compute_bd_x_value(
            group, view["z"][right.name], view["z"][left.name], party.r
        )
        s_table[identity.name] = gq_response(
            params, party.private_key, party.tau, challenges[identity.name]
        )
        ordered_identities = [state.party(state_member).identity.to_bytes() for state_member in remaining]
        ordered_responses = [s_table[name] for name in remaining_names]
        if not gq_batch_verify(
            params,
            ordered_identities,
            ordered_responses,
            challenges[identity.name],
            int_to_bytes(aggregates[identity.name]),
        ):
            raise BatchVerificationError(
                f"{identity.name} failed the batch verification during {protocol_name}"
            )
        party.recorder.record_signature("gq", "ver")
        if not verify_x_product(group, [x_table[name] for name in remaining_names]):
            raise KeyConfirmationError(
                f"{identity.name} found prod X'_i != 1 during {protocol_name}"
            )
        key = compute_bd_key(group, remaining_names, identity.name, party.r, view["z"], x_table)
        party.recorder.record_operation("modexp")
        party.group_key = key

    parties = {name: party for name, party in state.parties.items() if name not in departing_names}
    new_state = GroupState(
        setup=setup,
        ring=new_ring,
        parties=parties,
        group_key=parties[new_ring.controller().name].group_key,
    )
    return ProtocolResult(protocol=protocol_name, state=new_state, medium=medium, rounds=2)
