"""The authenticated Merge protocol (Section 7 of the paper).

Two established groups ``G_A = {U_1..U_n}`` (key ``K_A``) and
``G_B = {U_{n+1}..U_{n+m}}`` (key ``K_B``) combine into a single group.  Only
the two controllers do public-key work:

* **Round 1** — each controller refreshes its exponent and broadcasts its new
  keying material together with its group's *last* member's ``z`` under a full
  GQ signature (``m'_1 = U_1 || z̃_1 || z_n || σ'_1`` and symmetrically for
  ``U_{n+1}``).
* **Round 2** — each controller derives the controller-to-controller DH key
  ``K_{U_1 U_{n+1}}``, folds its group's key into a partial key (equations 7
  and 8), and broadcasts it encrypted both for its own group (under the old
  group key) and for the peer controller (under the DH key).
* **Round 3** — each controller re-encrypts the *other* group's partial key
  for its own members.
* **Key computation** — every member of the merged group forms
  ``K' = K*_A · K*_B`` (equation 9).

All non-controller members only perform symmetric decryptions, which is what
drives their Table 5 energy down to fractions of a millijoule.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..exceptions import MembershipError, ParameterError, SignatureError
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import encode_fields, int_to_bytes
from ..network.medium import BroadcastMedium
from ..network.message import Message, envelope_part, group_element_part, identity_part, signature_part
from ..pki.identity import Identity
from ..signatures.gq import GQSignatureScheme
from ..symmetric.authenc import SymmetricEnvelope
from .base import GroupState, PartyState, ProtocolResult, SystemSetup

__all__ = ["MergeProtocol"]


class MergeProtocol:
    """Merge two established groups into one."""

    name = "proposed-merge"

    def __init__(self, setup: SystemSetup) -> None:
        self.setup = setup
        self._scheme = GQSignatureScheme(setup.gq_params)

    # ------------------------------------------------------------------- run
    def run(
        self,
        state_a: GroupState,
        state_b: GroupState,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
    ) -> ProtocolResult:
        """Merge ``state_b`` into ``state_a`` and return the combined group state."""
        if state_a.setup is not self.setup and state_a.setup.group is not self.setup.group:
            raise ParameterError("group A was established under different system parameters")
        if not state_a.all_agree() or not state_b.all_agree():
            raise ParameterError("both groups must hold agreed keys before merging")
        overlap = {m.name for m in state_a.ring} & {m.name for m in state_b.ring}
        if overlap:
            raise MembershipError(f"groups overlap: {sorted(overlap)}")

        group = self.setup.group
        rng = DeterministicRNG(seed, label="merge")
        medium = medium if medium is not None else BroadcastMedium()
        for member in list(state_a.ring) + list(state_b.ring):
            source = state_a if member in state_a.ring else state_b
            medium.attach(source.party(member).node)

        ctrl_a = state_a.ring.controller()      # U_1
        ctrl_b = state_b.ring.controller()      # U_{n+1}
        last_a = state_a.ring.last()            # U_n
        last_b = state_b.ring.last()            # U_{n+m}
        second_a = state_a.ring.right_neighbour(ctrl_a)   # U_2
        second_b = state_b.ring.right_neighbour(ctrl_b)   # U_{n+2}

        a1 = state_a.party(ctrl_a)
        b1 = state_b.party(ctrl_b)
        key_a = a1.group_key
        key_b = b1.group_key
        assert key_a is not None and key_b is not None

        # ----------------------------------------------------------- Round 1
        def round1(controller_state: PartyState, controller: Identity, last_z: int, label: str):
            new_r = group.random_exponent(controller_state.rng)
            new_z = group.exp_g(new_r)
            controller_state.recorder.record_operation("modexp")
            body = encode_fields([controller.to_bytes(), int_to_bytes(new_z), int_to_bytes(last_z)])
            signature = self._scheme.sign(controller_state.private_key, body, controller_state.rng)
            controller_state.recorder.record_signature("gq", "gen")
            medium.send(
                Message.broadcast(
                    controller,
                    label,
                    [
                        identity_part(controller),
                        group_element_part("z_tilde", new_z, group.element_bits),
                        group_element_part("z_last", last_z, group.element_bits),
                        signature_part(signature),
                    ],
                )
            )
            return new_r, new_z, body, signature

        z_last_a = state_a.party(last_a).z
        z_last_b = state_b.party(last_b).z
        assert z_last_a is not None and z_last_b is not None
        new_r_a, new_z_a, body_a, sig_a = round1(a1, ctrl_a, z_last_a, "merge-round1-a")
        new_r_b, new_z_b, body_b, sig_b = round1(b1, ctrl_b, z_last_b, "merge-round1-b")

        # ----------------------------------------------------------- Round 2
        # Controller of A.
        if not self._scheme.verify(ctrl_b.to_bytes(), body_b, sig_b):
            raise SignatureError("U_1 rejected the signature of group B's controller")
        a1.recorder.record_signature("gq", "ver")
        dh_a_view = group.power(new_z_b, new_r_a)
        a1.recorder.record_operation("modexp")
        z2_a = state_a.party(second_a).z
        assert z2_a is not None and a1.r is not None
        k_star_a = (
            key_a
            * group.power((z2_a * z_last_a) % group.p, -a1.r)
            * group.power((z2_a * z_last_b) % group.p, new_r_a)
        ) % group.p
        a1.recorder.record_operation("modexp", 2)
        env_ka = SymmetricEnvelope(key_a)
        env_dh_a = SymmetricEnvelope(dh_a_view)
        sealed_ksa_for_a = env_ka.seal_group_element(k_star_a, ctrl_a.to_bytes(), a1.rng)
        sealed_ksa_for_b1 = env_dh_a.seal_group_element(k_star_a, ctrl_a.to_bytes(), a1.rng)
        a1.recorder.record_operation("symmetric", 2)
        medium.send(
            Message.broadcast(
                ctrl_a,
                "merge-round2-a",
                [
                    identity_part(ctrl_a),
                    envelope_part(sealed_ksa_for_a, "E_KA(K*_A)"),
                    envelope_part(sealed_ksa_for_b1, "E_DH(K*_A)"),
                ],
            )
        )

        # Controller of B.
        if not self._scheme.verify(ctrl_a.to_bytes(), body_a, sig_a):
            raise SignatureError("U_{n+1} rejected the signature of group A's controller")
        b1.recorder.record_signature("gq", "ver")
        dh_b_view = group.power(new_z_a, new_r_b)
        b1.recorder.record_operation("modexp")
        z2_b = state_b.party(second_b).z
        assert z2_b is not None and b1.r is not None
        k_star_b = (
            key_b
            * group.power((z_last_a * z2_b) % group.p, new_r_b)
            * group.power((z2_b * z_last_b) % group.p, -b1.r)
        ) % group.p
        b1.recorder.record_operation("modexp", 2)
        env_kb = SymmetricEnvelope(key_b)
        env_dh_b = SymmetricEnvelope(dh_b_view)
        sealed_ksb_for_b = env_kb.seal_group_element(k_star_b, ctrl_b.to_bytes(), b1.rng)
        sealed_ksb_for_a1 = env_dh_b.seal_group_element(k_star_b, ctrl_b.to_bytes(), b1.rng)
        b1.recorder.record_operation("symmetric", 2)
        medium.send(
            Message.broadcast(
                ctrl_b,
                "merge-round2-b",
                [
                    identity_part(ctrl_b),
                    envelope_part(sealed_ksb_for_b, "E_KB(K*_B)"),
                    envelope_part(sealed_ksb_for_a1, "E_DH(K*_B)"),
                ],
            )
        )

        # ----------------------------------------------------------- Round 3
        # U_1 recovers K*_B via the controller DH key and relays it to group A.
        k_star_b_at_a1 = env_dh_a.open_group_element(sealed_ksb_for_a1, ctrl_b.to_bytes())
        a1.recorder.record_operation("symmetric")
        sealed_ksb_for_a = env_ka.seal_group_element(k_star_b_at_a1, ctrl_a.to_bytes(), a1.rng)
        a1.recorder.record_operation("symmetric")
        medium.send(
            Message.broadcast(
                ctrl_a,
                "merge-round3-a",
                [identity_part(ctrl_a), envelope_part(sealed_ksb_for_a, "E_KA(K*_B)")],
            )
        )
        # U_{n+1} recovers K*_A and relays it to group B.
        k_star_a_at_b1 = env_dh_b.open_group_element(sealed_ksa_for_b1, ctrl_a.to_bytes())
        b1.recorder.record_operation("symmetric")
        sealed_ksa_for_b = env_kb.seal_group_element(k_star_a_at_b1, ctrl_b.to_bytes(), b1.rng)
        b1.recorder.record_operation("symmetric")
        medium.send(
            Message.broadcast(
                ctrl_b,
                "merge-round3-b",
                [identity_part(ctrl_b), envelope_part(sealed_ksa_for_b, "E_KB(K*_A)")],
            )
        )

        # -------------------------------------------------- key computation
        new_key = (k_star_a * k_star_b) % group.p
        a1.group_key = (k_star_a * k_star_b_at_a1) % group.p
        b1.group_key = (k_star_a_at_b1 * k_star_b) % group.p
        a1.r, a1.z = new_r_a, new_z_a
        b1.r, b1.z = new_r_b, new_z_b

        for member in state_a.ring.members:
            if member.name == ctrl_a.name:
                continue
            bystander = state_a.party(member)
            ks_a = env_ka.open_group_element(sealed_ksa_for_a, ctrl_a.to_bytes())
            ks_b = env_ka.open_group_element(sealed_ksb_for_a, ctrl_a.to_bytes())
            bystander.recorder.record_operation("symmetric", 2)
            bystander.group_key = (ks_a * ks_b) % group.p
        for member in state_b.ring.members:
            if member.name == ctrl_b.name:
                continue
            bystander = state_b.party(member)
            ks_b = env_kb.open_group_element(sealed_ksb_for_b, ctrl_b.to_bytes())
            ks_a = env_kb.open_group_element(sealed_ksa_for_b, ctrl_b.to_bytes())
            bystander.recorder.record_operation("symmetric", 2)
            bystander.group_key = (ks_a * ks_b) % group.p

        merged_ring = state_a.ring.merged_with(state_b.ring)
        parties: Dict[str, PartyState] = {}
        parties.update(state_a.parties)
        parties.update(state_b.parties)
        new_state = GroupState(setup=self.setup, ring=merged_ring, parties=parties, group_key=new_key)
        return ProtocolResult(protocol=self.name, state=new_state, medium=medium, rounds=3)
