"""The authenticated Merge protocol (Section 7 of the paper).

Two established groups ``G_A = {U_1..U_n}`` (key ``K_A``) and
``G_B = {U_{n+1}..U_{n+m}}`` (key ``K_B``) combine into a single group.  Only
the two controllers do public-key work:

* **Round 1** — each controller refreshes its exponent and broadcasts its new
  keying material together with its group's *last* member's ``z`` under a full
  GQ signature (``m'_1 = U_1 || z̃_1 || z_n || σ'_1`` and symmetrically for
  ``U_{n+1}``).
* **Round 2** — each controller derives the controller-to-controller DH key
  ``K_{U_1 U_{n+1}}``, folds its group's key into a partial key (equations 7
  and 8), and broadcasts it encrypted both for its own group (under the old
  group key) and for the peer controller (under the DH key).
* **Round 3** — each controller re-encrypts the *other* group's partial key
  for its own members.
* **Key computation** — every member of the merged group forms
  ``K' = K*_A · K*_B`` (equation 9).

The two controllers run as mirror-image
:class:`~repro.engine.machine.PartyMachine` instances — each round is a
reaction to the peer controller's previous broadcast — and every other member
is a bystander machine that merely collects its controller's two envelopes.
All non-controller members only perform symmetric decryptions, which is what
drives their Table 5 energy down to fractions of a millijoule.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..engine.executor import EngineConfig, EngineStats, drive_plan
from ..engine.machine import MachinePlan, Outbound, PartyMachine
from ..exceptions import MembershipError, ParameterError, SignatureError
from ..mathutils.serialization import encode_fields, int_to_bytes
from ..network.medium import BroadcastMedium
from ..network.message import Message, envelope_part, group_element_part, identity_part, signature_part
from ..pki.identity import Identity
from ..signatures.gq import GQSignatureScheme
from ..symmetric.authenc import SymmetricEnvelope
from .base import GroupState, PartyState, ProtocolResult, SystemSetup

__all__ = ["MergeProtocol"]


class _MergeControllerMachine(PartyMachine):
    """One group's controller: the only public-key worker of the merge.

    ``tag``/``peer_tag`` are ``"a"``/``"b"``; the A-side controller is the
    surviving group's ``U_1``.  The partial-key equations (7) and (8) differ
    between the sides in where the *refreshed* exponent lands, so the side is
    explicit rather than symmetric-by-renaming.
    """

    def __init__(
        self,
        setup: SystemSetup,
        scheme: GQSignatureScheme,
        party: PartyState,
        own_state: GroupState,
        tag: str,
        peer_controller: Identity,
    ) -> None:
        super().__init__(party.identity, party.node)
        self.setup = setup
        self.scheme = scheme
        self.party = party
        self.own_state = own_state
        self.tag = tag
        self.peer_tag = "b" if tag == "a" else "a"
        self.peer_controller = peer_controller
        self._new_r: Optional[int] = None
        self._new_z: Optional[int] = None
        self._k_star: Optional[int] = None
        self._dh_envelope: Optional[SymmetricEnvelope] = None
        self._own_envelope: Optional[SymmetricEnvelope] = None
        self._held: List[Message] = []

    # ----------------------------------------------------------------- hooks
    def start(self, now: float) -> List[Outbound]:
        group = self.setup.group
        party = self.party
        z_last = self.own_state.party(self.own_state.ring.last()).z
        assert z_last is not None
        self._new_r = group.random_exponent(party.rng)
        self._new_z = group.exp_g(self._new_r)
        party.recorder.record_operation("modexp")
        body = encode_fields(
            [self.identity.to_bytes(), int_to_bytes(self._new_z), int_to_bytes(z_last)]
        )
        signature = self.scheme.sign(party.private_key, body, party.rng)
        party.recorder.record_signature("gq", "gen")
        self.waiting_for = f"merge-round1-{self.peer_tag}"
        return [
            Outbound(
                Message.broadcast(
                    self.identity,
                    f"merge-round1-{self.tag}",
                    [
                        identity_part(self.identity),
                        group_element_part("z_tilde", self._new_z, group.element_bits),
                        group_element_part("z_last", z_last, group.element_bits),
                        signature_part(signature),
                    ],
                )
            )
        ]

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        label = message.round_label
        if label == f"merge-round1-{self.peer_tag}":
            return self._on_peer_round1(message, now)
        if label == f"merge-round2-{self.peer_tag}":
            if self._dh_envelope is None:
                self._held.append(message)  # overtook the peer's round 1
                return []
            return self._on_peer_round2(message, now)
        return []

    # ------------------------------------------------------- peer reactions
    def _on_peer_round1(self, message: Message, now: float) -> List[Outbound]:
        group = self.setup.group
        party = self.party
        peer_new_z = int(message.value("z_tilde"))
        peer_z_last = int(message.value("z_last"))
        body = encode_fields(
            [
                self.peer_controller.to_bytes(),
                int_to_bytes(peer_new_z),
                int_to_bytes(peer_z_last),
            ]
        )
        if not self.scheme.verify(
            self.peer_controller.to_bytes(), body, message.value("signature")
        ):
            raise SignatureError(
                "U_1 rejected the signature of group B's controller"
                if self.tag == "a"
                else "U_{n+1} rejected the signature of group A's controller"
            )
        party.recorder.record_signature("gq", "ver")
        assert self._new_r is not None
        dh_view = group.power(peer_new_z, self._new_r)
        party.recorder.record_operation("modexp")
        ring = self.own_state.ring
        z2 = self.own_state.party(ring.right_neighbour(self.identity)).z
        z_last = self.own_state.party(ring.last()).z
        key = party.group_key
        assert z2 is not None and z_last is not None and party.r is not None
        assert key is not None
        if self.tag == "a":
            # Equation (7): K*_A = K_A · (z_2 z_n)^{-r_1} (z_2 z_{n+m})^{r̃_1}
            self._k_star = (
                key
                * group.power((z2 * z_last) % group.p, -party.r)
                * group.power((z2 * peer_z_last) % group.p, self._new_r)
            ) % group.p
        else:
            # Equation (8): K*_B = K_B · (z_n z_{n+2})^{r̃_{n+1}} (z_{n+2} z_{n+m})^{-r_{n+1}}
            self._k_star = (
                key
                * group.power((peer_z_last * z2) % group.p, self._new_r)
                * group.power((z2 * z_last) % group.p, -party.r)
            ) % group.p
        party.recorder.record_operation("modexp", 2)
        self._own_envelope = SymmetricEnvelope(key)
        self._dh_envelope = SymmetricEnvelope(dh_view)
        key_label = f"E_K{self.tag.upper()}(K*_{self.tag.upper()})"
        dh_label = f"E_DH(K*_{self.tag.upper()})"
        sealed_for_own = self._own_envelope.seal_group_element(
            self._k_star, self.identity.to_bytes(), party.rng
        )
        sealed_for_peer = self._dh_envelope.seal_group_element(
            self._k_star, self.identity.to_bytes(), party.rng
        )
        party.recorder.record_operation("symmetric", 2)
        self.waiting_for = f"merge-round2-{self.peer_tag}"
        outs = [
            Outbound(
                Message.broadcast(
                    self.identity,
                    f"merge-round2-{self.tag}",
                    [
                        identity_part(self.identity),
                        envelope_part(sealed_for_own, key_label),
                        envelope_part(sealed_for_peer, dh_label),
                    ],
                )
            )
        ]
        held, self._held = self._held, []
        for pending in held:
            outs.extend(self.on_message(pending, now))
        return outs

    def _on_peer_round2(self, message: Message, now: float) -> List[Outbound]:
        group = self.setup.group
        party = self.party
        assert self._dh_envelope is not None and self._own_envelope is not None
        assert self._k_star is not None
        peer_k_star = self._dh_envelope.open_group_element(
            message.value(f"E_DH(K*_{self.peer_tag.upper()})"),
            self.peer_controller.to_bytes(),
        )
        party.recorder.record_operation("symmetric")
        sealed_for_own = self._own_envelope.seal_group_element(
            peer_k_star, self.identity.to_bytes(), party.rng
        )
        party.recorder.record_operation("symmetric")
        party.group_key = (self._k_star * peer_k_star) % group.p
        party.r, party.z = self._new_r, self._new_z
        self.finished = True
        self.waiting_for = None
        return [
            Outbound(
                Message.broadcast(
                    self.identity,
                    f"merge-round3-{self.tag}",
                    [
                        identity_part(self.identity),
                        envelope_part(
                            sealed_for_own,
                            f"E_K{self.tag.upper()}(K*_{self.peer_tag.upper()})",
                        ),
                    ],
                )
            )
        ]


class _MergeBystanderMachine(PartyMachine):
    """A non-controller member: collect the controller's two envelopes."""

    def __init__(
        self,
        setup: SystemSetup,
        party: PartyState,
        tag: str,
        controller: Identity,
    ) -> None:
        super().__init__(party.identity, party.node)
        self.setup = setup
        self.party = party
        self.tag = tag
        self.controller = controller
        self._sealed: Dict[str, object] = {}

    def start(self, now: float) -> List[Outbound]:
        self.waiting_for = f"merge-round2-{self.tag}"
        return []

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        label = message.round_label
        own_part = f"E_K{self.tag.upper()}(K*_{self.tag.upper()})"
        peer_part = f"E_K{self.tag.upper()}(K*_{'B' if self.tag == 'a' else 'A'})"
        if label == f"merge-round2-{self.tag}":
            self._sealed["own"] = message.value(own_part)
            self.waiting_for = f"merge-round3-{self.tag}"
        elif label == f"merge-round3-{self.tag}":
            self._sealed["peer"] = message.value(peer_part)
        else:
            return []
        if len(self._sealed) == 2:
            group = self.setup.group
            party = self.party
            key = party.group_key
            assert key is not None
            envelope = SymmetricEnvelope(key)
            own_k_star = envelope.open_group_element(
                self._sealed["own"], self.controller.to_bytes()
            )
            peer_k_star = envelope.open_group_element(
                self._sealed["peer"], self.controller.to_bytes()
            )
            party.recorder.record_operation("symmetric", 2)
            party.group_key = (own_k_star * peer_k_star) % group.p
            self.finished = True
            self.waiting_for = None
        return []


class MergeProtocol:
    """Merge two established groups into one."""

    name = "proposed-merge"

    def __init__(self, setup: SystemSetup) -> None:
        self.setup = setup
        self._scheme = GQSignatureScheme(setup.gq_params)

    # -------------------------------------------------------------- machines
    def build_machines(
        self,
        state_a: GroupState,
        state_b: GroupState,
        *,
        medium: BroadcastMedium,
        seed: object = 0,
    ) -> MachinePlan:
        """Decompose the Merge protocol into per-member machines."""
        if state_a.setup is not self.setup and state_a.setup.group is not self.setup.group:
            raise ParameterError("group A was established under different system parameters")
        if not state_a.all_agree() or not state_b.all_agree():
            raise ParameterError("both groups must hold agreed keys before merging")
        overlap = {m.name for m in state_a.ring} & {m.name for m in state_b.ring}
        if overlap:
            raise MembershipError(f"groups overlap: {sorted(overlap)}")

        for member in list(state_a.ring) + list(state_b.ring):
            source = state_a if member in state_a.ring else state_b
            medium.attach(source.party(member).node)

        ctrl_a = state_a.ring.controller()
        ctrl_b = state_b.ring.controller()
        machines: List[PartyMachine] = []
        for member in state_a.ring.members:
            party = state_a.party(member)
            if member.name == ctrl_a.name:
                machines.append(
                    _MergeControllerMachine(self.setup, self._scheme, party, state_a, "a", ctrl_b)
                )
            else:
                machines.append(_MergeBystanderMachine(self.setup, party, "a", ctrl_a))
        for member in state_b.ring.members:
            party = state_b.party(member)
            if member.name == ctrl_b.name:
                machines.append(
                    _MergeControllerMachine(self.setup, self._scheme, party, state_b, "b", ctrl_a)
                )
            else:
                machines.append(_MergeBystanderMachine(self.setup, party, "b", ctrl_b))

        def finish(stats: EngineStats) -> ProtocolResult:
            merged_ring = state_a.ring.merged_with(state_b.ring)
            parties: Dict[str, PartyState] = {}
            parties.update(state_a.parties)
            parties.update(state_b.parties)
            new_state = GroupState(
                setup=self.setup,
                ring=merged_ring,
                parties=parties,
                group_key=parties[merged_ring.controller().name].group_key,
            )
            return ProtocolResult(
                protocol=self.name,
                state=new_state,
                medium=medium,
                rounds=3,
                sim_latency_s=stats.sim_time_s,
                timeouts=stats.timeouts,
            )

        return MachinePlan(machines=machines, finish=finish, rounds=3)

    # ------------------------------------------------------------------- run
    def run(
        self,
        state_a: GroupState,
        state_b: GroupState,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        """Merge ``state_b`` into ``state_a`` and return the combined group state."""
        medium = medium if medium is not None else BroadcastMedium()
        plan = self.build_machines(state_a, state_b, medium=medium, seed=seed)
        return drive_plan(plan, medium, engine=engine)
