"""Shared infrastructure for the group key agreement protocols.

This module holds everything the proposed protocol (:mod:`repro.core.gka`),
its four dynamic protocols and the baselines have in common:

* :class:`SystemSetup` — the paper's Setup step: the PKG's GQ parameters, the
  Schnorr group ``(p, q, g)``, the hash ``H`` and the identity registry;
* :class:`PartyState` — one member's per-session state (its ephemeral
  exponent ``r_i``, GQ commitment ``tau_i``, keying material ``z_i``, private
  key, RNG, and the node that records its costs);
* :class:`GroupState` — the collective state that survives between dynamic
  membership events: the ring, the ``z``/``t`` tables, the current group key
  and each member's :class:`PartyState`;
* :class:`ProtocolResult` — what a protocol run returns (keys per member,
  the new group state, the medium transcript);
* the Burmester–Desmedt algebra: computing ``X_i`` values and the group key
  from them, shared verbatim between the proposed protocol, the plain BD
  baseline, and the Leave/Partition protocols.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

from ..energy.accounting import CostRecorder, DeviceProfile
from ..engine.executor import EngineConfig, drive_plan
from ..engine.machine import MachinePlan
from ..exceptions import KeyConfirmationError, ParameterError, ProtocolError
from ..groups.params import PAPER_GQ_SET, PAPER_SCHNORR_SET, get_gq_modulus, get_schnorr_group
from ..groups.schnorr import SchnorrGroup
from ..hashing.hashfuncs import HashFunction
from ..backends.registry import active_backend
from ..mathutils.primes import RSAModulus, generate_rsa_modulus, generate_schnorr_parameters
from ..mathutils.rand import DeterministicRNG
from ..network.events import MembershipEvent, membership_after
from ..network.medium import BroadcastMedium
from ..network.node import Node
from ..network.topology import RingTopology
from ..pki.identity import Identity, IdentityRegistry
from ..pki.pkg import PrivateKeyGenerator
from ..signatures.gq import GQParameters, GQPrivateKey

__all__ = [
    "SystemSetup",
    "PartyState",
    "GroupState",
    "ProtocolResult",
    "Protocol",
    "compute_bd_x_value",
    "compute_bd_key",
    "verify_x_product",
]


class SystemSetup:
    """The paper's Setup: PKG parameters, the GKA group, and the hash function.

    Construct either with explicit components or via the convenience
    constructors :meth:`from_param_sets` (named, precomputed-seed parameter
    sets — the normal path for tests and benchmarks) and :meth:`generate`
    (fresh parameters of requested sizes).
    """

    def __init__(
        self,
        group: SchnorrGroup,
        pkg: PrivateKeyGenerator,
        hash_function: Optional[HashFunction] = None,
    ) -> None:
        self.group = group
        self.pkg = pkg
        self.hash_function = hash_function or HashFunction(output_bits=160)

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_param_sets(
        cls,
        schnorr_set: str = PAPER_SCHNORR_SET,
        gq_set: str = PAPER_GQ_SET,
        *,
        hash_bits: int = 160,
    ) -> "SystemSetup":
        """Build a setup from named parameter sets (deterministic and cached)."""
        hash_function = HashFunction(output_bits=hash_bits)
        group = get_schnorr_group(schnorr_set)
        pkg = PrivateKeyGenerator(get_gq_modulus(gq_set), hash_function)
        return cls(group=group, pkg=pkg, hash_function=hash_function)

    @classmethod
    def generate(
        cls,
        *,
        p_bits: int = 1024,
        q_bits: int = 160,
        modulus_bits: int = 1024,
        hash_bits: int = 160,
        seed: object = 0,
    ) -> "SystemSetup":
        """Generate fresh parameters of the requested sizes (paper defaults)."""
        rng = DeterministicRNG(seed, label="system-setup")
        hash_function = HashFunction(output_bits=hash_bits)
        p, q, g = generate_schnorr_parameters(p_bits, q_bits, rng.fork("schnorr"))
        group = SchnorrGroup(p=p, q=q, g=g)
        modulus = generate_rsa_modulus(modulus_bits, rng.fork("gq"))
        pkg = PrivateKeyGenerator(modulus, hash_function)
        return cls(group=group, pkg=pkg, hash_function=hash_function)

    # -------------------------------------------------------------- shortcuts
    @property
    def gq_params(self) -> GQParameters:
        """The public GQ parameters ``(n, e, H)``."""
        return self.pkg.params

    @property
    def registry(self) -> IdentityRegistry:
        """The identity registry used by the PKG."""
        return self.pkg.registry

    def enroll(self, identity: Identity) -> GQPrivateKey:
        """Register an identity and extract its GQ private key."""
        return self.pkg.register_and_extract(identity)

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"SystemSetup(group: {self.group.describe()}, "
            f"GQ modulus: {self.gq_params.modulus_bits} bits, "
            f"H output: {self.hash_function.output_bits} bits)"
        )


@dataclass
class PartyState:
    """Everything one group member holds during and between protocol runs."""

    identity: Identity
    private_key: GQPrivateKey
    rng: DeterministicRNG
    node: Node
    #: ephemeral DH exponent r_i (refreshed by the protocols as the paper dictates)
    r: Optional[int] = None
    #: keying material z_i = g^{r_i}
    z: Optional[int] = None
    #: GQ commitment secret tau_i and public commitment t_i = tau_i^e
    tau: Optional[int] = None
    t: Optional[int] = None
    #: the group key this member currently holds
    group_key: Optional[int] = None

    @property
    def recorder(self) -> CostRecorder:
        """The node's cost recorder (operations and bits)."""
        return self.node.recorder

    def require_ephemeral(self) -> None:
        """Raise unless the member has a current exponent and keying material."""
        if self.r is None or self.z is None:
            raise ProtocolError(
                f"{self.identity.name} has no ephemeral keying state; run the initial GKA first"
            )


@dataclass
class GroupState:
    """The collective state of an established group.

    This is what the dynamic protocols transform: the ring ordering, the
    publicly known ``z_i``/``t_i`` tables, the group key, and each member's
    private :class:`PartyState`.
    """

    setup: SystemSetup
    ring: RingTopology
    parties: Dict[str, PartyState]
    group_key: Optional[int] = None

    # ------------------------------------------------------------- accessors
    def party(self, identity: Identity) -> PartyState:
        """The state of one member."""
        try:
            return self.parties[identity.name]
        except KeyError:
            raise ParameterError(f"{identity.name!r} is not a member of this group") from None

    @property
    def members(self) -> List[Identity]:
        """Members in ring order."""
        return self.ring.members

    @property
    def size(self) -> int:
        """Group size ``n``."""
        return self.ring.size

    def z_table(self) -> Dict[str, int]:
        """Current publicly-known keying material ``z_i`` per member name."""
        return {name: state.z for name, state in self.parties.items() if state.z is not None}

    def t_table(self) -> Dict[str, int]:
        """Current publicly-known GQ commitments ``t_i`` per member name."""
        return {name: state.t for name, state in self.parties.items() if state.t is not None}

    def keys_by_member(self) -> Dict[str, Optional[int]]:
        """The group key as held by each member (for agreement checks)."""
        return {name: state.group_key for name, state in self.parties.items()}

    def agreed_key(self) -> Optional[int]:
        """The group key if every member holds the same one, else ``None``.

        This is the single source of truth for the "what key did the group
        agree on" question; :attr:`ProtocolResult.group_key` and
        :attr:`~repro.core.session.GroupSession.group_key` both delegate here.
        """
        keys = set(self.keys_by_member().values())
        if len(keys) == 1:
            return next(iter(keys))
        return None

    def all_agree(self) -> bool:
        """Whether every member holds the same, non-null group key."""
        keys = list(self.keys_by_member().values())
        return bool(keys) and all(k is not None and k == keys[0] for k in keys)

    def recorders(self) -> Dict[str, CostRecorder]:
        """Each member's cost recorder."""
        return {name: state.recorder for name, state in self.parties.items()}

    def reset_costs(self) -> None:
        """Clear every member's recorder (used between experiment phases)."""
        for state in self.parties.values():
            state.node.reset_costs()


@dataclass
class ProtocolResult:
    """What a protocol run returns.

    ``sim_latency_s`` and ``timeouts`` are the virtual-time observables of
    the kernel-driven execution: how long the run took on the simulated
    radio medium (0.0 under the instant/synchronous driver) and how many
    round timeouts fired while losses were being recovered.
    """

    protocol: str
    state: GroupState
    medium: BroadcastMedium
    rounds: int
    #: virtual seconds from first broadcast to quiescence (0.0 in instant mode)
    sim_latency_s: float = 0.0
    #: machine-round timeouts fired during the run (loss recovery in virtual time)
    timeouts: int = 0

    @property
    def group_key(self) -> Optional[int]:
        """The agreed group key (``None`` if the members disagree)."""
        return self.state.agreed_key()

    def all_agree(self) -> bool:
        """Whether every member computed the same key."""
        return self.state.all_agree()

    def per_member_energy(self, device: DeviceProfile) -> Dict[str, float]:
        """Total Joules per member under the given device profile."""
        return {
            name: device.total_j(recorder)
            for name, recorder in self.state.recorders().items()
        }

    def total_messages(self) -> int:
        """Number of messages placed on the medium during the run."""
        return self.medium.total_messages()


# ---------------------------------------------------------------------------
# Protocol strategy interface
# ---------------------------------------------------------------------------

class Protocol(abc.ABC):
    """Common strategy interface over every group-key-agreement protocol.

    The proposed protocol and all baselines expose the same entry points:

    * :meth:`build_machines` — decompose one run into per-party
      :class:`~repro.engine.machine.PartyMachine` round state machines (the
      reactive core every subclass implements);
    * :meth:`run` — establish a key among a member list from scratch, by
      stepping the machines on a virtual-time
      :class:`~repro.engine.kernel.EventKernel` to quiescence.  Without an
      ``engine`` profile this is the *instant* mode, bit-identical to the
      historical synchronous execution; with an
      :class:`~repro.engine.executor.EngineConfig` carrying a latency model,
      deliveries take virtual time and losses surface as round timeouts and
      retransmissions (see :mod:`repro.engine`);
    * :meth:`apply_event` — transform an established :class:`GroupState`
      under a :mod:`repro.network.events` membership event.

    Protocols that have no dynamic sub-protocols (every baseline) inherit the
    default :meth:`apply_event`, which re-executes :meth:`run` over the
    post-event membership — exactly the BD-re-execution semantics the paper's
    Tables 4 and 5 compare against.  The proposed protocol overrides it to
    dispatch to its Join/Leave/Merge/Partition protocols, and advertises that
    via :attr:`supported_events`.

    Protocols are selected by :attr:`name` through
    :mod:`repro.core.registry`, so runners, benchmarks and the
    :mod:`repro.sim` scenario engine never import concrete classes.
    """

    #: Registry name of the protocol (subclasses must set this).
    name: str = ""
    #: Membership-event kinds (``"join"``, ``"leave"``, ``"merge"``,
    #: ``"partition"``) this protocol handles natively, i.e. without a full
    #: re-execution of the initial GKA.
    supported_events: FrozenSet[str] = frozenset()

    def __init__(self, setup: "SystemSetup") -> None:
        self.setup = setup

    @abc.abstractmethod
    def build_machines(
        self,
        members: Sequence[Identity],
        *,
        medium: BroadcastMedium,
        seed: object = 0,
        **kwargs: object,
    ) -> MachinePlan:
        """Decompose one establishment run into per-party state machines.

        Implementations validate the member list, enroll/attach the parties
        (in ring order — machine list order *is* the deterministic
        same-instant transmission order) and return a
        :class:`~repro.engine.machine.MachinePlan` whose ``finish`` callback
        assembles the :class:`ProtocolResult` from the engine's statistics.
        """

    def run(
        self,
        members: Sequence[Identity],
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
        **kwargs: object,
    ) -> "ProtocolResult":
        """Establish a group key among ``members`` and return the result.

        This is a thin driver over the reactive machines: it builds the
        :class:`~repro.engine.machine.MachinePlan` and steps the event kernel
        to quiescence.  ``engine=None`` (the default) runs in instant mode —
        same transcripts, keys and energy ledgers as the pre-kernel
        synchronous implementation.  An :class:`~repro.engine.executor.
        EngineConfig` carrying an adversary suite puts the run under attack:
        the executor consults the attackers on every transmission, so a
        tampered run ends in a verification error (detection) or in whatever
        inconsistent state the protocol failed to notice.
        """
        medium = medium if medium is not None else BroadcastMedium()
        plan = self.build_machines(members, medium=medium, seed=seed, **kwargs)
        return drive_plan(plan, medium, engine=engine)

    def handles_natively(self, event: MembershipEvent) -> bool:
        """Whether ``event`` is served by a dedicated dynamic sub-protocol."""
        return getattr(event, "kind", None) in self.supported_events

    def apply_event(
        self,
        state: GroupState,
        event: MembershipEvent,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> "ProtocolResult":
        """Apply a membership event, returning the post-event result.

        Default implementation: full re-execution of :meth:`run` over the
        post-event membership.  The previous members' nodes are detached from
        the medium first — re-running attaches fresh nodes for the surviving
        members, and departed members must stop receiving (and being charged
        for) traffic.
        """
        members = membership_after(state.members, event)
        if medium is not None:
            for member in state.members:
                medium.detach(member)
        return self.run(members, medium=medium, seed=seed, engine=engine)

    def merge_states(
        self,
        state: GroupState,
        other: GroupState,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> "ProtocolResult":
        """Merge another *established* group into this one.

        The generic strategy — all the original BD paper offers — is a full
        re-execution over the union of both memberships.  The proposed
        protocol overrides this with its dedicated Merge sub-protocol.  This
        hook is what lets :class:`~repro.core.session.GroupSession` offer
        ``merge`` for any registered protocol.
        """
        members = list(state.members) + list(other.members)
        if medium is not None:
            for member in state.members:
                medium.detach(member)
            for member in other.members:
                medium.detach(member)
        return self.run(members, medium=medium, seed=seed, engine=engine)

    def describe(self) -> str:
        """One-line summary used by reports."""
        native = ", ".join(sorted(self.supported_events)) or "none (re-runs the GKA)"
        return f"{self.name} (native dynamic events: {native})"


# ---------------------------------------------------------------------------
# Burmester–Desmedt algebra
# ---------------------------------------------------------------------------

def compute_bd_x_value(
    group: SchnorrGroup,
    z_right: int,
    z_left: int,
    r_i: int,
) -> int:
    """The paper's equation (1): ``X_i = (z_{i+1} / z_{i-1})^{r_i} mod p``."""
    return group.power(group.div(z_right, z_left), r_i)


def compute_bd_key(
    group: SchnorrGroup,
    ring_names: Sequence[str],
    member_name: str,
    r_i: int,
    z_table: Mapping[str, int],
    x_table: Mapping[str, int],
) -> int:
    """The Burmester–Desmedt group key, computed from one member's view.

    ``K = (z_{i-1})^{n·r_i} · X_i^{n-1} · X_{i+1}^{n-2} ··· X_{i+n-2}`` which
    telescopes to ``prod_j g^{r_j r_{j+1}}`` (the paper's equation (3)).

    Parameters
    ----------
    ring_names:
        Member names in ring order (the *current* ring — for Leave/Partition
        this is the ring with the departed members already removed).
    member_name:
        The member doing the computation.
    r_i:
        That member's current secret exponent.
    z_table / x_table:
        Publicly known ``z_j`` and ``X_j`` values keyed by member name.
    """
    n = len(ring_names)
    if n < 2:
        raise ParameterError("need at least two members to compute a group key")
    try:
        position = ring_names.index(member_name)
    except ValueError:
        raise ParameterError(f"{member_name!r} is not in the ring") from None
    left_name = ring_names[(position - 1) % n]
    # One simultaneous multi-exponentiation instead of n independent ones:
    # the single q-sized exponent n·r_i drives the shared squaring chain and
    # the n-1 small X exponents ride along, so the work no longer grows with
    # a full exponentiation per member.
    bases = [z_table[left_name]]
    exponents = [n * r_i]
    for offset in range(n - 1):
        name = ring_names[(position + offset) % n]
        bases.append(x_table[name])
        exponents.append(n - 1 - offset)
    return active_backend().multi_exp(bases, exponents, group.p)


def verify_x_product(group: SchnorrGroup, x_values: Sequence[int]) -> bool:
    """Lemma 1: the product of all ``X_i`` must be 1 mod p.

    Used by the proposed protocol (and Leave/Partition) to detect corrupted
    Round 2 keying material before deriving a key from it.
    """
    return group.product(x_values) == 1
