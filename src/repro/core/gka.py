"""The proposed ID-based authenticated group key agreement protocol (Section 4).

Two broadcast rounds establish an authenticated Burmester–Desmedt group key
among ``n`` users, with authentication provided by a *batch-verified* variant
of the GQ ID-based signature scheme:

* **Round 1** — each ``U_i`` draws ``r_i ∈ Z_q^*`` and ``tau_i ∈ Z_n^*`` and
  broadcasts ``m_i = U_i || z_i || t_i`` where ``z_i = g^{r_i} mod p`` and
  ``t_i = tau_i^e mod n``.
* **Round 2** — each ``U_i`` computes ``X_i = (z_{i+1}/z_{i-1})^{r_i}``, the
  aggregates ``Z = prod z_j mod p`` and ``T = prod t_j mod n``, the common
  challenge ``c = H(T, Z)`` and its response ``s_i = tau_i · S_{U_i}^c mod n``,
  then broadcasts ``m'_i = U_i || X_i || s_i`` (``U_1``, the trusted
  controller, broadcasts last).
* **Authentication & key computation** — each ``U_i`` checks the single batch
  equation (2) ``c = H((prod s_j)^e · (prod H(U_j))^{-c}, Z)``, then Lemma 1
  (``prod X_j = 1 mod p``), and finally derives
  ``K = prod_j g^{r_j r_{j+1}} mod p``.

The protocol executes as one :class:`~repro.engine.machine.PartyMachine` per
member on the virtual-time event kernel: Round 1 is emitted from ``start``,
Round 2 fires when a member's Round-1 view completes (the controller
deliberately withholds its Round-2 broadcast until it has everyone else's,
reproducing the paper's "U_1 transmits last").  On a failed batch check the
paper has "all members retransmit again"; a shared round coordinator — the
machine analogue of the synchronous implementation's shared verdict flag —
collects every member's verification verdict and triggers a bounded
retransmission round when any member rejected, so fault injection tests can
exercise both the failure and the recovery path.

Per-member cost accounting follows the paper's Table 1 vocabulary: three
modular exponentiations (``z_i``, ``X_i`` and the final key derivation), one
GQ signature generation and one (batch) GQ verification, two broadcast
transmissions and ``2(n-1)`` receptions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..engine.executor import EngineConfig, EngineStats
from ..engine.machine import MachinePlan, Outbound, PartyMachine
from ..exceptions import BatchVerificationError, ParameterError, ProtocolError
from ..mathutils.modular import product_mod
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import int_to_bytes
from ..network.events import (
    JoinEvent,
    LeaveEvent,
    MembershipEvent,
    MergeEvent,
    PartitionEvent,
)
from ..network.medium import BroadcastMedium
from ..network.message import Message, group_element_part, identity_part
from ..network.node import Node
from ..network.topology import RingTopology
from ..pki.identity import Identity
from ..signatures.gq import gq_batch_verify, gq_commitment, gq_response
from .base import (
    GroupState,
    PartyState,
    Protocol,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
    verify_x_product,
)
from .registry import register_protocol

__all__ = ["ProposedGKAProtocol", "TamperFunction"]

#: Optional hook that may alter a message in flight (used by fault-injection
#: tests).  It receives the message and the retransmission attempt number and
#: returns the (possibly modified) message.
TamperFunction = Callable[[Message, int], Message]


class _Round2Coordinator:
    """Shared verdict collection for one GKA run.

    The synchronous implementation decided "all members retransmit" from a
    shared ``all_verified`` flag; the reactive decomposition keeps that exact
    semantics through this object: every machine reports its batch/Lemma-1
    verdict per attempt, and once all ``n`` verdicts are in the coordinator
    either finishes the run or wakes every member for the next attempt —
    raising :class:`~repro.exceptions.BatchVerificationError` once the
    retransmission budget is exhausted.
    """

    def __init__(self, ring: RingTopology, max_retransmissions: int) -> None:
        self.ring = ring
        self.max_retransmissions = max_retransmissions
        self.attempt = 0
        self.machines: List["_GkaPartyMachine"] = []
        self._verdicts: Dict[str, bool] = {}

    def round2_label(self) -> str:
        """The current attempt's round label (``round2.0``, ``round2.1``...)."""
        return f"round2.{self.attempt}"

    def report(self, machine: "_GkaPartyMachine", verdict: bool) -> None:
        """Record one member's verification verdict and resolve if complete."""
        self._verdicts[machine.identity.name] = verdict
        if len(self._verdicts) < self.ring.size:
            return
        if all(self._verdicts.values()):
            for member in self.machines:
                member.finished = True
                member.waiting_for = None
            return
        self.attempt += 1
        if self.attempt > self.max_retransmissions:
            raise BatchVerificationError(
                "batch verification kept failing after "
                f"{self.max_retransmissions} retransmissions"
            )
        self._verdicts.clear()
        # "All members retransmit again": non-controllers re-broadcast their
        # Round 2 immediately; the controller re-arms and, as always,
        # transmits last — after it has received everyone else's new copy.
        for member in self.machines:
            member.prepare_attempt(self.attempt)
            if not member.is_controller:
                member.context.wake(member, "retransmit-round2")


class _GkaPartyMachine(PartyMachine):
    """One member's view of the proposed two-round GKA."""

    def __init__(
        self,
        party: PartyState,
        setup: SystemSetup,
        ring: RingTopology,
        coordinator: _Round2Coordinator,
        tamper: Optional[TamperFunction],
    ) -> None:
        super().__init__(party.identity, party.node)
        self.party = party
        self.setup = setup
        self.ring = ring
        self.coordinator = coordinator
        self.tamper = tamper
        self.is_controller = ring.controller().name == party.identity.name
        self._ring_names = [m.name for m in ring.members]
        self._z_view: Dict[str, int] = {}
        self._t_view: Dict[str, int] = {}
        self._x_table: Dict[str, int] = {}
        self._s_table: Dict[str, int] = {}
        self._challenge: Optional[int] = None
        self._aggregate: Optional[int] = None
        self._round2_buffer: List[Message] = []
        self._round1_complete = False

    # ----------------------------------------------------------------- hooks
    def start(self, now: float) -> List[Outbound]:
        group = self.setup.group
        params = self.setup.gq_params
        party = self.party
        party.r = group.random_exponent(party.rng)
        party.z = group.exp_g(party.r)
        party.recorder.record_operation("modexp")  # z_i = g^{r_i}
        party.tau, party.t = gq_commitment(params, party.rng)
        self._z_view[self.identity.name] = party.z
        self._t_view[self.identity.name] = party.t
        self.waiting_for = "round1"
        message = Message.broadcast(
            self.identity,
            "round1",
            [
                identity_part(self.identity),
                group_element_part("z", party.z, group.element_bits),
                group_element_part("t", party.t, params.modulus_bits),
            ],
        )
        return [Outbound(message)]

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        label = message.round_label
        if label == "round1":
            return self._on_round1(message, now)
        if label == self.coordinator.round2_label():
            if not self._round1_complete:
                # Latency mode can reorder rounds across multi-hop paths;
                # hold Round-2 copies until the Round-1 view is complete.
                self._round2_buffer.append(message)
                return []
            return self._on_round2(message, now)
        return []  # stale attempt label after a retransmission round

    def on_wake(self, payload: object, now: float) -> List[Outbound]:
        if payload == "retransmit-round2":
            return self._emit_round2(now)
        return []

    # --------------------------------------------------------------- round 1
    def _on_round1(self, message: Message, now: float) -> List[Outbound]:
        sender: Identity = message.value("identity")  # type: ignore[assignment]
        self._z_view[sender.name] = int(message.value("z"))
        self._t_view[sender.name] = int(message.value("t"))
        if len(self._z_view) != self.ring.size:
            return []
        self._round1_complete = True
        outs: List[Outbound] = []
        if self.is_controller:
            # U_1 broadcasts last: arm for the others' Round 2 first.
            self.waiting_for = self.coordinator.round2_label()
        else:
            outs.extend(self._emit_round2(now))
        buffered, self._round2_buffer = self._round2_buffer, []
        for held in buffered:
            if held.round_label == self.coordinator.round2_label():
                outs.extend(self._on_round2(held, now))
        return outs

    # --------------------------------------------------------------- round 2
    def _emit_round2(self, now: float) -> List[Outbound]:
        group = self.setup.group
        params = self.setup.gq_params
        party = self.party
        attempt = self.coordinator.attempt
        label = self.coordinator.round2_label()
        left = self.ring.left_neighbour(self.identity)
        right = self.ring.right_neighbour(self.identity)
        x_value = compute_bd_x_value(
            group, self._z_view[right.name], self._z_view[left.name], party.r
        )
        party.recorder.record_operation("modexp")  # X_i
        big_z = group.product(self._z_view[name] for name in sorted(self._z_view))
        big_t = product_mod((self._t_view[name] for name in sorted(self._t_view)), params.n)
        challenge = params.hash_function.challenge(int_to_bytes(big_t), int_to_bytes(big_z))
        party.recorder.record_operation("hash")
        response = gq_response(params, party.private_key, party.tau, challenge)
        party.recorder.record_signature("gq", "gen")
        self._challenge = challenge
        self._aggregate = big_z
        self._x_table[self.identity.name] = x_value
        self._s_table[self.identity.name] = response
        self.waiting_for = label
        message = Message.broadcast(
            self.identity,
            label,
            [
                identity_part(self.identity),
                group_element_part("X", x_value, group.element_bits),
                group_element_part("s", response, params.modulus_bits),
            ],
        )
        if self.tamper is not None:
            message = self.tamper(message, attempt)
        return [Outbound(message)]

    def _on_round2(self, message: Message, now: float) -> List[Outbound]:
        sender: Identity = message.value("identity")  # type: ignore[assignment]
        self._x_table[sender.name] = int(message.value("X"))
        self._s_table[sender.name] = int(message.value("s"))
        others = self.ring.size - 1
        received = len(self._x_table) - (1 if self.identity.name in self._x_table else 0)
        outs: List[Outbound] = []
        if self.is_controller and self.identity.name not in self._s_table:
            if received < others:
                return []
            # All the others have transmitted: the controller now computes,
            # broadcasts (last) and verifies its own complete view.
            outs.extend(self._emit_round2(now))
            self._verify(now)
            return outs
        if len(self._s_table) < self.ring.size:
            return []
        self._verify(now)
        return outs

    # ----------------------------------------------------------- verification
    def _verify(self, now: float) -> None:
        group = self.setup.group
        params = self.setup.gq_params
        party = self.party
        assert self._challenge is not None and self._aggregate is not None
        ordered_identities = [
            self.ring.members[i].to_bytes() for i in range(self.ring.size)
        ]
        ordered_responses = [self._s_table[name] for name in self._ring_names]
        batch_ok = gq_batch_verify(
            params,
            ordered_identities,
            ordered_responses,
            self._challenge,
            int_to_bytes(self._aggregate),
        )
        party.recorder.record_signature("gq", "ver")
        verdict = batch_ok
        if batch_ok:
            if not verify_x_product(group, [self._x_table[name] for name in self._ring_names]):
                verdict = False
            else:
                key = compute_bd_key(
                    group,
                    self._ring_names,
                    self.identity.name,
                    party.r,
                    self._z_view,
                    self._x_table,
                )
                party.recorder.record_operation("modexp")  # (z_{i-1})^{n r_i}
                party.group_key = key
        self.coordinator.report(self, verdict)

    # -------------------------------------------------------- retransmission
    def prepare_attempt(self, attempt: int) -> None:
        """Reset the Round-2 tables for retransmission attempt ``attempt``."""
        self._x_table = {}
        self._s_table = {}
        self._challenge = None
        self._aggregate = None
        self._round2_buffer = []
        self.waiting_for = self.coordinator.round2_label()


class ProposedGKAProtocol(Protocol):
    """The paper's initial GKA protocol ("Our Prop. sch." column of Table 1)."""

    name = "proposed-gka"
    #: All four membership events are served by dedicated dynamic protocols —
    #: no full re-execution is ever needed.
    supported_events = frozenset({"join", "leave", "merge", "partition"})

    def __init__(self, setup: SystemSetup, *, max_retransmissions: int = 2) -> None:
        super().__init__(setup)
        self.max_retransmissions = max_retransmissions

    # ------------------------------------------------------------------ setup
    def _build_parties(
        self,
        members: Sequence[Identity],
        medium: BroadcastMedium,
        rng: DeterministicRNG,
    ) -> Dict[str, PartyState]:
        parties: Dict[str, PartyState] = {}
        for identity in members:
            key = self.setup.enroll(identity)
            node = Node(identity)
            medium.attach(node)
            parties[identity.name] = PartyState(
                identity=identity,
                private_key=key,
                rng=rng.fork(f"party/{identity.name}"),
                node=node,
            )
        return parties

    # -------------------------------------------------------------- machines
    def build_machines(
        self,
        members: Sequence[Identity],
        *,
        medium: BroadcastMedium,
        seed: object = 0,
        tamper: Optional[TamperFunction] = None,
        **kwargs: object,
    ) -> MachinePlan:
        """Decompose the two-round protocol into per-member machines."""
        if kwargs:
            raise ParameterError(f"unknown run options: {sorted(kwargs)}")
        if len(members) < 2:
            raise ParameterError("the GKA needs at least two members")
        ring = RingTopology(members)
        rng = DeterministicRNG(seed, label="proposed-gka")
        parties = self._build_parties(members, medium, rng)
        coordinator = _Round2Coordinator(ring, self.max_retransmissions)
        machines = [
            _GkaPartyMachine(parties[identity.name], self.setup, ring, coordinator, tamper)
            for identity in ring.members
        ]
        coordinator.machines = machines

        def finish(stats: EngineStats) -> ProtocolResult:
            state = GroupState(setup=self.setup, ring=ring, parties=parties)
            state.group_key = parties[ring.controller().name].group_key
            return ProtocolResult(
                protocol=self.name,
                state=state,
                medium=medium,
                rounds=2,
                sim_latency_s=stats.sim_time_s,
                timeouts=stats.timeouts,
            )

        return MachinePlan(machines=machines, finish=finish, rounds=2)

    # ---------------------------------------------------------- dynamic events
    def apply_event(
        self,
        state: GroupState,
        event: MembershipEvent,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        """Dispatch a membership event to the matching dynamic protocol.

        Unlike the re-execution default inherited by the baselines, every
        event here runs the paper's dedicated Join/Leave/Merge/Partition
        protocol over the existing :class:`GroupState`.  For a merge, the
        incoming group is first keyed among itself on a private medium (it is
        a separate radio domain until the networks actually meet), then the
        two controllers run the Merge protocol on the shared medium.
        """
        # Imported here: the dynamic-protocol modules import from this
        # package's base and would otherwise form a cycle at import time.
        from .join import JoinProtocol
        from .leave import LeaveProtocol
        from .merge import MergeProtocol
        from .partition import PartitionProtocol

        if isinstance(event, JoinEvent):
            return JoinProtocol(self.setup).run(
                state, event.joining, medium=medium, seed=seed, engine=engine
            )
        if isinstance(event, LeaveEvent):
            return LeaveProtocol(self.setup).run(
                state, event.leaving, medium=medium, seed=seed, engine=engine
            )
        if isinstance(event, PartitionEvent):
            return PartitionProtocol(self.setup).run(
                state, list(event.leaving), medium=medium, seed=seed, engine=engine
            )
        if isinstance(event, MergeEvent):
            # Named child seed (not string concatenation) so the sub-group's
            # randomness is domain-separated like every other consumer.
            other_seed = DeterministicRNG(seed, label="merge-event").derive_seed("other-group")
            # The incoming group keys itself on its own private radio domain
            # *before* the networks meet — instant mode, off the shared
            # medium's virtual clock.
            other = self.run(list(event.other_group), seed=other_seed)
            # Clear its establishment costs so the merge step is charged only
            # with what the Merge protocol itself does (Table 5 accounting).
            other.state.reset_costs()
            return MergeProtocol(self.setup).run(
                state, other.state, medium=medium, seed=seed, engine=engine
            )
        raise ProtocolError(f"unknown membership event {event!r}")

    def merge_states(
        self,
        state: GroupState,
        other: GroupState,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        """Merge an established peer group via the dedicated Merge protocol."""
        from .merge import MergeProtocol

        return MergeProtocol(self.setup).run(
            state, other, medium=medium, seed=seed, engine=engine
        )


register_protocol("proposed-gka", ProposedGKAProtocol, aliases=("proposed",))
