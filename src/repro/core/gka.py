"""The proposed ID-based authenticated group key agreement protocol (Section 4).

Two broadcast rounds establish an authenticated Burmester–Desmedt group key
among ``n`` users, with authentication provided by a *batch-verified* variant
of the GQ ID-based signature scheme:

* **Round 1** — each ``U_i`` draws ``r_i ∈ Z_q^*`` and ``tau_i ∈ Z_n^*`` and
  broadcasts ``m_i = U_i || z_i || t_i`` where ``z_i = g^{r_i} mod p`` and
  ``t_i = tau_i^e mod n``.
* **Round 2** — each ``U_i`` computes ``X_i = (z_{i+1}/z_{i-1})^{r_i}``, the
  aggregates ``Z = prod z_j mod p`` and ``T = prod t_j mod n``, the common
  challenge ``c = H(T, Z)`` and its response ``s_i = tau_i · S_{U_i}^c mod n``,
  then broadcasts ``m'_i = U_i || X_i || s_i`` (``U_1``, the trusted
  controller, broadcasts last).
* **Authentication & key computation** — each ``U_i`` checks the single batch
  equation (2) ``c = H((prod s_j)^e · (prod H(U_j))^{-c}, Z)``, then Lemma 1
  (``prod X_j = 1 mod p``), and finally derives
  ``K = prod_j g^{r_j r_{j+1}} mod p``.

On a failed check the paper has "all members retransmit again"; the
implementation models that with a bounded retransmission loop so fault
injection tests can exercise both the failure and the recovery path.

Per-member cost accounting follows the paper's Table 1 vocabulary: three
modular exponentiations (``z_i``, ``X_i`` and the final key derivation), one
GQ signature generation and one (batch) GQ verification, two broadcast
transmissions and ``2(n-1)`` receptions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..exceptions import BatchVerificationError, KeyConfirmationError, ParameterError, ProtocolError
from ..mathutils.modular import product_mod
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import int_to_bytes
from ..network.events import (
    JoinEvent,
    LeaveEvent,
    MembershipEvent,
    MergeEvent,
    PartitionEvent,
)
from ..network.medium import BroadcastMedium
from ..network.message import Message, group_element_part, identity_part
from ..network.node import Node
from ..network.topology import RingTopology
from ..pki.identity import Identity
from ..signatures.gq import gq_batch_verify, gq_commitment, gq_response
from .base import (
    GroupState,
    PartyState,
    Protocol,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
    verify_x_product,
)
from .registry import register_protocol

__all__ = ["ProposedGKAProtocol", "TamperFunction"]

#: Optional hook that may alter a message in flight (used by fault-injection
#: tests).  It receives the message and the retransmission attempt number and
#: returns the (possibly modified) message.
TamperFunction = Callable[[Message, int], Message]


class ProposedGKAProtocol(Protocol):
    """The paper's initial GKA protocol ("Our Prop. sch." column of Table 1)."""

    name = "proposed-gka"
    #: All four membership events are served by dedicated dynamic protocols —
    #: no full re-execution is ever needed.
    supported_events = frozenset({"join", "leave", "merge", "partition"})

    def __init__(self, setup: SystemSetup, *, max_retransmissions: int = 2) -> None:
        super().__init__(setup)
        self.max_retransmissions = max_retransmissions

    # ------------------------------------------------------------------ setup
    def _build_parties(
        self,
        members: Sequence[Identity],
        medium: BroadcastMedium,
        rng: DeterministicRNG,
    ) -> Dict[str, PartyState]:
        parties: Dict[str, PartyState] = {}
        for identity in members:
            key = self.setup.enroll(identity)
            node = Node(identity)
            medium.attach(node)
            parties[identity.name] = PartyState(
                identity=identity,
                private_key=key,
                rng=rng.fork(f"party/{identity.name}"),
                node=node,
            )
        return parties

    # ------------------------------------------------------------------- run
    def run(
        self,
        members: Sequence[Identity],
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        tamper: Optional[TamperFunction] = None,
    ) -> ProtocolResult:
        """Execute the two-round protocol among ``members`` and return the result."""
        if len(members) < 2:
            raise ParameterError("the GKA needs at least two members")
        ring = RingTopology(members)
        medium = medium if medium is not None else BroadcastMedium()
        rng = DeterministicRNG(seed, label="proposed-gka")
        parties = self._build_parties(members, medium, rng)
        group = self.setup.group
        params = self.setup.gq_params

        # ----------------------------------------------------------- Round 1
        for identity in ring.members:
            party = parties[identity.name]
            party.r = group.random_exponent(party.rng)
            party.z = group.exp_g(party.r)
            party.recorder.record_operation("modexp")  # z_i = g^{r_i}
            party.tau, party.t = gq_commitment(params, party.rng)
            message = Message.broadcast(
                identity,
                "round1",
                [
                    identity_part(identity),
                    group_element_part("z", party.z, group.element_bits),
                    group_element_part("t", party.t, params.modulus_bits),
                ],
            )
            medium.send(message)

        # Everyone assembles its view of the z and t tables from Round 1.
        views: Dict[str, Dict[str, Dict[str, int]]] = {}
        for identity in ring.members:
            party = parties[identity.name]
            z_view: Dict[str, int] = {identity.name: party.z}
            t_view: Dict[str, int] = {identity.name: party.t}
            for message in party.node.drain_inbox("round1"):
                sender: Identity = message.value("identity")  # type: ignore[assignment]
                z_view[sender.name] = int(message.value("z"))
                t_view[sender.name] = int(message.value("t"))
            if len(z_view) != ring.size:
                raise ProtocolError(
                    f"{identity.name} received {len(z_view) - 1} Round 1 messages, "
                    f"expected {ring.size - 1}"
                )
            views[identity.name] = {"z": z_view, "t": t_view}

        # -------------------------------------------------- Round 2 + verify
        attempt = 0
        while True:
            agreed = self._round2_and_verify(ring, parties, views, medium, attempt, tamper)
            if agreed:
                break
            attempt += 1
            if attempt > self.max_retransmissions:
                raise BatchVerificationError(
                    "batch verification kept failing after "
                    f"{self.max_retransmissions} retransmissions"
                )

        state = GroupState(setup=self.setup, ring=ring, parties=parties)
        state.group_key = parties[ring.controller().name].group_key
        return ProtocolResult(protocol=self.name, state=state, medium=medium, rounds=2)

    # ---------------------------------------------------------- dynamic events
    def apply_event(
        self,
        state: GroupState,
        event: MembershipEvent,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
    ) -> ProtocolResult:
        """Dispatch a membership event to the matching dynamic protocol.

        Unlike the re-execution default inherited by the baselines, every
        event here runs the paper's dedicated Join/Leave/Merge/Partition
        protocol over the existing :class:`GroupState`.  For a merge, the
        incoming group is first keyed among itself on a private medium (it is
        a separate radio domain until the networks actually meet), then the
        two controllers run the Merge protocol on the shared medium.
        """
        # Imported here: the dynamic-protocol modules import from this
        # package's base and would otherwise form a cycle at import time.
        from .join import JoinProtocol
        from .leave import LeaveProtocol
        from .merge import MergeProtocol
        from .partition import PartitionProtocol

        if isinstance(event, JoinEvent):
            return JoinProtocol(self.setup).run(state, event.joining, medium=medium, seed=seed)
        if isinstance(event, LeaveEvent):
            return LeaveProtocol(self.setup).run(state, event.leaving, medium=medium, seed=seed)
        if isinstance(event, PartitionEvent):
            return PartitionProtocol(self.setup).run(
                state, list(event.leaving), medium=medium, seed=seed
            )
        if isinstance(event, MergeEvent):
            # Named child seed (not string concatenation) so the sub-group's
            # randomness is domain-separated like every other consumer.
            other_seed = DeterministicRNG(seed, label="merge-event").derive_seed("other-group")
            other = self.run(list(event.other_group), seed=other_seed)
            # The incoming group was keyed before the networks met; clear its
            # establishment costs so the merge step is charged only with what
            # the Merge protocol itself does (the paper's Table 5 accounting).
            other.state.reset_costs()
            return MergeProtocol(self.setup).run(state, other.state, medium=medium, seed=seed)
        raise ProtocolError(f"unknown membership event {event!r}")

    # ----------------------------------------------------------- round 2 body
    def _round2_and_verify(
        self,
        ring: RingTopology,
        parties: Dict[str, PartyState],
        views: Dict[str, Dict[str, Dict[str, int]]],
        medium: BroadcastMedium,
        attempt: int,
        tamper: Optional[TamperFunction],
    ) -> bool:
        group = self.setup.group
        params = self.setup.gq_params
        round_label = f"round2.{attempt}"

        # The paper designates U_1 as the trusted controller that broadcasts
        # last; iterate U_2 ... U_n first, then U_1.
        broadcast_order = ring.members[1:] + [ring.controller()]
        challenges: Dict[str, int] = {}
        aggregates: Dict[str, int] = {}

        for identity in broadcast_order:
            party = parties[identity.name]
            view = views[identity.name]
            z_view, t_view = view["z"], view["t"]
            left = ring.left_neighbour(identity)
            right = ring.right_neighbour(identity)
            x_value = compute_bd_x_value(group, z_view[right.name], z_view[left.name], party.r)
            party.recorder.record_operation("modexp")  # X_i
            big_z = group.product(z_view[name] for name in sorted(z_view))
            big_t = product_mod((t_view[name] for name in sorted(t_view)), params.n)
            challenge = params.hash_function.challenge(int_to_bytes(big_t), int_to_bytes(big_z))
            party.recorder.record_operation("hash")
            response = gq_response(params, party.private_key, party.tau, challenge)
            party.recorder.record_signature("gq", "gen")
            challenges[identity.name] = challenge
            aggregates[identity.name] = big_z
            message = Message.broadcast(
                identity,
                round_label,
                [
                    identity_part(identity),
                    group_element_part("X", x_value, group.element_bits),
                    group_element_part("s", response, params.modulus_bits),
                ],
            )
            if tamper is not None:
                message = tamper(message, attempt)
            medium.send(message)

        # Authentication and key computation at every member.
        all_verified = True
        ring_names = [m.name for m in ring.members]
        for identity in ring.members:
            party = parties[identity.name]
            view = views[identity.name]
            x_table: Dict[str, int] = {}
            s_table: Dict[str, int] = {}
            for message in party.node.drain_inbox(round_label):
                sender: Identity = message.value("identity")  # type: ignore[assignment]
                x_table[sender.name] = int(message.value("X"))
                s_table[sender.name] = int(message.value("s"))
            # Re-add the member's own contribution (it does not receive its
            # own broadcast).
            own_left = ring.left_neighbour(identity)
            own_right = ring.right_neighbour(identity)
            x_table[identity.name] = compute_bd_x_value(
                group, view["z"][own_right.name], view["z"][own_left.name], party.r
            )
            s_table[identity.name] = gq_response(
                params, party.private_key, party.tau, challenges[identity.name]
            )
            ordered_identities = [parties[name].identity.to_bytes() for name in ring_names]
            ordered_responses = [s_table[name] for name in ring_names]
            batch_ok = gq_batch_verify(
                params,
                ordered_identities,
                ordered_responses,
                challenges[identity.name],
                int_to_bytes(aggregates[identity.name]),
            )
            party.recorder.record_signature("gq", "ver")
            if not batch_ok:
                all_verified = False
                continue
            if not verify_x_product(group, [x_table[name] for name in ring_names]):
                all_verified = False
                continue
            key = compute_bd_key(group, ring_names, identity.name, party.r, view["z"], x_table)
            party.recorder.record_operation("modexp")  # (z_{i-1})^{n r_i}
            party.group_key = key
        return all_verified


register_protocol("proposed-gka", ProposedGKAProtocol, aliases=("proposed",))
