"""High-level ``GroupSession`` API.

This is the façade a downstream application uses: establish a group, apply
membership events as they happen, pull symmetric keys for actual payload
encryption, and ask for energy reports.  The session routes everything
through the :class:`~repro.core.base.Protocol` strategy interface and the
name-based registry, so *any* registered protocol — the proposed ID-based
GKA, every baseline, or a third-party machine registered with
:func:`~repro.core.registry.register_protocol` — gets the same half-dozen
methods: protocols with native dynamic sub-protocols serve events through
them, the rest re-execute, and the session never has to know which.

Example
-------
>>> from repro import SystemSetup, GroupSession, Identity
>>> setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
>>> members = [Identity(f"node-{i}") for i in range(5)]
>>> session = GroupSession.establish(setup, members, seed=7)
>>> session.all_agree()
True
>>> session.join(Identity("latecomer"))
>>> session.leave(members[2])
>>> len(session.members)
5

Passing ``protocol="bd-ecdsa"`` (or any registry name, or a
:class:`~repro.core.base.Protocol` instance) swaps the strategy; passing an
:class:`~repro.engine.executor.EngineConfig` as ``engine`` runs every step on
the virtual-time kernel, making :attr:`ProtocolResult.sim_latency_s`
observable in the session history.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..energy.accounting import DeviceProfile, EnergyBreakdown
from ..engine.executor import EngineConfig
from ..exceptions import ProtocolError
from ..hashing.kdf import derive_key_from_group_element
from ..network.events import JoinEvent, LeaveEvent, MembershipEvent, PartitionEvent
from ..network.medium import BroadcastMedium
from ..pki.identity import Identity
from ..symmetric.authenc import SymmetricEnvelope
from .base import GroupState, Protocol, ProtocolResult, SystemSetup
from .registry import create_protocol

__all__ = ["GroupSession"]

#: Default strategy: the paper's proposed protocol.
_DEFAULT_PROTOCOL = "proposed-gka"


class GroupSession:
    """An established secure group with dynamic membership and energy reports."""

    def __init__(
        self,
        setup: SystemSetup,
        state: GroupState,
        device: Optional[DeviceProfile] = None,
        *,
        protocol: Union[str, Protocol, None] = None,
        engine: Optional[EngineConfig] = None,
    ) -> None:
        self.setup = setup
        self.state = state
        # `is None`, not truthiness: a caller-supplied profile must never be
        # silently swapped for the default just because it tests falsy.
        self.device = device if device is not None else DeviceProfile()
        self.protocol = self._resolve(setup, protocol)
        self.engine = engine
        self.history: List[ProtocolResult] = []
        self._event_counter = 0

    @staticmethod
    def _resolve(setup: SystemSetup, protocol: Union[str, Protocol, None]) -> Protocol:
        if isinstance(protocol, Protocol):
            return protocol
        return create_protocol(protocol or _DEFAULT_PROTOCOL, setup)

    # ---------------------------------------------------------- construction
    @classmethod
    def establish(
        cls,
        setup: SystemSetup,
        members: Sequence[Identity],
        *,
        device: Optional[DeviceProfile] = None,
        seed: object = 0,
        medium: Optional[BroadcastMedium] = None,
        protocol: Union[str, Protocol, None] = None,
        engine: Optional[EngineConfig] = None,
    ) -> "GroupSession":
        """Run the initial GKA among ``members`` and wrap the result in a session.

        ``protocol`` selects the strategy by registry name (default: the
        proposed ID-based GKA) or accepts a ready
        :class:`~repro.core.base.Protocol` instance.
        """
        strategy = cls._resolve(setup, protocol)
        result = strategy.run(members, seed=seed, medium=medium, engine=engine)
        session = cls(setup, result.state, device=device, protocol=strategy, engine=engine)
        session.history.append(result)
        return session

    # -------------------------------------------------------------- inspection
    @property
    def members(self) -> List[Identity]:
        """Current members in ring order."""
        return self.state.members

    @property
    def group_key(self) -> Optional[int]:
        """The current group key (a group element), if agreed."""
        return self.state.agreed_key()

    def all_agree(self) -> bool:
        """Whether every member currently holds the same key."""
        return self.state.all_agree()

    def symmetric_key(self, length: int = 16) -> bytes:
        """A symmetric key derived from the group key (for payload encryption)."""
        key = self.group_key
        if key is None:
            raise ProtocolError("the group has not agreed on a key")
        return derive_key_from_group_element(key, length=length)

    def envelope(self) -> SymmetricEnvelope:
        """An authenticated-encryption envelope keyed with the current group key."""
        key = self.group_key
        if key is None:
            raise ProtocolError("the group has not agreed on a key")
        return SymmetricEnvelope(key)

    # ---------------------------------------------------------------- events
    def _next_seed(self, label: str) -> str:
        self._event_counter += 1
        return f"{label}/{self._event_counter}"

    def _apply(self, event: MembershipEvent, seed: object) -> ProtocolResult:
        result = self.protocol.apply_event(
            self.state, event, seed=seed, engine=self.engine
        )
        self.state = result.state
        self.history.append(result)
        return result

    def join(self, joining: Identity, *, seed: object = None) -> ProtocolResult:
        """Admit a new member (natively, or by re-execution for baselines)."""
        return self._apply(
            JoinEvent(joining=joining), seed if seed is not None else self._next_seed("join")
        )

    def leave(self, leaving: Identity, *, seed: object = None) -> ProtocolResult:
        """Remove one member (natively, or by re-execution for baselines)."""
        return self._apply(
            LeaveEvent(leaving=leaving), seed if seed is not None else self._next_seed("leave")
        )

    def partition(self, leaving: Sequence[Identity], *, seed: object = None) -> ProtocolResult:
        """Remove a set of members at once (a network partition)."""
        return self._apply(
            PartitionEvent(leaving=tuple(leaving)),
            seed if seed is not None else self._next_seed("partition"),
        )

    def merge(self, other: "GroupSession", *, seed: object = None) -> ProtocolResult:
        """Merge another session's established group into this one.

        Served by the protocol's :meth:`~repro.core.base.Protocol.merge_states`
        strategy: the proposed scheme runs its dedicated Merge protocol over
        both groups' existing state, baselines re-execute over the union.
        """
        result = self.protocol.merge_states(
            self.state,
            other.state,
            seed=seed if seed is not None else self._next_seed("merge"),
            engine=self.engine,
        )
        self.state = result.state
        self.history.append(result)
        return result

    def apply_event(self, event: MembershipEvent, *, seed: object = None) -> ProtocolResult:
        """Apply a :mod:`repro.network.events` membership event to the session."""
        kind = getattr(event, "kind", "event")
        return self._apply(event, seed if seed is not None else self._next_seed(kind))

    # ---------------------------------------------------------------- energy
    def energy_report(self, device: Optional[DeviceProfile] = None) -> Dict[str, EnergyBreakdown]:
        """Cumulative per-member energy since the recorders were last reset."""
        profile = device or self.device
        return {name: profile.price(rec) for name, rec in self.state.recorders().items()}

    def total_energy_j(self, device: Optional[DeviceProfile] = None) -> float:
        """Total Joules consumed by the whole group so far."""
        return sum(b.total_j for b in self.energy_report(device).values())

    def reset_energy(self) -> None:
        """Clear every member's cost recorder (start a new measurement window)."""
        self.state.reset_costs()
