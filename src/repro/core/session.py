"""High-level ``GroupSession`` API.

This is the façade a downstream application uses: establish a group, apply
membership events as they happen, pull symmetric keys for actual payload
encryption, and ask for energy reports.  It wires together the initial GKA
(:class:`~repro.core.gka.ProposedGKAProtocol`), the four dynamic protocols,
the key-derivation function, and the energy accounting — everything the paper
describes, behind half a dozen methods.

Example
-------
>>> from repro import SystemSetup, GroupSession, Identity
>>> setup = SystemSetup.from_param_sets("test-256", "gq-test-256")
>>> members = [Identity(f"node-{i}") for i in range(5)]
>>> session = GroupSession.establish(setup, members, seed=7)
>>> session.all_agree()
True
>>> session.join(Identity("latecomer"))
>>> session.leave(members[2])
>>> len(session.members)
5
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..energy.accounting import DeviceProfile, EnergyBreakdown
from ..exceptions import ProtocolError
from ..hashing.kdf import derive_key_from_group_element
from ..network.events import JoinEvent, LeaveEvent, MembershipEvent, MergeEvent, PartitionEvent
from ..network.medium import BroadcastMedium
from ..pki.identity import Identity
from ..symmetric.authenc import SymmetricEnvelope
from .base import GroupState, ProtocolResult, SystemSetup
from .gka import ProposedGKAProtocol
from .join import JoinProtocol
from .leave import LeaveProtocol
from .merge import MergeProtocol
from .partition import PartitionProtocol

__all__ = ["GroupSession"]


class GroupSession:
    """An established secure group with dynamic membership and energy reports."""

    def __init__(self, setup: SystemSetup, state: GroupState, device: Optional[DeviceProfile] = None) -> None:
        self.setup = setup
        self.state = state
        self.device = device or DeviceProfile()
        self.history: List[ProtocolResult] = []
        self._event_counter = 0

    # ---------------------------------------------------------- construction
    @classmethod
    def establish(
        cls,
        setup: SystemSetup,
        members: Sequence[Identity],
        *,
        device: Optional[DeviceProfile] = None,
        seed: object = 0,
        medium: Optional[BroadcastMedium] = None,
    ) -> "GroupSession":
        """Run the initial GKA among ``members`` and wrap the result in a session."""
        result = ProposedGKAProtocol(setup).run(members, seed=seed, medium=medium)
        session = cls(setup, result.state, device=device)
        session.history.append(result)
        return session

    # -------------------------------------------------------------- inspection
    @property
    def members(self) -> List[Identity]:
        """Current members in ring order."""
        return self.state.members

    @property
    def group_key(self) -> Optional[int]:
        """The current group key (a group element), if agreed."""
        return self.state.agreed_key()

    def all_agree(self) -> bool:
        """Whether every member currently holds the same key."""
        return self.state.all_agree()

    def symmetric_key(self, length: int = 16) -> bytes:
        """A symmetric key derived from the group key (for payload encryption)."""
        key = self.group_key
        if key is None:
            raise ProtocolError("the group has not agreed on a key")
        return derive_key_from_group_element(key, length=length)

    def envelope(self) -> SymmetricEnvelope:
        """An authenticated-encryption envelope keyed with the current group key."""
        key = self.group_key
        if key is None:
            raise ProtocolError("the group has not agreed on a key")
        return SymmetricEnvelope(key)

    # ---------------------------------------------------------------- events
    def _next_seed(self, label: str) -> str:
        self._event_counter += 1
        return f"{label}/{self._event_counter}"

    def join(self, joining: Identity, *, seed: object = None) -> ProtocolResult:
        """Admit a new member (the paper's Join protocol)."""
        result = JoinProtocol(self.setup).run(
            self.state, joining, seed=seed if seed is not None else self._next_seed("join")
        )
        self.state = result.state
        self.history.append(result)
        return result

    def leave(self, leaving: Identity, *, seed: object = None) -> ProtocolResult:
        """Remove one member (the paper's Leave protocol)."""
        result = LeaveProtocol(self.setup).run(
            self.state, leaving, seed=seed if seed is not None else self._next_seed("leave")
        )
        self.state = result.state
        self.history.append(result)
        return result

    def partition(self, leaving: Sequence[Identity], *, seed: object = None) -> ProtocolResult:
        """Remove a set of members at once (the paper's Partition protocol)."""
        result = PartitionProtocol(self.setup).run(
            self.state, leaving, seed=seed if seed is not None else self._next_seed("partition")
        )
        self.state = result.state
        self.history.append(result)
        return result

    def merge(self, other: "GroupSession", *, seed: object = None) -> ProtocolResult:
        """Merge another session's group into this one (the paper's Merge protocol)."""
        result = MergeProtocol(self.setup).run(
            self.state, other.state, seed=seed if seed is not None else self._next_seed("merge")
        )
        self.state = result.state
        self.history.append(result)
        return result

    def apply_event(self, event: MembershipEvent, *, seed: object = None) -> ProtocolResult:
        """Apply a :mod:`repro.network.events` membership event to the session."""
        if isinstance(event, JoinEvent):
            return self.join(event.joining, seed=seed)
        if isinstance(event, LeaveEvent):
            return self.leave(event.leaving, seed=seed)
        if isinstance(event, PartitionEvent):
            return self.partition(list(event.leaving), seed=seed)
        if isinstance(event, MergeEvent):
            other_members = list(event.other_group)
            other = GroupSession.establish(
                self.setup, other_members, device=self.device, seed=self._next_seed("merge-other")
            )
            return self.merge(other, seed=seed)
        raise ProtocolError(f"unknown membership event {event!r}")

    # ---------------------------------------------------------------- energy
    def energy_report(self, device: Optional[DeviceProfile] = None) -> Dict[str, EnergyBreakdown]:
        """Cumulative per-member energy since the recorders were last reset."""
        profile = device or self.device
        return {name: profile.price(rec) for name, rec in self.state.recorders().items()}

    def total_energy_j(self, device: Optional[DeviceProfile] = None) -> float:
        """Total Joules consumed by the whole group so far."""
        return sum(b.total_j for b in self.energy_report(device).values())

    def reset_energy(self) -> None:
        """Clear every member's cost recorder (start a new measurement window)."""
        self.state.reset_costs()
