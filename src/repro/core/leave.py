"""The authenticated Leave protocol (Section 7 of the paper).

When a single member ``U_l`` leaves, the remaining odd-indexed users refresh
their exponents and GQ commitments (Round 1) and every remaining user
broadcasts a fresh ``X'_i`` plus a batch-verifiable GQ response (Round 2);
the new key is the Burmester–Desmedt key over the ring with ``U_l`` removed
(equation 11).  The heavy lifting is shared with the Partition protocol and
lives in :mod:`repro.core.rekey`.
"""

from __future__ import annotations

from typing import Optional

from ..engine.executor import EngineConfig
from ..network.medium import BroadcastMedium
from ..pki.identity import Identity
from .base import GroupState, ProtocolResult, SystemSetup
from .rekey import run_departure_rekey

__all__ = ["LeaveProtocol"]


class LeaveProtocol:
    """Remove one member and establish a key it cannot compute."""

    name = "proposed-leave"

    def __init__(self, setup: SystemSetup) -> None:
        self.setup = setup

    def run(
        self,
        state: GroupState,
        leaving: Identity,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        """Run the Leave protocol for ``leaving`` and return the new group state."""
        return run_departure_rekey(
            self.setup,
            state,
            [leaving],
            protocol_name=self.name,
            round_prefix="leave",
            medium=medium,
            seed=seed,
            engine=engine,
        )
