"""The authenticated Join protocol (Section 7 of the paper).

A new user ``U_{n+1}`` joins an established group ``G = {U_1, ..., U_n}`` with
current key ``K``.  Instead of re-running the full GKA, only three nodes do
public-key work:

* **Round 1** — ``U_{n+1}`` broadcasts its keying material ``z_{n+1}`` under a
  full GQ signature.
* **Round 2** — the controller ``U_1`` refreshes its exponent and computes the
  partial key ``K* = K · (z_2 z_n)^{-r_1} (z_2 z_{n+1})^{r'_1}`` (equation 5),
  distributing it to the old group under ``E_K``; the last user ``U_n``
  computes the DH key ``K_{U_n U_{n+1}}`` it shares with the newcomer and
  distributes it to the old group under ``E_K``, signing its message.
* **Round 3** — ``U_n`` re-encrypts ``K*`` for the newcomer under the DH key.
* **Key computation** — everyone (including the newcomer) forms
  ``K' = K* · K_{U_n U_{n+1}}`` (equation 6).

Each participant runs as a :class:`~repro.engine.machine.PartyMachine` with a
role-specific reaction: the newcomer opens with Round 1, ``U_1`` and ``U_n``
react to it with their Round-2 broadcasts (``U_1``'s flushes first, in ring
order), ``U_n`` reacts to ``U_1``'s partial key with the Round-3 unicast, and
every bystander merely collects the two ``E_K`` envelopes.  Every other
member only performs symmetric decryptions and receptions — the source of the
three-orders-of-magnitude energy gap over re-running BD that Table 5 reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..engine.executor import EngineConfig, EngineStats, drive_plan
from ..engine.machine import MachinePlan, Outbound, PartyMachine
from ..exceptions import MembershipError, ParameterError, SignatureError
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import encode_fields, int_to_bytes
from ..network.medium import BroadcastMedium
from ..network.message import Message, envelope_part, group_element_part, identity_part, signature_part
from ..network.node import Node
from ..pki.identity import Identity
from ..signatures.gq import GQSignatureScheme, gq_commitment
from ..symmetric.authenc import SymmetricEnvelope
from .base import GroupState, PartyState, ProtocolResult, SystemSetup

__all__ = ["JoinProtocol"]


class _JoinRun:
    """Shared references for one Join execution (ring roles and identities)."""

    def __init__(
        self,
        setup: SystemSetup,
        scheme: GQSignatureScheme,
        state: GroupState,
        joining: Identity,
        new_party: PartyState,
    ) -> None:
        self.setup = setup
        self.scheme = scheme
        self.state = state
        self.joining = joining
        self.new_party = new_party
        self.controller = state.ring.controller()
        self.last = state.ring.last()
        self.u2 = state.ring.right_neighbour(self.controller)


class _NewcomerMachine(PartyMachine):
    """``U_{n+1}``: broadcast signed keying material, then receive ``K*``."""

    def __init__(self, run: _JoinRun) -> None:
        super().__init__(run.joining, run.new_party.node)
        self.run = run
        self._dh_key: Optional[int] = None
        self._held: List[Message] = []

    def start(self, now: float) -> List[Outbound]:
        group = self.run.setup.group
        params = self.run.setup.gq_params
        party = self.run.new_party
        party.r = group.random_exponent(party.rng)
        party.z = group.exp_g(party.r)
        party.recorder.record_operation("modexp")  # z_{n+1}
        # The newcomer also publishes a GQ commitment t_{n+1} so that it can
        # take part in later Leave/Partition re-keying exactly like a member
        # that ran the initial GKA.  This is a small completion of the paper's
        # Join round 1 (documented in DESIGN.md); its cost is folded into the
        # GQ signature generation recorded below.
        party.tau, party.t = gq_commitment(params, party.rng)
        body = encode_fields(
            [self.identity.to_bytes(), int_to_bytes(party.z), int_to_bytes(party.t)]
        )
        signature = self.run.scheme.sign(party.private_key, body, party.rng)
        party.recorder.record_signature("gq", "gen")
        self.waiting_for = "join-round2-un"
        return [
            Outbound(
                Message.broadcast(
                    self.identity,
                    "join-round1",
                    [
                        identity_part(self.identity),
                        group_element_part("z", party.z, group.element_bits),
                        group_element_part("t", party.t, params.modulus_bits),
                        signature_part(signature),
                    ],
                )
            )
        ]

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        group = self.run.setup.group
        party = self.run.new_party
        if message.round_label == "join-round2-un":
            # Verify U_n's signature over (E_K(DH), z_n), then derive the DH
            # key it shares with U_n from the broadcast z_n.
            sealed_dh = message.value("E_K(DH)")
            zn = int(message.value("z_n"))
            body = encode_fields([sealed_dh.to_bytes(), int_to_bytes(zn)])
            if not self.run.scheme.verify(
                self.run.last.to_bytes(), body, message.value("signature")
            ):
                raise SignatureError("the joining user rejected U_n's signature")
            party.recorder.record_signature("gq", "ver")
            self._dh_key = group.power(zn, party.r)
            party.recorder.record_operation("modexp")
            self.waiting_for = "join-round3-un"
            held, self._held = self._held, []
            outs: List[Outbound] = []
            for pending in held:
                outs.extend(self.on_message(pending, now))
            return outs
        if message.round_label == "join-round3-un":
            if self._dh_key is None:
                # Multi-hop latency can deliver the unicast before U_n's
                # broadcast; hold it until the DH key exists.
                self._held.append(message)
                return []
            envelope = SymmetricEnvelope(self._dh_key)
            k_star = envelope.open_group_element(
                message.value("E_DH(K*)"), self.run.last.to_bytes()
            )
            party.recorder.record_operation("symmetric")
            party.group_key = (k_star * self._dh_key) % group.p
            self.finished = True
            self.waiting_for = None
        return []


class _ControllerMachine(PartyMachine):
    """``U_1``: refresh ``r_1``, distribute ``K*`` under ``E_K``."""

    def __init__(self, run: _JoinRun, party: PartyState) -> None:
        super().__init__(party.identity, party.node)
        self.run = run
        self.party = party
        self._k_star: Optional[int] = None
        self._new_r1: Optional[int] = None
        self._group_envelope: Optional[SymmetricEnvelope] = None
        self._held: List[Message] = []

    def start(self, now: float) -> List[Outbound]:
        self.waiting_for = "join-round1"
        return []

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        group = self.run.setup.group
        party = self.party
        if message.round_label == "join-round2-un" and self._group_envelope is None:
            self._held.append(message)  # overtook the newcomer's round 1
            return []
        if message.round_label == "join-round1":
            body = encode_fields(
                [
                    self.run.joining.to_bytes(),
                    int_to_bytes(int(message.value("z"))),
                    int_to_bytes(int(message.value("t"))),
                ]
            )
            if not self.run.scheme.verify(
                self.run.joining.to_bytes(), body, message.value("signature")
            ):
                raise SignatureError("U_1 rejected the joining user's signature")
            party.recorder.record_signature("gq", "ver")
            z2 = self.run.state.party(self.run.u2).z
            zn = self.run.state.party(self.run.last).z
            z_new = int(message.value("z"))
            current_key = party.group_key
            assert z2 is not None and zn is not None and party.r is not None
            assert current_key is not None
            self._new_r1 = group.random_exponent(party.rng)
            self._k_star = (
                current_key
                * group.power((z2 * zn) % group.p, -party.r)
                * group.power((z2 * z_new) % group.p, self._new_r1)
            ) % group.p
            party.recorder.record_operation("modexp", 2)
            self._group_envelope = SymmetricEnvelope(current_key)
            sealed = self._group_envelope.seal_group_element(
                self._k_star, self.identity.to_bytes(), party.rng
            )
            party.recorder.record_operation("symmetric")
            self.waiting_for = "join-round2-un"
            outs = [
                Outbound(
                    Message.broadcast(
                        self.identity,
                        "join-round2-u1",
                        [identity_part(self.identity), envelope_part(sealed, "E_K(K*)")],
                    )
                )
            ]
            held, self._held = self._held, []
            for pending in held:
                outs.extend(self.on_message(pending, now))
            return outs
        if message.round_label == "join-round2-un":
            assert self._group_envelope is not None and self._k_star is not None
            dh_key = self._group_envelope.open_group_element(
                message.value("E_K(DH)"), self.run.last.to_bytes()
            )
            party.recorder.record_operation("symmetric")
            party.group_key = (self._k_star * dh_key) % group.p
            party.r = self._new_r1
            party.z = None  # g^{r'_1} is never broadcast in the Join protocol
            self.finished = True
            self.waiting_for = None
        return []


class _LastMemberMachine(PartyMachine):
    """``U_n``: bridge the newcomer in via the DH key it shares with it."""

    def __init__(self, run: _JoinRun, party: PartyState) -> None:
        super().__init__(party.identity, party.node)
        self.run = run
        self.party = party
        self._dh_key: Optional[int] = None
        self._group_envelope: Optional[SymmetricEnvelope] = None
        self._held: List[Message] = []

    def start(self, now: float) -> List[Outbound]:
        self.waiting_for = "join-round1"
        return []

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        group = self.run.setup.group
        party = self.party
        if message.round_label == "join-round2-u1" and self._group_envelope is None:
            self._held.append(message)  # overtook the newcomer's round 1
            return []
        if message.round_label == "join-round1":
            body = encode_fields(
                [
                    self.run.joining.to_bytes(),
                    int_to_bytes(int(message.value("z"))),
                    int_to_bytes(int(message.value("t"))),
                ]
            )
            if not self.run.scheme.verify(
                self.run.joining.to_bytes(), body, message.value("signature")
            ):
                raise SignatureError("U_n rejected the joining user's signature")
            party.recorder.record_signature("gq", "ver")
            z_new = int(message.value("z"))
            assert party.r is not None and party.z is not None
            current_key = party.group_key
            assert current_key is not None
            self._dh_key = group.power(z_new, party.r)
            party.recorder.record_operation("modexp")
            self._group_envelope = SymmetricEnvelope(current_key)
            sealed_dh = self._group_envelope.seal_group_element(
                self._dh_key, self.identity.to_bytes(), party.rng
            )
            party.recorder.record_operation("symmetric")
            body = encode_fields([sealed_dh.to_bytes(), int_to_bytes(party.z)])
            signature = self.run.scheme.sign(party.private_key, body, party.rng)
            party.recorder.record_signature("gq", "gen")
            self.waiting_for = "join-round2-u1"
            outs = [
                Outbound(
                    Message.broadcast(
                        self.identity,
                        "join-round2-un",
                        [
                            identity_part(self.identity),
                            envelope_part(sealed_dh, "E_K(DH)"),
                            group_element_part("z_n", party.z, group.element_bits),
                            signature_part(signature),
                        ],
                    )
                )
            ]
            held, self._held = self._held, []
            for pending in held:
                outs.extend(self.on_message(pending, now))
            return outs
        if message.round_label == "join-round2-u1":
            assert self._group_envelope is not None and self._dh_key is not None
            k_star = self._group_envelope.open_group_element(
                message.value("E_K(K*)"), self.run.controller.to_bytes()
            )
            party.recorder.record_operation("symmetric")
            dh_envelope = SymmetricEnvelope(self._dh_key)
            sealed_for_newcomer = dh_envelope.seal_group_element(
                k_star, self.identity.to_bytes(), party.rng
            )
            party.recorder.record_operation("symmetric")
            party.group_key = (k_star * self._dh_key) % group.p
            self.finished = True
            self.waiting_for = None
            return [
                Outbound(
                    Message.unicast(
                        self.identity,
                        self.run.joining,
                        "join-round3-un",
                        [
                            identity_part(self.identity),
                            envelope_part(sealed_for_newcomer, "E_DH(K*)"),
                        ],
                    )
                )
            ]
        return []


class _BystanderMachine(PartyMachine):
    """Any other member: two symmetric decryptions, no exponentiations."""

    def __init__(self, run: _JoinRun, party: PartyState) -> None:
        super().__init__(party.identity, party.node)
        self.run = run
        self.party = party
        self._sealed: Dict[str, object] = {}

    def start(self, now: float) -> List[Outbound]:
        self.waiting_for = "join-round2-u1"
        return []

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        if message.round_label in ("join-round2-u1", "join-round2-un"):
            part_name = "E_K(K*)" if message.round_label == "join-round2-u1" else "E_K(DH)"
            self._sealed[message.round_label] = message.value(part_name)
            self.waiting_for = (
                "join-round2-un" if message.round_label == "join-round2-u1" else "join-round2-u1"
            )
        if len(self._sealed) == 2:
            group = self.run.setup.group
            party = self.party
            current_key = party.group_key
            assert current_key is not None
            envelope = SymmetricEnvelope(current_key)
            k_star = envelope.open_group_element(
                self._sealed["join-round2-u1"], self.run.controller.to_bytes()
            )
            dh_key = envelope.open_group_element(
                self._sealed["join-round2-un"], self.run.last.to_bytes()
            )
            party.recorder.record_operation("symmetric", 2)
            party.group_key = (k_star * dh_key) % group.p
            self.finished = True
            self.waiting_for = None
        return []


class JoinProtocol:
    """Admit one new member into an established group."""

    name = "proposed-join"

    def __init__(self, setup: SystemSetup) -> None:
        self.setup = setup
        self._scheme = GQSignatureScheme(setup.gq_params)

    # -------------------------------------------------------------- machines
    def build_machines(
        self,
        state: GroupState,
        joining: Identity,
        *,
        medium: BroadcastMedium,
        seed: object = 0,
    ) -> MachinePlan:
        """Decompose the Join protocol into per-member machines."""
        if not state.all_agree():
            raise ParameterError("the current group has not agreed on a key; run the GKA first")
        if joining in state.ring:
            raise MembershipError(f"{joining.name!r} is already a group member")
        rng = DeterministicRNG(seed, label="join")
        for member in state.ring.members:
            medium.attach(state.party(member).node)

        # The joining party: enrolled with the PKG, given a node on the medium.
        new_key_pair = self.setup.enroll(joining)
        new_node = Node(joining)
        medium.attach(new_node)
        new_party = PartyState(
            identity=joining,
            private_key=new_key_pair,
            rng=rng.fork(f"party/{joining.name}"),
            node=new_node,
        )

        run = _JoinRun(self.setup, self._scheme, state, joining, new_party)
        machines: List[PartyMachine] = []
        for member in state.ring.members:
            party = state.party(member)
            if member.name == run.controller.name:
                machines.append(_ControllerMachine(run, party))
            elif member.name == run.last.name:
                machines.append(_LastMemberMachine(run, party))
            else:
                machines.append(_BystanderMachine(run, party))
        machines.append(_NewcomerMachine(run))

        def finish(stats: EngineStats) -> ProtocolResult:
            new_ring = state.ring.with_join(joining)
            parties: Dict[str, PartyState] = dict(state.parties)
            parties[joining.name] = new_party
            new_state = GroupState(
                setup=self.setup,
                ring=new_ring,
                parties=parties,
                group_key=parties[new_ring.controller().name].group_key,
            )
            return ProtocolResult(
                protocol=self.name,
                state=new_state,
                medium=medium,
                rounds=3,
                sim_latency_s=stats.sim_time_s,
                timeouts=stats.timeouts,
            )

        return MachinePlan(machines=machines, finish=finish, rounds=3)

    # ------------------------------------------------------------------- run
    def run(
        self,
        state: GroupState,
        joining: Identity,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        """Run the Join protocol, returning the new group state.

        ``state`` must be an agreed group (every member holds the same key);
        the returned :class:`ProtocolResult` contains the enlarged group with
        the new key ``K'``.
        """
        medium = medium if medium is not None else BroadcastMedium()
        plan = self.build_machines(state, joining, medium=medium, seed=seed)
        return drive_plan(plan, medium, engine=engine)
