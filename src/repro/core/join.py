"""The authenticated Join protocol (Section 7 of the paper).

A new user ``U_{n+1}`` joins an established group ``G = {U_1, ..., U_n}`` with
current key ``K``.  Instead of re-running the full GKA, only three nodes do
public-key work:

* **Round 1** — ``U_{n+1}`` broadcasts its keying material ``z_{n+1}`` under a
  full GQ signature.
* **Round 2** — the controller ``U_1`` refreshes its exponent and computes the
  partial key ``K* = K · (z_2 z_n)^{-r_1} (z_2 z_{n+1})^{r'_1}`` (equation 5),
  distributing it to the old group under ``E_K``; the last user ``U_n``
  computes the DH key ``K_{U_n U_{n+1}}`` it shares with the newcomer and
  distributes it to the old group under ``E_K``, signing its message.
* **Round 3** — ``U_n`` re-encrypts ``K*`` for the newcomer under the DH key.
* **Key computation** — everyone (including the newcomer) forms
  ``K' = K* · K_{U_n U_{n+1}}`` (equation 6).

Every other member only performs symmetric decryptions and receptions — the
source of the three-orders-of-magnitude energy gap over re-running BD that
Table 5 reports.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..exceptions import MembershipError, ParameterError, SignatureError
from ..mathutils.rand import DeterministicRNG
from ..mathutils.serialization import encode_fields, int_to_bytes
from ..network.medium import BroadcastMedium
from ..network.message import Message, envelope_part, group_element_part, identity_part, signature_part
from ..network.node import Node
from ..pki.identity import Identity
from ..signatures.gq import GQSignatureScheme, gq_commitment
from ..symmetric.authenc import SymmetricEnvelope
from .base import GroupState, PartyState, ProtocolResult, SystemSetup

__all__ = ["JoinProtocol"]


class JoinProtocol:
    """Admit one new member into an established group."""

    name = "proposed-join"

    def __init__(self, setup: SystemSetup) -> None:
        self.setup = setup
        self._scheme = GQSignatureScheme(setup.gq_params)

    # ------------------------------------------------------------------- run
    def run(
        self,
        state: GroupState,
        joining: Identity,
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
    ) -> ProtocolResult:
        """Run the Join protocol, returning the new group state.

        ``state`` must be an agreed group (every member holds the same key);
        the returned :class:`ProtocolResult` contains the enlarged group with
        the new key ``K'``.
        """
        if not state.all_agree():
            raise ParameterError("the current group has not agreed on a key; run the GKA first")
        if joining in state.ring:
            raise MembershipError(f"{joining.name!r} is already a group member")
        group = self.setup.group
        rng = DeterministicRNG(seed, label="join")
        medium = medium if medium is not None else BroadcastMedium()
        for member in state.ring.members:
            medium.attach(state.party(member).node)

        controller = state.ring.controller()          # U_1
        last = state.ring.last()                      # U_n
        u2 = state.ring.right_neighbour(controller)   # U_2
        u1_state = state.party(controller)
        un_state = state.party(last)
        current_key = u1_state.group_key
        assert current_key is not None

        # The joining party: enrolled with the PKG, given a node on the medium.
        new_key_pair = self.setup.enroll(joining)
        new_node = Node(joining)
        medium.attach(new_node)
        new_party = PartyState(
            identity=joining,
            private_key=new_key_pair,
            rng=rng.fork(f"party/{joining.name}"),
            node=new_node,
        )

        # ----------------------------------------------------------- Round 1
        new_party.r = group.random_exponent(new_party.rng)
        new_party.z = group.exp_g(new_party.r)
        new_party.recorder.record_operation("modexp")  # z_{n+1}
        # The newcomer also publishes a GQ commitment t_{n+1} so that it can
        # take part in later Leave/Partition re-keying exactly like a member
        # that ran the initial GKA.  This is a small completion of the paper's
        # Join round 1 (documented in DESIGN.md); its cost is folded into the
        # GQ signature generation recorded below.
        new_party.tau, new_party.t = gq_commitment(self.setup.gq_params, new_party.rng)
        round1_body = encode_fields(
            [joining.to_bytes(), int_to_bytes(new_party.z), int_to_bytes(new_party.t)]
        )
        sigma_new = self._scheme.sign(new_party.private_key, round1_body, new_party.rng)
        new_party.recorder.record_signature("gq", "gen")
        medium.send(
            Message.broadcast(
                joining,
                "join-round1",
                [
                    identity_part(joining),
                    group_element_part("z", new_party.z, group.element_bits),
                    group_element_part("t", new_party.t, self.setup.gq_params.modulus_bits),
                    signature_part(sigma_new),
                ],
            )
        )

        # ----------------------------------------------------------- Round 2
        # (1) U_1: verify the newcomer, refresh r_1, compute and distribute K*.
        if not self._scheme.verify(joining.to_bytes(), round1_body, sigma_new):
            raise SignatureError("U_1 rejected the joining user's signature")
        u1_state.recorder.record_signature("gq", "ver")
        z2 = state.party(u2).z
        zn = un_state.z
        z_new = new_party.z
        assert z2 is not None and zn is not None and u1_state.r is not None
        new_r1 = group.random_exponent(u1_state.rng)
        k_star = (
            current_key
            * group.power((z2 * zn) % group.p, -u1_state.r)
            * group.power((z2 * z_new) % group.p, new_r1)
        ) % group.p
        u1_state.recorder.record_operation("modexp", 2)
        group_envelope = SymmetricEnvelope(current_key)
        sealed_kstar = group_envelope.seal_group_element(k_star, controller.to_bytes(), u1_state.rng)
        u1_state.recorder.record_operation("symmetric")
        medium.send(
            Message.broadcast(
                controller,
                "join-round2-u1",
                [identity_part(controller), envelope_part(sealed_kstar, "E_K(K*)")],
            )
        )

        # (2) U_n: verify the newcomer, derive the DH key, distribute it signed.
        if not self._scheme.verify(joining.to_bytes(), round1_body, sigma_new):
            raise SignatureError("U_n rejected the joining user's signature")
        un_state.recorder.record_signature("gq", "ver")
        assert un_state.r is not None
        dh_key = group.power(z_new, un_state.r)
        un_state.recorder.record_operation("modexp")
        sealed_dh = group_envelope.seal_group_element(dh_key, last.to_bytes(), un_state.rng)
        un_state.recorder.record_operation("symmetric")
        round2_body = encode_fields([sealed_dh.to_bytes(), int_to_bytes(zn)])
        sigma_un = self._scheme.sign(un_state.private_key, round2_body, un_state.rng)
        un_state.recorder.record_signature("gq", "gen")
        medium.send(
            Message.broadcast(
                last,
                "join-round2-un",
                [
                    identity_part(last),
                    envelope_part(sealed_dh, "E_K(DH)"),
                    group_element_part("z_n", zn, group.element_bits),
                    signature_part(sigma_un),
                ],
            )
        )

        # ----------------------------------------------------------- Round 3
        # (1) U_{n+1}: verify U_n's signature and derive the shared DH key.
        if not self._scheme.verify(last.to_bytes(), round2_body, sigma_un):
            raise SignatureError("the joining user rejected U_n's signature")
        new_party.recorder.record_signature("gq", "ver")
        dh_key_newcomer = group.power(zn, new_party.r)
        new_party.recorder.record_operation("modexp")

        # (2) U_n: recover K* from U_1's envelope and forward it to the newcomer.
        k_star_at_un = group_envelope.open_group_element(sealed_kstar, controller.to_bytes())
        un_state.recorder.record_operation("symmetric")
        dh_envelope = SymmetricEnvelope(dh_key)
        sealed_kstar_for_new = dh_envelope.seal_group_element(k_star_at_un, last.to_bytes(), un_state.rng)
        un_state.recorder.record_operation("symmetric")
        medium.send(
            Message.unicast(
                last,
                joining,
                "join-round3-un",
                [identity_part(last), envelope_part(sealed_kstar_for_new, "E_DH(K*)")],
            )
        )

        # ------------------------------------------------------ key derivation
        new_key = (k_star * dh_key) % group.p

        # The newcomer: open U_n's envelope under the DH key it derived itself.
        newcomer_envelope = SymmetricEnvelope(dh_key_newcomer)
        k_star_at_new = newcomer_envelope.open_group_element(sealed_kstar_for_new, last.to_bytes())
        new_party.recorder.record_operation("symmetric")
        new_party.group_key = (k_star_at_new * dh_key_newcomer) % group.p

        # U_1: recover the DH key from U_n's envelope.
        dh_at_u1 = group_envelope.open_group_element(sealed_dh, last.to_bytes())
        u1_state.recorder.record_operation("symmetric")
        u1_state.group_key = (k_star * dh_at_u1) % group.p
        u1_state.r = new_r1
        u1_state.z = None  # g^{r'_1} is never broadcast in the Join protocol

        # U_n already holds both pieces.
        un_state.group_key = (k_star_at_un * dh_key) % group.p

        # Everyone else: two symmetric decryptions, no exponentiations.
        for member in state.ring.members:
            if member.name in (controller.name, last.name):
                continue
            bystander = state.party(member)
            k_star_here = group_envelope.open_group_element(sealed_kstar, controller.to_bytes())
            dh_here = group_envelope.open_group_element(sealed_dh, last.to_bytes())
            bystander.recorder.record_operation("symmetric", 2)
            bystander.group_key = (k_star_here * dh_here) % group.p

        new_ring = state.ring.with_join(joining)
        parties: Dict[str, PartyState] = dict(state.parties)
        parties[joining.name] = new_party
        new_state = GroupState(setup=self.setup, ring=new_ring, parties=parties, group_key=new_key)
        return ProtocolResult(protocol=self.name, state=new_state, medium=medium, rounds=3)
