"""The authenticated Partition protocol (Section 7 of the paper).

"A partition can be seen as multiple users leaving the group": the protocol is
the Leave construction run once for the whole set ``L`` of departed users —
remaining odd-indexed users refresh, everyone broadcasts fresh ``X'_i`` values
with batch-verifiable GQ responses, and the new key is the BD key over the
ring ``G' = G \\ L`` (equation 13).  Implementation shared with Leave in
:mod:`repro.core.rekey`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..engine.executor import EngineConfig
from ..network.medium import BroadcastMedium
from ..pki.identity import Identity
from .base import GroupState, ProtocolResult, SystemSetup
from .rekey import run_departure_rekey

__all__ = ["PartitionProtocol"]


class PartitionProtocol:
    """Remove a set of members at once (network partition)."""

    name = "proposed-partition"

    def __init__(self, setup: SystemSetup) -> None:
        self.setup = setup

    def run(
        self,
        state: GroupState,
        leaving: Sequence[Identity],
        *,
        medium: Optional[BroadcastMedium] = None,
        seed: object = 0,
        engine: Optional[EngineConfig] = None,
    ) -> ProtocolResult:
        """Run the Partition protocol for the departing set and return the new state."""
        return run_departure_rekey(
            self.setup,
            state,
            list(leaving),
            protocol_name=self.name,
            round_prefix="partition",
            medium=medium,
            seed=seed,
            engine=engine,
        )
