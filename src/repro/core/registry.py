"""Name-based protocol registry.

Runners, benchmarks and the :mod:`repro.sim` scenario engine select protocols
by name instead of importing concrete classes:

>>> from repro.core.registry import create_protocol, available_protocols
>>> "proposed-gka" in available_protocols()
True
>>> protocol = create_protocol("bd-ecdsa", setup)        # doctest: +SKIP

Every protocol registers a factory ``setup -> Protocol`` under its canonical
``name`` (plus optional aliases).  The built-in protocols — the proposed
ID-based GKA and all the paper's baselines — are registered lazily on first
lookup, so importing this module stays cheap and free of import cycles.

Third-party protocols (e.g. custom :class:`~repro.engine.machine.PartyMachine`
suites) can register with the decorator form:

>>> @register_protocol("my-gka", aliases=("mine",))      # doctest: +SKIP
... class MyProtocol(Protocol):
...     name = "my-gka"

Unknown names fail with a "did you mean" suggestion next to the full list.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..exceptions import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import Protocol, SystemSetup

__all__ = [
    "register_protocol",
    "create_protocol",
    "available_protocols",
    "resolve_protocol",
    "protocol_tags",
    "registry_entries",
    "describe_registry",
]

#: canonical name -> factory(setup) -> Protocol
_FACTORIES: Dict[str, Callable[["SystemSetup"], "Protocol"]] = {}
#: alias -> canonical name
_ALIASES: Dict[str, str] = {}
#: canonical name -> frozenset of classification tags (e.g. {"cluster"})
_TAGS: Dict[str, frozenset] = {}
_BUILTINS_LOADED = False


def register_protocol(
    name: str,
    factory: Optional[Callable[["SystemSetup"], "Protocol"]] = None,
    *,
    aliases: Sequence[str] = (),
    tags: Sequence[str] = (),
    replace: bool = False,
):
    """Register a protocol factory under ``name`` (plus ``aliases``).

    ``factory`` is any callable taking a :class:`~repro.core.base.SystemSetup`
    and returning a :class:`~repro.core.base.Protocol`; protocol classes whose
    constructor takes only the setup can be registered directly.

    ``tags`` classify the protocol for callers that select subsets of the
    registry — e.g. the hierarchical protocols carry ``"cluster"`` so the
    flat-protocol golden-fixture harness can exclude them without naming them.

    Called without a ``factory``, returns a decorator — the idiomatic form
    for third-party protocol classes::

        @register_protocol("my-gka", aliases=("mine",))
        class MyProtocol(Protocol):
            ...
    """
    if factory is None:
        def decorator(cls: Callable[["SystemSetup"], "Protocol"]):
            register_protocol(name, cls, aliases=aliases, tags=tags, replace=replace)
            return cls

        return decorator
    if not name:
        raise ParameterError("protocol name cannot be empty")
    if not replace and (name in _FACTORIES or name in _ALIASES):
        raise ParameterError(f"protocol {name!r} is already registered")
    _FACTORIES[name] = factory
    _TAGS[name] = frozenset(tags)
    for alias in aliases:
        if not replace and (alias in _FACTORIES or alias in _ALIASES):
            raise ParameterError(f"protocol alias {alias!r} is already registered")
        _ALIASES[alias] = name
    return factory


def _load_builtins() -> None:
    """Import the modules that register the built-in protocols (idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # The imports run each module's registration side effects.  The flag is
    # only set on success so that a transient import failure surfaces again
    # on the next lookup instead of masquerading as "unknown protocol".
    from . import gka  # noqa: F401
    from .. import baselines  # noqa: F401
    from .. import cluster  # noqa: F401

    _BUILTINS_LOADED = True


def resolve_protocol(name: str) -> str:
    """Canonicalise a protocol name or alias, raising on unknown names.

    The error for an unknown name carries a closest-match suggestion
    (``did you mean 'bd-ecdsa'?``) ahead of the full list, so typos in
    benchmark configurations fail with an actionable message.
    """
    _load_builtins()
    canonical = _ALIASES.get(name, name)
    if canonical not in _FACTORIES:
        candidates = available_protocols(include_aliases=True)
        close = difflib.get_close_matches(name, candidates, n=1, cutoff=0.5)
        hint = f" — did you mean {close[0]!r}?" if close else ""
        raise ParameterError(
            f"unknown protocol {name!r}{hint}; available: {', '.join(available_protocols())}"
        )
    return canonical


def create_protocol(name: str, setup: "SystemSetup") -> "Protocol":
    """Instantiate the protocol registered under ``name`` (or an alias)."""
    return _FACTORIES[resolve_protocol(name)](setup)


def available_protocols(*, include_aliases: bool = False) -> List[str]:
    """Sorted canonical protocol names (optionally with aliases)."""
    _load_builtins()
    names = set(_FACTORIES)
    if include_aliases:
        names |= set(_ALIASES)
    return sorted(names)


def protocol_tags(name: str) -> frozenset:
    """The classification tags of a registered protocol (empty when untagged)."""
    return _TAGS.get(resolve_protocol(name), frozenset())


def describe_registry() -> str:
    """Human-readable registry listing (the CLIs' ``--list-protocols``)."""
    rows = registry_entries()
    width = max(len(name) for name, _, _ in rows)
    lines = [f"{len(rows)} registered protocols:"]
    for name, aliases, tags in rows:
        line = f"  {name:<{width}}"
        if aliases:
            line += f"  aliases: {', '.join(aliases)}"
        if tags:
            line += f"  [{', '.join(sorted(tags))}]"
        lines.append(line)
    return "\n".join(lines)


def registry_entries() -> List[tuple]:
    """``(name, aliases, tags)`` per canonical protocol, sorted by name.

    The listing behind the CLIs' ``--list-protocols``: one row per canonical
    name with its aliases and tags, so users discover e.g. that
    ``cluster-bd`` resolves to ``cluster-tree[bd]``.
    """
    _load_builtins()
    rows = []
    for name in sorted(_FACTORIES):
        aliases = tuple(sorted(a for a, canon in _ALIASES.items() if canon == name))
        rows.append((name, aliases, _TAGS.get(name, frozenset())))
    return rows
