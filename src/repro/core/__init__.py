"""The paper's contribution: the proposed ID-based authenticated GKA protocol,
its four dynamic protocols (Join, Leave, Merge, Partition) and the high-level
``GroupSession`` API."""

from .base import (
    GroupState,
    PartyState,
    Protocol,
    ProtocolResult,
    SystemSetup,
    compute_bd_key,
    compute_bd_x_value,
    verify_x_product,
)
from .gka import ProposedGKAProtocol
from .join import JoinProtocol
from .leave import LeaveProtocol
from .merge import MergeProtocol
from .partition import PartitionProtocol
from .registry import available_protocols, create_protocol, register_protocol
from .session import GroupSession

__all__ = [
    "GroupState",
    "PartyState",
    "Protocol",
    "ProtocolResult",
    "SystemSetup",
    "compute_bd_key",
    "compute_bd_x_value",
    "verify_x_product",
    "ProposedGKAProtocol",
    "JoinProtocol",
    "LeaveProtocol",
    "MergeProtocol",
    "PartitionProtocol",
    "GroupSession",
    "available_protocols",
    "create_protocol",
    "register_protocol",
]
