"""``repro.engine`` — the discrete-event protocol execution kernel.

The protocols in this library are *round-structured broadcast protocols*; the
engine executes them as interacting per-party state machines on a
virtual-time event kernel instead of as monolithic, instantaneous function
bodies:

* :mod:`repro.engine.kernel` — :class:`~repro.engine.kernel.EventKernel`, a
  deterministic priority-queue scheduler with batch-per-instant (BSP-style)
  micro-round semantics;
* :mod:`repro.engine.machine` — the :class:`~repro.engine.machine.PartyMachine`
  lifecycle (``start`` / ``on_message`` / ``on_wake`` / ``on_timeout``) every
  protocol implements per member, plus the
  :class:`~repro.engine.machine.MachinePlan` a protocol hands to the driver;
* :mod:`repro.engine.latency` — per-link latency models deriving delivery
  delay from the transceiver bitrate, hop count and mobility distance;
* :mod:`repro.engine.executor` — :func:`~repro.engine.executor.run_machines`,
  which wires machines to a :class:`~repro.network.medium.BroadcastMedium`
  and steps the kernel to quiescence.

Two execution modes share the same machines:

* **instant mode** (no :class:`EngineConfig` / no latency model): messages are
  delivered in the same virtual instant through the legacy medium path with
  its immediate retransmission semantics — this is what the synchronous
  ``Protocol.run()`` drivers use and it is bit-identical to the historical
  monolithic execution (same transcripts, keys and energy ledgers);
* **latency mode** (an :class:`EngineConfig` with a latency model): every
  delivery is scheduled at ``now + delay`` on the kernel's queue, each send is
  a *single* physical attempt, and losses surface as round timeouts followed
  by retransmission waves in virtual time — completion latency becomes an
  observable (``sim_latency_s``) alongside energy.
"""

from .executor import EngineConfig, EngineStats, MachineExecutor, run_machines
from .kernel import EventKernel
from .latency import FixedLatency, LatencyModel, TieredLatency, TransceiverLatency
from .machine import MachinePlan, Outbound, PartyMachine

__all__ = [
    "EngineConfig",
    "EngineStats",
    "EventKernel",
    "FixedLatency",
    "LatencyModel",
    "MachineExecutor",
    "MachinePlan",
    "Outbound",
    "PartyMachine",
    "TieredLatency",
    "TransceiverLatency",
    "run_machines",
]
