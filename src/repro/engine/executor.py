"""Drive a set of :class:`~repro.engine.machine.PartyMachine` to quiescence.

:class:`MachineExecutor` owns the wiring between machines, the shared medium
and the :class:`~repro.engine.kernel.EventKernel`:

* machine hooks are kernel actions (``rank=RANK_HOOK``) ordered by the
  machine's ring index, so same-instant emissions leave the medium in ring
  order — exactly the order the synchronous protocol bodies used to send in;
* every emitted message goes through the medium (charging senders, receivers
  and relays through the existing energy accounting) and each delivered copy
  becomes a scheduled ``on_message`` kernel event;
* in **instant mode** (no latency model) delivery is same-instant and the
  medium's legacy :meth:`~repro.network.medium.BroadcastMedium.send` — with
  its immediate-retry loss semantics — is used unchanged, which keeps
  kernel-driven execution bit-identical to the historical synchronous path;
* in **latency mode** each send is a single physical attempt
  (:meth:`~repro.network.medium.BroadcastMedium.transmit`), deliveries are
  scheduled at per-receiver delays derived from the latency model (bitrate,
  hop count, mobility distance), and a group that stalls on a round gets a
  *timeout wave*: virtual time jumps by ``round_timeout_s`` and every party
  re-broadcasts its contribution to the stalled rounds — the paper's "all
  members retransmit" recovery, now visible as latency instead of hidden
  inside the medium;
* with an :class:`~repro.adversary.actors.AdversarySuite` on the
  :class:`EngineConfig` the executor puts every transmission in front of the
  attackers: the physical send (and its energy charges) always happens, but
  what receivers *decode* may be dropped, substituted or delayed, and
  attacker forgeries are scheduled as deliveries that sort ahead of the
  same-instant honest copies (the attacker wins the first-copy race).  A
  suite whose actors are all passive leaves the run bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

from .. import telemetry
from ..exceptions import ParameterError, ProtocolError
from ..backends.registry import resolve_backend, use_backend
from ..network.medium import BroadcastMedium
from ..network.message import Message
from .kernel import EventKernel
from .latency import LatencyModel
from .machine import MachinePlan, Outbound, PartyMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..adversary.actors import AdversarySuite

__all__ = ["EngineConfig", "EngineStats", "MachineExecutor", "drive_plan", "run_machines"]


@dataclass(frozen=True)
class EngineConfig:
    """Execution profile for kernel-driven protocol runs.

    ``latency=None`` selects instant mode (the synchronous-equivalent
    degenerate case); a :class:`~repro.engine.latency.LatencyModel` switches
    to virtual-time delivery with single-attempt sends and timeout-driven
    retransmission waves.
    """

    latency: Optional[LatencyModel] = None
    #: how long a stalled group waits before a retransmission wave (seconds)
    round_timeout_s: float = 2.0
    #: retransmission waves before the run is declared failed
    max_timeout_waves: int = 25
    #: queue same-instant transmissions behind each other on the shared channel
    serialize_channel: bool = True
    #: attacker suite consulted on every transmission (None = honest runs;
    #: a suite whose actors are all passive leaves runs bit-identical)
    adversary: Optional["AdversarySuite"] = None
    #: crypto backend name for the run (None = process default; every backend
    #: is bit-identical, this only changes host-side arithmetic speed)
    crypto_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.round_timeout_s <= 0:
            raise ParameterError("round_timeout_s must be positive")
        if self.max_timeout_waves < 1:
            raise ParameterError("max_timeout_waves must be at least 1")
        if self.crypto_backend is not None:
            # Fail at configuration time, not mid-run.
            resolve_backend(self.crypto_backend)

    def describe(self) -> str:
        """One-line summary used in reports."""
        if self.latency is None:
            summary = "instant"
        else:
            summary = f"{self.latency.describe()}, timeout={self.round_timeout_s:g}s"
        if self.adversary is not None:
            summary += f", adversary[{self.adversary.describe()}]"
        if self.crypto_backend is not None:
            summary += f", backend={self.crypto_backend}"
        return summary


@dataclass
class EngineStats:
    """What one kernel-driven run did in virtual time."""

    #: virtual time at quiescence (0.0 in instant mode)
    sim_time_s: float = 0.0
    #: machine-round timeouts fired (unfinished machines summed over waves)
    timeouts: int = 0
    #: retransmission waves triggered by timeouts
    timeout_waves: int = 0
    #: messages handed to machines (duplicates filtered out)
    deliveries: int = 0
    #: messages transmitted (including timeout-wave retransmissions)
    messages_sent: int = 0
    #: kernel events processed
    events: int = 0


class MachineExecutor:
    """Wire machines to a medium and step the kernel until everyone finishes."""

    def __init__(
        self,
        machines: Sequence[PartyMachine],
        medium: BroadcastMedium,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.machines: List[PartyMachine] = list(machines)
        self.medium = medium
        # `is None`, not truthiness: a caller-supplied config must never be
        # silently swapped for the default just because it tests falsy.
        self.config = config if config is not None else EngineConfig()
        self.latency = self.config.latency
        if self.latency is not None:
            # Topology-aware models (TieredLatency) discover the medium's
            # tier map here; everyone else inherits the no-op default.
            self.latency.bind(medium)
        self.adversary = self.config.adversary
        if self.adversary is not None:
            # The eavesdropping tap rides the medium so the adversary hears
            # every physical send (idempotent across the scenario's runs).
            self.adversary.attach(medium)
        self.kernel = EventKernel()
        self.stats = EngineStats()
        # Resolved once per run: hot paths (machine hooks, transmissions)
        # check a local attribute instead of the telemetry module globals.
        self._tracer = telemetry.active_tracer()
        self._metrics = telemetry.active_metrics()
        self.kernel.tracer = self._tracer
        self.kernel.metrics = self._metrics
        self._order: Dict[int, int] = {id(m): i for i, m in enumerate(self.machines)}
        self._by_name: Dict[str, PartyMachine] = {m.identity.name: m for m in self.machines}
        #: (sender, round_label) pairs each machine has already consumed
        self._seen: Dict[str, Set[Tuple[str, str]]] = {
            m.identity.name: set() for m in self.machines
        }
        self._busy_until = 0.0

    # --------------------------------------------------------------- context
    def wake(self, machine: PartyMachine, payload: object) -> None:
        """Schedule ``machine.on_wake(payload)`` as a next-batch kernel action."""
        self.kernel.schedule(
            partial(self._hook, machine, partial(machine.on_wake, payload)),
            rank=EventKernel.RANK_HOOK,
            order=self._order[id(machine)],
        )

    # ------------------------------------------------------------------- run
    def run(self) -> EngineStats:
        """Execute to quiescence; raises whatever the machines raise.

        Runs under the config's crypto backend (a no-op when
        ``crypto_backend`` is ``None``); backends are bit-identical, so the
        selection never changes what a run produces, only how fast the
        host-side arithmetic goes.
        """
        with use_backend(self.config.crypto_backend):
            if self._tracer is None and self._metrics is None:
                return self._run()
            with telemetry.span(
                "engine.run",
                category="engine",
                track="kernel",
                sim_start=self.kernel.now,
                args={"parties": len(self.machines)},
            ) as span:
                stats = self._run()
                if span is not None:
                    span.finish_sim(stats.sim_time_s)
                    span.arg("messages_sent", stats.messages_sent)
                    span.arg("timeout_waves", stats.timeout_waves)
            metrics = self._metrics
            if metrics is not None:
                metrics.count("engine.runs")
                metrics.count("engine.messages_sent", stats.messages_sent)
                metrics.count("engine.deliveries", stats.deliveries)
                metrics.count("engine.timeouts", stats.timeouts)
                metrics.count("engine.retransmission_waves", stats.timeout_waves)
                metrics.count("engine.events", stats.events)
                metrics.observe("engine.sim_time_s", stats.sim_time_s)
            return stats

    def _run(self) -> EngineStats:
        for index, machine in enumerate(self.machines):
            machine.context = self
            self.kernel.schedule(
                partial(self._hook, machine, machine.start),
                rank=EventKernel.RANK_HOOK,
                order=index,
            )
        while True:
            self.kernel.run()
            unfinished = [m for m in self.machines if not m.finished]
            if not unfinished:
                break
            if self.latency is None:
                stalled = ", ".join(
                    f"{m.identity.name} (waiting on {m.waiting_for!r})" for m in unfinished
                )
                raise ProtocolError(
                    f"kernel went quiescent with unfinished parties: {stalled}"
                )
            self._timeout_wave(unfinished)
        self.stats.sim_time_s = self.kernel.now
        self.stats.events = self.kernel.events_processed
        return self.stats

    # --------------------------------------------------------- timeout waves
    def _timeout_wave(self, unfinished: List[PartyMachine]) -> None:
        self.stats.timeout_waves += 1
        if self.stats.timeout_waves > self.config.max_timeout_waves:
            stalled = ", ".join(
                f"{m.identity.name} (waiting on {m.waiting_for!r})" for m in unfinished
            )
            raise ProtocolError(
                f"protocol still incomplete after {self.config.max_timeout_waves} "
                f"timeout retransmission waves at t={self.kernel.now:g}s: {stalled}"
            )
        self.stats.timeouts += len(unfinished)
        if self._tracer is not None:
            self._tracer.instant(
                "engine.timeout_wave",
                category="engine",
                track="kernel",
                sim_time=self.kernel.now,
                args={"unfinished": len(unfinished)},
            )
        self.kernel.advance(self.config.round_timeout_s)
        stalled_rounds: List[str] = []
        for machine in unfinished:
            label = machine.waiting_for
            if label is not None and label not in stalled_rounds:
                stalled_rounds.append(label)
        # "All members retransmit": every party re-contributes to the stalled
        # rounds (machines without a stored transmission contribute nothing).
        for index, machine in enumerate(self.machines):
            for label in stalled_rounds:
                self.kernel.schedule(
                    partial(self._hook, machine, partial(machine.on_timeout, label)),
                    rank=EventKernel.RANK_HOOK,
                    order=index,
                )

    # ----------------------------------------------------------------- hooks
    def _hook(self, machine: PartyMachine, action: Callable[[float], List[Outbound]]) -> None:
        tracer = self._tracer
        if tracer is None:
            outbounds = action(self.kernel.now)
        else:
            label = machine.waiting_for or "start"
            started = tracer.now()
            outbounds = action(self.kernel.now)
            tracer.complete(
                f"party:{label}",
                category="party",
                track=machine.identity.name,
                wall_start=started,
                wall_dur=tracer.now() - started,
                sim_start=self.kernel.now,
                sim_dur=0.0,
            )
        if outbounds:
            self.kernel.schedule(
                partial(self._emit, machine, list(outbounds)),
                rank=EventKernel.RANK_HOOK,
                order=self._order[id(machine)],
            )

    def _emit(self, machine: PartyMachine, outbounds: List[Outbound]) -> None:
        for outbound in outbounds:
            self._transmit(machine, outbound.message)

    def _transmit(self, machine: PartyMachine, message: Message) -> None:
        machine.sent[message.round_label] = message
        now = self.kernel.now
        if self.latency is None:
            receipt = self.medium.send(message)
            channel_wait = tx_time = 0.0
        else:
            receipt = self.medium.transmit(message)
            tx_time = self.latency.tx_time_for(message.wire_bits, message.sender.name)
            tx_start = max(now, self._busy_until) if self.config.serialize_channel else now
            self._busy_until = tx_start + tx_time
            channel_wait = tx_start - now
        self.stats.messages_sent += 1
        if self._metrics is not None:
            self._metrics.count("engine.tx.messages")
            self._metrics.count("engine.tx.bits", message.wire_bits)
        # The physical send (and its energy charges) already happened; an
        # active adversary now gets to decide what the receivers *decode*:
        # nothing (jamming), a substituted payload, or the truth but late.
        decoded = message
        suppress = False
        attack_delay = 0.0
        if self.adversary is not None:
            interception = self.adversary.intercept(message, now)
            if interception is not None:
                suppress = interception.drop
                attack_delay = interception.delay_s
                if interception.replacement is not None:
                    decoded = interception.replacement
        field_ = getattr(self.medium, "field", None)
        for identity in receipt.delivered_to:
            receiver = self._by_name.get(identity.name)
            if receiver is None:
                continue
            # The medium already appended the copy to the node's inbox; the
            # machine consumes the message object directly instead, so take
            # the copy back out (it is the most recent append).
            inbox = receiver.node.inbox
            if inbox and inbox[-1] is message:
                inbox.pop()
            else:  # pragma: no cover - defensive: out-of-order inbox use
                try:
                    inbox.remove(message)
                except ValueError:
                    pass
            if suppress:
                continue
            delay = 0.0
            if self.latency is not None:
                hops = receipt.hop_by_receiver.get(identity.name, receipt.hops)
                distance = 0.0
                if field_ is not None and message.sender.name in field_ and identity.name in field_:
                    distance = field_.distance(message.sender.name, identity.name)
                delay = channel_wait + tx_time + self.latency.delivery_delay_for(
                    message.wire_bits, hops, distance, message.sender.name, identity.name
                )
            self.kernel.schedule(
                partial(self._deliver, receiver, decoded),
                delay=delay + attack_delay,
                rank=EventKernel.RANK_DELIVERY,
            )
        if self.adversary is not None:
            for forged in self.adversary.drain_injections(now):
                self._inject(forged)

    def _inject(self, forged: Message) -> None:
        """Deliver an attacker-transmitted forgery, racing legitimate copies.

        The forgery rides the attacker's own transmitter (its TX cost was
        charged to the attacker's node when it was queued), so no legitimate
        ledger pays for the send — but every addressed machine physically
        receives a copy and is charged that reception.  ``order=-1`` makes
        the forged delivery sort ahead of same-instant legitimate deliveries,
        so the executor's duplicate filter then discards the honest original:
        first copy wins, and the attacker made sure of being first.
        """
        for receiver in self.machines:
            if not forged.addressed_to(receiver.identity):
                continue
            receiver.node.recorder.record_rx(forged.wire_bits)
            self.kernel.schedule(
                partial(self._deliver, receiver, forged),
                rank=EventKernel.RANK_DELIVERY,
                order=-1,
            )

    def _deliver(self, machine: PartyMachine, message: Message) -> None:
        key = (message.sender.name, message.round_label)
        seen = self._seen[machine.identity.name]
        if key in seen:
            return  # duplicate copy from a retransmission wave
        seen.add(key)
        self.stats.deliveries += 1
        self._hook(machine, partial(machine.on_message, message))


def run_machines(
    machines: Sequence[PartyMachine],
    medium: BroadcastMedium,
    *,
    engine: Optional[EngineConfig] = None,
) -> EngineStats:
    """Convenience wrapper: build a :class:`MachineExecutor` and run it."""
    return MachineExecutor(machines, medium, engine).run()


def drive_plan(
    plan: MachinePlan,
    medium: BroadcastMedium,
    *,
    engine: Optional[EngineConfig] = None,
):
    """Execute a :class:`~repro.engine.machine.MachinePlan` to its result.

    The single driver body behind ``Protocol.run`` and the dynamic
    sub-protocols' ``run`` methods: step the machines to quiescence, then let
    the plan assemble its protocol result from the engine statistics.
    """
    stats = run_machines(plan.machines, medium, engine=engine)
    return plan.finish(stats)
