"""The virtual-time event kernel.

:class:`EventKernel` is a deterministic discrete-event scheduler: callbacks
are queued under a ``(time, rank, order, seq)`` key and executed in exactly
that order.  Determinism is the whole point — two runs with the same seed must
produce identical event interleavings down to the per-node energy ledgers —
so there is no wall-clock anywhere, and ties are broken by explicit fields
rather than insertion accidents:

``rank``
    Coarse event class.  Deliveries (:attr:`RANK_DELIVERY`) sort before
    protocol actions (:attr:`RANK_HOOK`) within one instant, so a machine
    never acts on a half-delivered round.
``order``
    Fine position *within* a rank — the executor uses the emitting machine's
    ring index here, which is what makes same-instant broadcasts leave the
    medium in ring order (``U_1`` first) exactly like the paper writes the
    rounds.
``seq``
    Global scheduling sequence number, the final tiebreak (FIFO).

The kernel runs with *batch-per-instant* semantics: all events currently
queued for virtual time ``t`` form one batch, executed in key order; events
scheduled **during** that batch — even at the same ``t`` — land in the next
batch.  This gives synchronized-round protocols their barrier (everyone's
Round-1 broadcast is delivered before anyone's Round-2 reaction transmits)
without the machines having to know about rounds at all.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

from ..exceptions import ParameterError

__all__ = ["EventKernel"]

#: Entry layout in the priority queue.
_Entry = Tuple[float, int, int, int, Callable[[], None]]


class EventKernel:
    """A deterministic virtual-time scheduler with per-instant batches."""

    #: Message deliveries: processed before same-instant protocol actions.
    RANK_DELIVERY = 0
    #: Protocol actions (machine hooks and the transmissions they trigger).
    RANK_HOOK = 1

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = start_time
        self.events_processed = 0
        self._heap: List[_Entry] = []
        self._seq = 0
        #: observation-only telemetry hooks (set by the executor; ``None``
        #: keeps the batch loop on its historical zero-overhead path)
        self.tracer = None
        self.metrics = None

    # ------------------------------------------------------------ scheduling
    def schedule(
        self,
        callback: Callable[[], None],
        *,
        delay: float = 0.0,
        rank: int = RANK_HOOK,
        order: int = 0,
    ) -> None:
        """Queue ``callback`` at ``now + delay`` under ``(rank, order)``."""
        if delay < 0:
            raise ParameterError("cannot schedule events in the past")
        heapq.heappush(self._heap, (self.now + delay, rank, order, self._seq, callback))
        self._seq += 1

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._heap)

    def advance(self, delta: float) -> None:
        """Move virtual time forward by ``delta`` seconds (timeout waves)."""
        if delta < 0:
            raise ParameterError("virtual time cannot move backwards")
        self.now += delta

    # ------------------------------------------------------------- execution
    def run(self) -> None:
        """Execute queued events until quiescence (an empty queue).

        Events are processed in ``(time, rank, order, seq)`` order.  All
        events queued for one virtual instant when that instant starts form a
        batch; events they schedule — even for the same instant — run in the
        following batch.  Exceptions raised by callbacks propagate to the
        caller (a protocol failure aborts the run, exactly like the
        synchronous execution it replaces).
        """
        while self._heap:
            instant = self._heap[0][0]
            batch: List[_Entry] = []
            while self._heap and self._heap[0][0] == instant:
                batch.append(heapq.heappop(self._heap))
            if instant > self.now:
                self.now = instant
            # Telemetry is observation-only: the span and gauge record what
            # the batch did, never influence what it does.
            if self.metrics is not None:
                self.metrics.gauge_max(
                    "engine.queue_depth", len(self._heap) + len(batch)
                )
            if self.tracer is None:
                for _, _, _, _, callback in batch:
                    callback()
                    self.events_processed += 1
            else:
                with self.tracer.span(
                    "kernel.batch",
                    category="kernel",
                    track="kernel",
                    sim_start=instant,
                    args={"size": len(batch)},
                ) as span:
                    for _, _, _, _, callback in batch:
                        callback()
                        self.events_processed += 1
                    span.finish_sim(self.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventKernel(now={self.now:g}, pending={self.pending()})"
