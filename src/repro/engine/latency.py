"""Per-link delivery latency models for the event kernel.

In latency mode the executor schedules each delivery at
``now + channel_wait + tx_time + delivery_delay``:

* ``channel_wait`` — time the origin waits for the shared broadcast channel
  (the executor serializes same-instant transmissions, a deliberately simple
  MAC model);
* ``tx_time`` — serialization of the message at the transceiver bitrate;
* ``delivery_delay`` — everything between the origin finishing its
  transmission and a given receiver decoding the copy: relay
  re-serializations on multi-hop paths, per-hop processing, and propagation
  over the mobility distance.

Models only read message sizes and topology facts, never randomness — the
latency of a given delivery is a pure function of the scenario state, so
virtual-time traces are reproducible.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..energy.transceiver import Transceiver
from ..exceptions import ParameterError

__all__ = ["LatencyModel", "FixedLatency", "TransceiverLatency", "TieredLatency"]

#: Speed of light, the default propagation speed (m/s).
_C = 299_792_458.0


class LatencyModel(abc.ABC):
    """How long transmissions occupy the channel and deliveries take."""

    @abc.abstractmethod
    def tx_time_s(self, bits: int) -> float:
        """Channel occupancy of one transmission of ``bits`` bits."""

    @abc.abstractmethod
    def delivery_delay_s(self, bits: int, hops: int, distance_m: float) -> float:
        """Delay from the origin's transmission end to one receiver's decode."""

    # The executor calls the ``*_for`` variants, which additionally see the
    # endpoint names; the defaults delegate to the name-free methods, so
    # existing models are untouched and pre-tier runs stay bit-identical.
    def tx_time_for(self, bits: int, sender: str) -> float:
        """Channel occupancy of ``sender``'s transmission of ``bits`` bits."""
        return self.tx_time_s(bits)

    def delivery_delay_for(
        self, bits: int, hops: int, distance_m: float, sender: str, receiver: str
    ) -> float:
        """Per-receiver delivery delay (endpoint-aware variant)."""
        return self.delivery_delay_s(bits, hops, distance_m)

    def bind(self, medium: object) -> None:
        """Observe the medium the executor runs over (topology-aware models)."""

    def describe(self) -> str:
        """One-line summary used in reports."""
        return type(self).__name__


class FixedLatency(LatencyModel):
    """A constant per-hop link latency (sweep knob, not a radio model).

    ``delay_s`` is charged once per hop; the channel itself is free
    (``tx_time_s`` is zero), so concurrent broadcasts do not queue.  This is
    the right model for latency × loss sweeps where the link delay is the
    independent variable.
    """

    def __init__(self, delay_s: float) -> None:
        if delay_s < 0:
            raise ParameterError("link latency cannot be negative")
        self.delay_s = delay_s

    def tx_time_s(self, bits: int) -> float:
        return 0.0

    def delivery_delay_s(self, bits: int, hops: int, distance_m: float) -> float:
        return self.delay_s * max(1, hops)

    def describe(self) -> str:
        return f"fixed({self.delay_s:g}s/hop)"


class TransceiverLatency(LatencyModel):
    """Latency derived from a transceiver's bitrate plus hop/propagation terms.

    * serialization: ``bits / bitrate`` at the origin, and again at every
      relay on an ``h``-hop path (``h - 1`` re-serializations);
    * processing: ``per_hop_overhead_s`` at every relay (MAC access, queueing);
    * propagation: ``distance_m`` at ``propagation_m_per_s`` (microseconds at
      radio ranges, but it keeps the model honest for long links).
    """

    def __init__(
        self,
        transceiver: Transceiver,
        *,
        per_hop_overhead_s: float = 0.001,
        propagation_m_per_s: float = _C,
    ) -> None:
        if transceiver.bitrate_bps <= 0:
            raise ParameterError("transceiver bitrate must be positive for latency modelling")
        if per_hop_overhead_s < 0:
            raise ParameterError("per-hop overhead cannot be negative")
        if propagation_m_per_s <= 0:
            raise ParameterError("propagation speed must be positive")
        self.transceiver = transceiver
        self.per_hop_overhead_s = per_hop_overhead_s
        self.propagation_m_per_s = propagation_m_per_s

    def tx_time_s(self, bits: int) -> float:
        return bits / self.transceiver.bitrate_bps

    def delivery_delay_s(self, bits: int, hops: int, distance_m: float) -> float:
        relays = max(1, hops) - 1
        return (
            relays * (self.tx_time_s(bits) + self.per_hop_overhead_s)
            + distance_m / self.propagation_m_per_s
        )

    def describe(self) -> str:
        return (
            f"transceiver({self.transceiver.name}, "
            f"{self.transceiver.bitrate_bps:g} bps, "
            f"{self.per_hop_overhead_s * 1000.0:g} ms/hop)"
        )


class TieredLatency(LatencyModel):
    """Latency from per-link-class bitrates and propagation delays.

    Resolves every delivery's serialization rate and propagation through a
    :class:`~repro.network.tiers.TierMap` — normally discovered at
    :meth:`bind` time from the medium's ``tier_map`` attribute, so one
    engine profile serves every tiered scenario:

    * ``tx_time_for``: the origin serializes at its *home* class's member
      rate (the 1 Mbps satellite uplink really throttles satellite-homed
      senders);
    * ``delivery_delay_for``: relays re-serialize at the pair's class rate
      (descending deliveries use the faster ``reverse_bps`` when set), plus
      one extra re-serialization when the delivery crosses tiers — the
      gateway forwarding onto the other tier's channel — plus the class's
      fixed propagation delay (two tiers' worth for gateway-bridged pairs,
      e.g. a 500 ms round trip over a 250 ms satellite hop each way).

    Without a bound map (plain media, the degenerate single-tier collapse)
    the ``fallback`` class prices everything — by default the ``ground``
    preset.
    """

    def __init__(
        self,
        tier_map: Optional[object] = None,
        *,
        per_hop_overhead_s: float = 0.001,
        fallback: Optional[object] = None,
        propagation_m_per_s: float = _C,
    ) -> None:
        from ..network.tiers import LINK_CLASSES, LinkClass

        if per_hop_overhead_s < 0:
            raise ParameterError("per-hop overhead cannot be negative")
        if propagation_m_per_s <= 0:
            raise ParameterError("propagation speed must be positive")
        if fallback is None:
            fallback = LINK_CLASSES["ground"]
        if not isinstance(fallback, LinkClass):
            raise ParameterError("fallback must be a LinkClass")
        self.tier_map = tier_map
        self.per_hop_overhead_s = per_hop_overhead_s
        self.fallback = fallback
        self.propagation_m_per_s = propagation_m_per_s
        # An explicitly supplied map must survive bind(); a discovered one
        # is rebound per executor so the profile can be reused across runs.
        self._explicit = tier_map is not None

    def bind(self, medium: object) -> None:
        if not self._explicit:
            self.tier_map = getattr(medium, "tier_map", None)

    def tx_time_s(self, bits: int) -> float:
        return bits / self.fallback.bitrate_bps

    def tx_time_for(self, bits: int, sender: str) -> float:
        if self.tier_map is None:
            return self.tx_time_s(bits)
        return bits / self.tier_map.home_class(sender).bitrate_bps

    def delivery_delay_s(self, bits: int, hops: int, distance_m: float) -> float:
        relays = max(1, hops) - 1
        return (
            relays * (bits / self.fallback.bitrate_bps + self.per_hop_overhead_s)
            + self.fallback.propagation_delay_s
            + distance_m / self.propagation_m_per_s
        )

    def delivery_delay_for(
        self, bits: int, hops: int, distance_m: float, sender: str, receiver: str
    ) -> float:
        if self.tier_map is None:
            return self.delivery_delay_s(bits, hops, distance_m)
        rate, propagation, cross = self.tier_map.latency_terms(sender, receiver)
        # A cross-tier delivery pays one extra serialization at the bridging
        # class's rate even on a direct link: the gateway (or the origin's
        # uplink terminal) forwards the copy onto the other tier's channel.
        reserializations = max(1, hops) - 1 + (1 if cross else 0)
        return (
            reserializations * (bits / rate + self.per_hop_overhead_s)
            + propagation
            + distance_m / self.propagation_m_per_s
        )

    def describe(self) -> str:
        if self.tier_map is None:
            return f"tiered(unbound, fallback={self.fallback.name})"
        return f"tiered({self.tier_map.describe()})"
