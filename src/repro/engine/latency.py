"""Per-link delivery latency models for the event kernel.

In latency mode the executor schedules each delivery at
``now + channel_wait + tx_time + delivery_delay``:

* ``channel_wait`` — time the origin waits for the shared broadcast channel
  (the executor serializes same-instant transmissions, a deliberately simple
  MAC model);
* ``tx_time`` — serialization of the message at the transceiver bitrate;
* ``delivery_delay`` — everything between the origin finishing its
  transmission and a given receiver decoding the copy: relay
  re-serializations on multi-hop paths, per-hop processing, and propagation
  over the mobility distance.

Models only read message sizes and topology facts, never randomness — the
latency of a given delivery is a pure function of the scenario state, so
virtual-time traces are reproducible.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..energy.transceiver import Transceiver
from ..exceptions import ParameterError

__all__ = ["LatencyModel", "FixedLatency", "TransceiverLatency"]

#: Speed of light, the default propagation speed (m/s).
_C = 299_792_458.0


class LatencyModel(abc.ABC):
    """How long transmissions occupy the channel and deliveries take."""

    @abc.abstractmethod
    def tx_time_s(self, bits: int) -> float:
        """Channel occupancy of one transmission of ``bits`` bits."""

    @abc.abstractmethod
    def delivery_delay_s(self, bits: int, hops: int, distance_m: float) -> float:
        """Delay from the origin's transmission end to one receiver's decode."""

    def describe(self) -> str:
        """One-line summary used in reports."""
        return type(self).__name__


class FixedLatency(LatencyModel):
    """A constant per-hop link latency (sweep knob, not a radio model).

    ``delay_s`` is charged once per hop; the channel itself is free
    (``tx_time_s`` is zero), so concurrent broadcasts do not queue.  This is
    the right model for latency × loss sweeps where the link delay is the
    independent variable.
    """

    def __init__(self, delay_s: float) -> None:
        if delay_s < 0:
            raise ParameterError("link latency cannot be negative")
        self.delay_s = delay_s

    def tx_time_s(self, bits: int) -> float:
        return 0.0

    def delivery_delay_s(self, bits: int, hops: int, distance_m: float) -> float:
        return self.delay_s * max(1, hops)

    def describe(self) -> str:
        return f"fixed({self.delay_s:g}s/hop)"


class TransceiverLatency(LatencyModel):
    """Latency derived from a transceiver's bitrate plus hop/propagation terms.

    * serialization: ``bits / bitrate`` at the origin, and again at every
      relay on an ``h``-hop path (``h - 1`` re-serializations);
    * processing: ``per_hop_overhead_s`` at every relay (MAC access, queueing);
    * propagation: ``distance_m`` at ``propagation_m_per_s`` (microseconds at
      radio ranges, but it keeps the model honest for long links).
    """

    def __init__(
        self,
        transceiver: Transceiver,
        *,
        per_hop_overhead_s: float = 0.001,
        propagation_m_per_s: float = _C,
    ) -> None:
        if transceiver.bitrate_bps <= 0:
            raise ParameterError("transceiver bitrate must be positive for latency modelling")
        if per_hop_overhead_s < 0:
            raise ParameterError("per-hop overhead cannot be negative")
        if propagation_m_per_s <= 0:
            raise ParameterError("propagation speed must be positive")
        self.transceiver = transceiver
        self.per_hop_overhead_s = per_hop_overhead_s
        self.propagation_m_per_s = propagation_m_per_s

    def tx_time_s(self, bits: int) -> float:
        return bits / self.transceiver.bitrate_bps

    def delivery_delay_s(self, bits: int, hops: int, distance_m: float) -> float:
        relays = max(1, hops) - 1
        return (
            relays * (self.tx_time_s(bits) + self.per_hop_overhead_s)
            + distance_m / self.propagation_m_per_s
        )

    def describe(self) -> str:
        return (
            f"transceiver({self.transceiver.name}, "
            f"{self.transceiver.bitrate_bps:g} bps, "
            f"{self.per_hop_overhead_s * 1000.0:g} ms/hop)"
        )
