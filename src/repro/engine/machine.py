"""The per-party protocol state machine API.

Every protocol in the library decomposes into one :class:`PartyMachine` per
group member.  A machine never calls the medium directly — it *returns*
:class:`Outbound` messages from its hooks and the executor transmits them,
which is what lets the same machine code run both in the instant
(synchronous-equivalent) mode and under a latency model with loss-driven
timeouts.

Lifecycle
---------
``start(now)``
    Called once when the kernel starts.  Round-1 broadcasters emit here.
``on_message(message, now)``
    Called for every delivered message (duplicates from retransmission waves
    are filtered by the executor).  Machines accumulate their round views
    here and emit the next round once a view is complete.
``on_wake(payload, now)``
    Called when another machine's coordinator requests an action via
    :meth:`MachineContext.wake` — e.g. the proposed GKA's "all members
    retransmit" recovery after a failed batch verification.
``on_timeout(round_label, now)``
    Called by the executor in latency mode when the group stalled waiting on
    ``round_label``.  The default re-broadcasts whatever this machine already
    sent for that round, which together with per-link loss re-draws makes
    retransmission waves converge.

Machines flag completion by setting :attr:`PartyMachine.finished` and report
the round they are blocked on through :attr:`PartyMachine.waiting_for`, which
drives both the latency-mode timeout logic and the instant-mode deadlock
diagnostics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol as TypingProtocol

from ..network.message import Message
from ..network.node import Node
from ..pki.identity import Identity

__all__ = ["Outbound", "PartyMachine", "MachineContext", "MachinePlan"]


@dataclass(frozen=True)
class Outbound:
    """One message a machine wants transmitted on the shared medium."""

    message: Message


class MachineContext(TypingProtocol):
    """What the executor exposes to machines (see ``executor.MachineExecutor``)."""

    def wake(self, machine: "PartyMachine", payload: object) -> None:
        """Schedule ``machine.on_wake(payload, now)`` as a kernel action."""


class PartyMachine(abc.ABC):
    """Base class for one member's view of one protocol run."""

    def __init__(self, identity: Identity, node: Node) -> None:
        self.identity = identity
        self.node = node
        #: set True once this member has done everything the protocol asks of it
        self.finished = False
        #: round label this machine is currently blocked on (None when idle/done)
        self.waiting_for: Optional[str] = None
        #: last message transmitted per round label (retransmission source)
        self.sent: Dict[str, Message] = {}
        #: bound by the executor before ``start`` runs
        self.context: Optional[MachineContext] = None

    # ------------------------------------------------------------------ hooks
    def start(self, now: float) -> List[Outbound]:
        """First kernel action; emit the opening round here."""
        return []

    def on_message(self, message: Message, now: float) -> List[Outbound]:
        """React to one delivered message."""
        return []

    def on_wake(self, payload: object, now: float) -> List[Outbound]:
        """React to a coordinator wake-up (see :meth:`MachineContext.wake`)."""
        return []

    def on_timeout(self, round_label: str, now: float) -> List[Outbound]:
        """The group stalled on ``round_label``: contribute to the recovery.

        Default: re-broadcast this machine's own transmission for that round,
        the paper's "all members retransmit again" behaviour.  Machines that
        sent nothing for the round contribute nothing.
        """
        message = self.sent.get(round_label)
        return [Outbound(message)] if message is not None else []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else f"waiting={self.waiting_for!r}"
        return f"{type(self).__name__}({self.identity.name}, {state})"


@dataclass
class MachinePlan:
    """A protocol run decomposed into machines plus its result assembly.

    ``machines`` are registered with the executor in list order — that order
    is the ring order and fixes the deterministic same-instant transmission
    order, so protocols must list the controller ``U_1`` first.  ``finish``
    receives
    the :class:`~repro.engine.executor.EngineStats` once the kernel reaches
    quiescence and builds the protocol's result object.
    """

    machines: List[PartyMachine]
    finish: Callable[[object], object]
    #: number of communication rounds the protocol nominally takes
    rounds: int = 0
