"""Communication transceiver models (Table 3 of the paper).

Two radios are modelled, exactly as in the paper:

* a generic **100 kbps radio transceiver module** (per-bit costs from Carman
  et al. [3] and Hodjat & Verbauwhede [6]): 10.8 uJ/bit transmit,
  7.51 uJ/bit receive;
* the **IEEE 802.11 Spectrum24 LA-4121 WLAN card** (Karri & Mishra [8]):
  0.66 uJ/bit transmit, 0.31 uJ/bit receive.

Every row of the paper's Table 3 is just ``bits x per-bit cost``; the
:class:`Transceiver` exposes that computation and the named devices carry the
paper's constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import EnergyModelError

__all__ = ["Transceiver", "RADIO_100KBPS", "WLAN_SPECTRUM24", "TRANSCEIVERS", "get_transceiver"]


@dataclass(frozen=True)
class Transceiver:
    """A radio with per-bit transmission and reception energy costs.

    Attributes
    ----------
    name:
        Human-readable device name.
    tx_uj_per_bit:
        Transmit energy in micro-joules per bit.
    rx_uj_per_bit:
        Receive energy in micro-joules per bit.
    bitrate_bps:
        Nominal bitrate; used only for latency estimates in reports, never for
        energy (the paper charges energy per bit, not per second).
    """

    name: str
    tx_uj_per_bit: float
    rx_uj_per_bit: float
    bitrate_bps: float

    def __post_init__(self) -> None:
        if self.tx_uj_per_bit < 0 or self.rx_uj_per_bit < 0:
            raise EnergyModelError("per-bit energies must be non-negative")

    # --------------------------------------------------------------- energy
    def tx_energy_mj(self, bits: int | float) -> float:
        """Energy (mJ) to transmit ``bits`` bits."""
        if bits < 0:
            raise EnergyModelError("bit counts cannot be negative")
        return self.tx_uj_per_bit * bits / 1000.0

    def rx_energy_mj(self, bits: int | float) -> float:
        """Energy (mJ) to receive ``bits`` bits."""
        if bits < 0:
            raise EnergyModelError("bit counts cannot be negative")
        return self.rx_uj_per_bit * bits / 1000.0

    # --------------------------------------------------------------- timing
    def airtime_ms(self, bits: int | float) -> float:
        """Nominal time on air for ``bits`` bits (reporting only)."""
        if self.bitrate_bps <= 0:
            raise EnergyModelError("bitrate must be positive for airtime estimates")
        return bits / self.bitrate_bps * 1000.0


#: The low-rate sensor-style radio of the paper (columns "(a)(c)(e)(g)(i)" of Figure 1).
RADIO_100KBPS = Transceiver(
    name="100kbps radio transceiver",
    tx_uj_per_bit=10.8,
    rx_uj_per_bit=7.51,
    bitrate_bps=100_000.0,
)

#: The IEEE 802.11 Spectrum24 LA-4121 WLAN card (columns "(b)(d)(f)(h)(j)").
WLAN_SPECTRUM24 = Transceiver(
    name="IEEE 802.11 Spectrum24 LA-4121 WLAN card",
    tx_uj_per_bit=0.66,
    rx_uj_per_bit=0.31,
    bitrate_bps=11_000_000.0,
)

TRANSCEIVERS = {
    "100kbps": RADIO_100KBPS,
    "wlan": WLAN_SPECTRUM24,
}


def get_transceiver(name: str) -> Transceiver:
    """Look up a transceiver by short name (``"100kbps"`` or ``"wlan"``)."""
    try:
        return TRANSCEIVERS[name]
    except KeyError:
        raise EnergyModelError(
            f"unknown transceiver {name!r}; available: {', '.join(sorted(TRANSCEIVERS))}"
        ) from None
