"""Energy model: CPU and transceiver devices, the paper's cost tables, and
per-node energy accounting (Tables 2, 3, 5 and Figure 1)."""

from .accounting import CostRecorder, DeviceProfile, EnergyBreakdown
from .commcosts import PAPER_TABLE3_MJ, PAYLOAD_BITS, CommunicationCostTable
from .cpu import (
    CPUModel,
    PENTIUM_III_1GHZ,
    PENTIUM_III_450,
    STRONGARM_SA1110,
    energy_mj_from_time,
    extrapolate_time_ms,
    scale_by_clock,
)
from .opcosts import (
    HASH_OP_MJ,
    OperationCostTable,
    PAPER_TABLE2_ENERGY_MJ,
    PIII_1GHZ_TIMINGS_MS,
    PIII_450_TIMINGS_MS,
    SYMMETRIC_OP_MJ,
    derive_piii450_timings,
)
from .transceiver import (
    RADIO_100KBPS,
    TRANSCEIVERS,
    Transceiver,
    WLAN_SPECTRUM24,
    get_transceiver,
)

__all__ = [
    "CostRecorder",
    "DeviceProfile",
    "EnergyBreakdown",
    "PAPER_TABLE3_MJ",
    "PAYLOAD_BITS",
    "CommunicationCostTable",
    "CPUModel",
    "PENTIUM_III_1GHZ",
    "PENTIUM_III_450",
    "STRONGARM_SA1110",
    "energy_mj_from_time",
    "extrapolate_time_ms",
    "scale_by_clock",
    "HASH_OP_MJ",
    "OperationCostTable",
    "PAPER_TABLE2_ENERGY_MJ",
    "PIII_1GHZ_TIMINGS_MS",
    "PIII_450_TIMINGS_MS",
    "SYMMETRIC_OP_MJ",
    "derive_piii450_timings",
    "RADIO_100KBPS",
    "TRANSCEIVERS",
    "Transceiver",
    "WLAN_SPECTRUM24",
    "get_transceiver",
]
