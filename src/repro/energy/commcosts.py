"""Communication-cost table (Table 3 of the paper).

Every row of Table 3 is ``payload bits x per-bit cost`` for the two
transceivers.  This module names the payloads the paper tabulates
(certificates and signatures of the four schemes) and regenerates the table
from the :class:`~repro.energy.transceiver.Transceiver` per-bit constants, so
the benchmark harness can compare the derived values to the paper's printed
ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..exceptions import EnergyModelError
from ..pki.ca import DSA_CERT_BYTES, ECDSA_CERT_BYTES
from .transceiver import RADIO_100KBPS, Transceiver, WLAN_SPECTRUM24

__all__ = [
    "PAYLOAD_BITS",
    "PAPER_TABLE3_MJ",
    "CommunicationCostTable",
]


#: Wire sizes (bits) of the payloads tabulated in Table 3.
PAYLOAD_BITS: Dict[str, int] = {
    "dsa_certificate": 8 * DSA_CERT_BYTES,      # 263 bytes
    "ecdsa_certificate": 8 * ECDSA_CERT_BYTES,  # 86 bytes
    "dsa_signature": 2 * 160,                   # (r, s), 160 bits each
    "ecdsa_signature": 2 * 160,                 # (r, s), 160 bits each
    "sok_signature": 2 * 194,                   # (S1, S2), 194 bits each
    "gq_signature": 1024 + 160,                 # s = 1024 bits, c = 160 bits
}

#: The paper's printed Table 3 values, in mJ, keyed by (payload, direction,
#: transceiver).  Used as the reference column of the benchmark output.
PAPER_TABLE3_MJ: Dict[Tuple[str, str, str], float] = {
    ("dsa_certificate", "tx", "100kbps"): 22.72,
    ("dsa_certificate", "rx", "100kbps"): 15.8,
    ("dsa_certificate", "tx", "wlan"): 1.38,
    ("dsa_certificate", "rx", "wlan"): 0.64,
    ("ecdsa_certificate", "tx", "100kbps"): 7.43,
    ("ecdsa_certificate", "rx", "100kbps"): 5.17,
    ("ecdsa_certificate", "tx", "wlan"): 0.45,
    ("ecdsa_certificate", "rx", "wlan"): 0.21,
    ("dsa_signature", "tx", "100kbps"): 3.46,
    ("dsa_signature", "rx", "100kbps"): 2.40,
    ("dsa_signature", "tx", "wlan"): 0.21,
    ("dsa_signature", "rx", "wlan"): 0.1,
    ("ecdsa_signature", "tx", "100kbps"): 3.46,
    ("ecdsa_signature", "rx", "100kbps"): 2.40,
    ("ecdsa_signature", "tx", "wlan"): 0.21,
    ("ecdsa_signature", "rx", "wlan"): 0.1,
    ("sok_signature", "tx", "100kbps"): 4.19,
    ("sok_signature", "rx", "100kbps"): 2.91,
    ("sok_signature", "tx", "wlan"): 0.26,
    ("sok_signature", "rx", "wlan"): 0.12,
    ("gq_signature", "tx", "100kbps"): 12.79,
    ("gq_signature", "rx", "100kbps"): 8.89,
    ("gq_signature", "tx", "wlan"): 0.78,
    ("gq_signature", "rx", "wlan"): 0.36,
}


@dataclass(frozen=True)
class CommunicationCostTable:
    """Regenerates Table 3 from the transceiver per-bit constants."""

    radio: Transceiver = RADIO_100KBPS
    wlan: Transceiver = WLAN_SPECTRUM24
    payload_bits: Mapping[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.payload_bits is None:
            object.__setattr__(self, "payload_bits", dict(PAYLOAD_BITS))

    def _transceiver(self, name: str) -> Transceiver:
        if name == "100kbps":
            return self.radio
        if name == "wlan":
            return self.wlan
        raise EnergyModelError(f"unknown transceiver column {name!r}")

    def cost_mj(self, payload: str, direction: str, transceiver: str) -> float:
        """Energy (mJ) of sending/receiving one named payload."""
        try:
            bits = self.payload_bits[payload]
        except KeyError:
            raise EnergyModelError(
                f"unknown payload {payload!r}; known: {', '.join(sorted(self.payload_bits))}"
            ) from None
        device = self._transceiver(transceiver)
        if direction == "tx":
            return device.tx_energy_mj(bits)
        if direction == "rx":
            return device.rx_energy_mj(bits)
        raise EnergyModelError("direction must be 'tx' or 'rx'")

    def as_table(self) -> Dict[Tuple[str, str, str], float]:
        """All (payload, direction, transceiver) combinations, in mJ."""
        table: Dict[Tuple[str, str, str], float] = {}
        for payload in self.payload_bits:
            for direction in ("tx", "rx"):
                for transceiver in ("100kbps", "wlan"):
                    table[(payload, direction, transceiver)] = self.cost_mj(
                        payload, direction, transceiver
                    )
        return table

    def per_bit_rows(self) -> Dict[Tuple[str, str], float]:
        """The per-bit header rows of Table 3 (uJ per bit)."""
        return {
            ("tx", "100kbps"): self.radio.tx_uj_per_bit,
            ("rx", "100kbps"): self.radio.rx_uj_per_bit,
            ("tx", "wlan"): self.wlan.tx_uj_per_bit,
            ("rx", "wlan"): self.wlan.rx_uj_per_bit,
        }
