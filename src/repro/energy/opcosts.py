"""The computational-operation cost table (Table 2 of the paper).

The table is *derived*, not transcribed: we start from

* the StrongARM modular-exponentiation energy (9.1 mJ, from Carman et al.),
* MIRACL timings on the Pentium III 450 MHz for modexp (8.8 ms), scalar
  multiplication (8.5 ms) and the four signature schemes,
* Pentium III 1 GHz timings for the Tate pairing (20 ms) and the IBE
  encrypt/decrypt pair (35 ms / 27 ms) whose difference yields the
  MapToPoint timing (8 ms),

and apply the paper's two scaling rules (clock-ratio scaling between the two
Pentium machines, and equation (4) onto the StrongARM).  The reproduction of
Table 2 in ``benchmarks/test_table2_comp_energy.py`` checks the derived
numbers against the values printed in the paper.

Symmetric-key and hash operations are priced with small constants taken from
the same sources the paper cites (Carman et al. report AES-class encryption
around three orders of magnitude below a modular exponentiation); the paper
treats them as negligible and so do we, but they are carried explicitly so the
dynamic-protocol totals include them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..exceptions import EnergyModelError
from .cpu import (
    CPUModel,
    PENTIUM_III_1GHZ,
    PENTIUM_III_450,
    STRONGARM_SA1110,
    extrapolate_time_ms,
    scale_by_clock,
)

__all__ = [
    "OperationCostTable",
    "PIII_450_TIMINGS_MS",
    "PIII_1GHZ_TIMINGS_MS",
    "derive_piii450_timings",
    "PAPER_TABLE2_ENERGY_MJ",
    "SYMMETRIC_OP_MJ",
    "HASH_OP_MJ",
]


#: Primitive timings measured (MIRACL) directly on the Pentium III 450 MHz, in ms.
PIII_450_TIMINGS_MS: Dict[str, float] = {
    "modexp": 8.8,
    "scalar_mul": 8.5,
    "sign_gen_dsa": 8.8,
    "sign_gen_ecdsa": 8.5,
    "sign_gen_sok": 17.0,
    "sign_gen_gq": 17.6,
    "sign_ver_dsa": 10.75,
    "sign_ver_ecdsa": 10.5,
    "sign_ver_sok": 133.2,
    "sign_ver_gq": 17.6,
}

#: Timings only available on the Pentium III 1 GHz, in ms.
PIII_1GHZ_TIMINGS_MS: Dict[str, float] = {
    "tate_pairing": 20.0,
    "ibe_encrypt": 35.0,
    "ibe_decrypt": 27.0,
}

#: The energy column of the paper's Table 2 (mJ on the StrongARM), used by the
#: benchmark harness as the "paper reported" reference values.
PAPER_TABLE2_ENERGY_MJ: Dict[str, float] = {
    "modexp": 9.1,
    "map_to_point": 18.4,
    "tate_pairing": 47.0,
    "scalar_mul": 8.8,
    "sign_gen_dsa": 9.1,
    "sign_gen_ecdsa": 8.8,
    "sign_gen_sok": 17.6,
    "sign_gen_gq": 18.2,
    "sign_ver_dsa": 11.1,
    "sign_ver_ecdsa": 10.9,
    "sign_ver_sok": 137.7,
    "sign_ver_gq": 18.2,
}

#: Cost of one symmetric encryption/decryption of a short (<=2 kbit) message.
#: Carman et al. measure AES-class work at ~1-2 uJ/byte on the StrongARM, so a
#: ~150-byte key-update blob lands in the tens of micro-joules.  We charge a
#: flat 0.05 mJ per operation — visible in the totals, negligible in the
#: ordering, exactly as the paper assumes ("orders of magnitude lower than
#: modular exponentiations").
SYMMETRIC_OP_MJ = 0.05

#: Cost of one hash invocation (SHA-1/SHA-256 class) on the StrongARM; again
#: orders of magnitude below a modular exponentiation.
HASH_OP_MJ = 0.05


def derive_piii450_timings() -> Dict[str, float]:
    """Derive the full Pentium III 450 MHz timing table.

    Combines the directly measured values with the 1 GHz-scaled Tate pairing
    and the MapToPoint timing obtained from the IBE encrypt/decrypt difference
    (35 - 27 = 8 ms on the 1 GHz machine).
    """
    timings = dict(PIII_450_TIMINGS_MS)
    timings["tate_pairing"] = scale_by_clock(
        PIII_1GHZ_TIMINGS_MS["tate_pairing"], PENTIUM_III_1GHZ, PENTIUM_III_450
    )
    map_to_point_1ghz = PIII_1GHZ_TIMINGS_MS["ibe_encrypt"] - PIII_1GHZ_TIMINGS_MS["ibe_decrypt"]
    timings["map_to_point"] = scale_by_clock(map_to_point_1ghz, PENTIUM_III_1GHZ, PENTIUM_III_450)
    return timings


@dataclass(frozen=True)
class OperationCostTable:
    """Per-operation timing and energy on a target CPU (Table 2).

    Attributes
    ----------
    cpu:
        The device whose energy is being modelled (StrongARM by default).
    reference_timings_ms:
        Primitive timings on the Pentium III 450 MHz reference machine.
    symmetric_op_mj / hash_op_mj:
        Flat costs for symmetric-crypto and hash operations (see module docs).
    """

    cpu: CPUModel = STRONGARM_SA1110
    reference_timings_ms: Mapping[str, float] = field(default_factory=derive_piii450_timings)
    symmetric_op_mj: float = SYMMETRIC_OP_MJ
    hash_op_mj: float = HASH_OP_MJ

    # ------------------------------------------------------------------ core
    def known_operations(self) -> tuple:
        """All operation names the table can price."""
        return tuple(sorted(self.reference_timings_ms)) + ("symmetric", "hash")

    def time_ms(self, operation: str) -> float:
        """Time of one ``operation`` on the target CPU (paper eq. 4)."""
        if operation in ("symmetric", "hash"):
            mj = self.symmetric_op_mj if operation == "symmetric" else self.hash_op_mj
            return mj / self.cpu.power_mw * 1000.0
        try:
            reference = self.reference_timings_ms[operation]
        except KeyError:
            raise EnergyModelError(
                f"unknown operation {operation!r}; known: {', '.join(self.known_operations())}"
            ) from None
        return extrapolate_time_ms(reference, PENTIUM_III_450, self.cpu)

    def energy_mj(self, operation: str) -> float:
        """Energy of one ``operation`` on the target CPU, in mJ."""
        if operation == "symmetric":
            return self.symmetric_op_mj
        if operation == "hash":
            return self.hash_op_mj
        return self.cpu.energy_mj(self.time_ms(operation))

    def energy_j(self, operation: str, count: int = 1) -> float:
        """Energy of ``count`` repetitions of ``operation``, in Joules."""
        if count < 0:
            raise EnergyModelError("operation counts cannot be negative")
        return self.energy_mj(operation) * count / 1000.0

    # ------------------------------------------------------------ table view
    def as_table(self) -> Dict[str, Dict[str, float]]:
        """Return the full Table 2 view: energy (mJ), StrongARM ms, P-III 450 ms."""
        rows: Dict[str, Dict[str, float]] = {}
        for operation in sorted(self.reference_timings_ms):
            rows[operation] = {
                "strongarm_mj": self.energy_mj(operation),
                "strongarm_ms": self.time_ms(operation),
                "piii450_ms": self.reference_timings_ms[operation],
            }
        return rows

    def signature_operation(self, scheme: str, kind: str) -> str:
        """Map a scheme name + ``"gen"``/``"ver"`` to the table's operation name."""
        if kind not in ("gen", "ver"):
            raise EnergyModelError("kind must be 'gen' or 'ver'")
        operation = f"sign_{kind}_{scheme}"
        if operation not in self.reference_timings_ms:
            raise EnergyModelError(f"no cost entry for signature scheme {scheme!r}")
        return operation
