"""CPU (microprocessor) models and the paper's timing-extrapolation rule.

The paper's computational energy model works as follows (Section 6):

* the 133 MHz StrongARM SA-1110 consumes **240 mW** while computing, and a
  modular exponentiation costs **9.1 mJ** there (from Carman et al. [3]),
  hence takes ``9.1 mJ / 240 mW = 37.92 ms``;
* the timing of every *other* primitive is taken from MIRACL measurements on a
  Pentium III 450 MHz and scaled onto the StrongARM with equation (4):

      alpha = (gamma / 8.8 ms) * 37.92 ms

  where ``gamma`` is the P-III 450 timing and ``8.8 ms`` is the P-III 450
  modular-exponentiation baseline;
* the StrongARM energy of the primitive is then ``beta = 240 mW * alpha``;
* P-III 1 GHz timings (Tate pairing 20 ms, IBE encrypt 35 ms / decrypt 27 ms)
  are first scaled to the P-III 450 by the clock ratio 1000/450 = 2.22.

This module encodes those devices and both scaling rules so the Table 2 values
are *derived*, not hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import EnergyModelError

__all__ = [
    "CPUModel",
    "STRONGARM_SA1110",
    "PENTIUM_III_450",
    "PENTIUM_III_1GHZ",
    "scale_by_clock",
    "extrapolate_time_ms",
    "energy_mj_from_time",
]


@dataclass(frozen=True)
class CPUModel:
    """A microprocessor in the energy model.

    Attributes
    ----------
    name:
        Human-readable device name.
    clock_mhz:
        Clock frequency, used for the clock-ratio scaling between the two
        Pentium III reference machines.
    power_mw:
        Active power draw in milliwatts.  Only meaningful for the device whose
        *energy* we model (the StrongARM); the Pentium III machines are pure
        timing references and carry ``power_mw = 0``.
    modexp_ms:
        The modular-exponentiation timing on this device, which anchors the
        paper's extrapolation rule.
    """

    name: str
    clock_mhz: float
    power_mw: float
    modexp_ms: float

    def energy_mj(self, time_ms: float) -> float:
        """Energy in mJ of running this CPU for ``time_ms`` milliseconds."""
        if self.power_mw <= 0:
            raise EnergyModelError(
                f"{self.name} is a timing reference only; it has no power model"
            )
        return self.power_mw * time_ms / 1000.0


#: The target device of the whole energy analysis (240 mW, 37.92 ms modexp).
STRONGARM_SA1110 = CPUModel(
    name="StrongARM SA-1110 @ 133MHz",
    clock_mhz=133.0,
    power_mw=240.0,
    modexp_ms=9.1 / 240.0 * 1000.0,  # = 37.9166... ms, the paper rounds to 37.92
)

#: The MIRACL measurement platform; all primitive timings are quoted here.
PENTIUM_III_450 = CPUModel(
    name="Pentium III @ 450MHz",
    clock_mhz=450.0,
    power_mw=0.0,
    modexp_ms=8.8,
)

#: Source of the Tate-pairing and IBE timings; scaled down to the P-III 450.
PENTIUM_III_1GHZ = CPUModel(
    name="Pentium III @ 1GHz",
    clock_mhz=1000.0,
    power_mw=0.0,
    modexp_ms=8.8 * 450.0 / 1000.0,
)


def scale_by_clock(time_ms: float, source: CPUModel, target: CPUModel) -> float:
    """Scale a timing between two CPUs by their clock ratio.

    The paper uses this for the P-III 1 GHz -> P-III 450 MHz step
    ("we scale down by a factor of 1000MHz/450MHz = 2.22").
    """
    if source.clock_mhz <= 0 or target.clock_mhz <= 0:
        raise EnergyModelError("clock frequencies must be positive")
    return time_ms * source.clock_mhz / target.clock_mhz


def extrapolate_time_ms(
    reference_time_ms: float,
    reference: CPUModel = PENTIUM_III_450,
    target: CPUModel = STRONGARM_SA1110,
) -> float:
    """The paper's equation (4): extrapolate a primitive's time onto the target CPU.

    ``alpha = (gamma / reference.modexp_ms) * target.modexp_ms``
    """
    if reference.modexp_ms <= 0 or target.modexp_ms <= 0:
        raise EnergyModelError("modexp baseline timings must be positive")
    if reference_time_ms < 0:
        raise EnergyModelError("timings cannot be negative")
    return reference_time_ms / reference.modexp_ms * target.modexp_ms


def energy_mj_from_time(time_ms: float, cpu: CPUModel = STRONGARM_SA1110) -> float:
    """The paper's ``beta = power * alpha`` step (milli-joules)."""
    return cpu.energy_mj(time_ms)
