"""Per-node cost recording and energy accounting.

The protocol implementations do not know anything about Joules: while they
run, each simulated party records *what it did* — named primitive operations
("modexp", "sign_ver_gq", "symmetric", ...) and the exact number of bits it
transmitted and received — into a :class:`CostRecorder`.  The energy layer
then prices a recorder against a :class:`DeviceProfile` (CPU + transceiver +
operation cost table) to produce the per-node Joule figures of Figure 1 and
Table 5.

Keeping the two concerns separate means the same protocol run can be priced
for both transceivers (and any hypothetical device) without re-running any
cryptography — which is also how the paper's own analysis works.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from ..exceptions import EnergyModelError
from .cpu import CPUModel, STRONGARM_SA1110
from .opcosts import OperationCostTable
from .transceiver import Transceiver, WLAN_SPECTRUM24

__all__ = ["CostRecorder", "DeviceProfile", "EnergyBreakdown"]


class CostRecorder:
    """Tally of primitive operations and transmitted/received bits for one node."""

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self.operations: Counter = Counter()
        self.tx_bits: int = 0
        self.rx_bits: int = 0
        self.messages_sent: int = 0
        self.messages_received: int = 0

    # -------------------------------------------------------------- recording
    def record_operation(self, name: str, count: int = 1) -> None:
        """Record ``count`` occurrences of the named primitive operation."""
        if count < 0:
            raise EnergyModelError("operation counts cannot be negative")
        if count:
            self.operations[name] += count

    def record_signature(self, scheme: str, kind: str, count: int = 1) -> None:
        """Record signature generations (``kind='gen'``) or verifications (``'ver'``)."""
        if kind not in ("gen", "ver"):
            raise EnergyModelError("kind must be 'gen' or 'ver'")
        self.record_operation(f"sign_{kind}_{scheme}", count)

    def record_tx(self, bits: int, messages: int = 1) -> None:
        """Record a transmission of ``bits`` bits."""
        if bits < 0:
            raise EnergyModelError("bit counts cannot be negative")
        self.tx_bits += bits
        self.messages_sent += messages

    def record_rx(self, bits: int, messages: int = 1) -> None:
        """Record a reception of ``bits`` bits."""
        if bits < 0:
            raise EnergyModelError("bit counts cannot be negative")
        self.rx_bits += bits
        self.messages_received += messages

    # --------------------------------------------------------------- algebra
    def merge(self, other: "CostRecorder") -> "CostRecorder":
        """Return a new recorder combining ``self`` and ``other``."""
        merged = CostRecorder(owner=self.owner or other.owner)
        merged.operations = self.operations + other.operations
        merged.tx_bits = self.tx_bits + other.tx_bits
        merged.rx_bits = self.rx_bits + other.rx_bits
        merged.messages_sent = self.messages_sent + other.messages_sent
        merged.messages_received = self.messages_received + other.messages_received
        return merged

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view of the tallies (used in reports and tests)."""
        data = dict(self.operations)
        data["tx_bits"] = self.tx_bits
        data["rx_bits"] = self.rx_bits
        data["messages_sent"] = self.messages_sent
        data["messages_received"] = self.messages_received
        return data

    def operation_count(self, name: str) -> int:
        """Number of recorded occurrences of ``name``."""
        return self.operations.get(name, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostRecorder(owner={self.owner!r}, ops={dict(self.operations)}, "
            f"tx_bits={self.tx_bits}, rx_bits={self.rx_bits})"
        )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one node, split into computation / transmission / reception (Joules)."""

    computation_j: float
    tx_j: float
    rx_j: float
    per_operation_j: Mapping[str, float]

    @property
    def communication_j(self) -> float:
        """Transmit plus receive energy."""
        return self.tx_j + self.rx_j

    @property
    def total_j(self) -> float:
        """Total energy consumed by the node."""
        return self.computation_j + self.tx_j + self.rx_j


@dataclass(frozen=True)
class DeviceProfile:
    """A node's hardware: CPU model, transceiver and the operation cost table.

    The paper's headline configuration is the StrongARM SA-1110 with either the
    100 kbps radio or the Spectrum24 WLAN card; the default profile uses the
    WLAN card (the configuration of Table 5).
    """

    cpu: CPUModel = STRONGARM_SA1110
    transceiver: Transceiver = WLAN_SPECTRUM24
    op_costs: OperationCostTable = field(default_factory=OperationCostTable)

    def with_transceiver(self, transceiver: Transceiver) -> "DeviceProfile":
        """A copy of this profile with a different radio (same CPU and cost table)."""
        return DeviceProfile(cpu=self.cpu, transceiver=transceiver, op_costs=self.op_costs)

    # ------------------------------------------------------------------ price
    def price(self, recorder: CostRecorder) -> EnergyBreakdown:
        """Price a node's recorded costs into Joules."""
        per_operation: Dict[str, float] = {}
        computation_mj = 0.0
        for operation, count in recorder.operations.items():
            energy = self.op_costs.energy_mj(operation) * count
            per_operation[operation] = energy / 1000.0
            computation_mj += energy
        tx_mj = self.transceiver.tx_energy_mj(recorder.tx_bits)
        rx_mj = self.transceiver.rx_energy_mj(recorder.rx_bits)
        return EnergyBreakdown(
            computation_j=computation_mj / 1000.0,
            tx_j=tx_mj / 1000.0,
            rx_j=rx_mj / 1000.0,
            per_operation_j=per_operation,
        )

    def total_j(self, recorder: CostRecorder) -> float:
        """Total energy of one node in Joules (shortcut over :meth:`price`)."""
        return self.price(recorder).total_j
