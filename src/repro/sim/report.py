"""Scenario result aggregation and cross-protocol comparison.

:class:`ScenarioReport` is what a :class:`~repro.sim.runner.ScenarioRunner`
run returns: the ordered per-event :class:`EventRecord` list plus aggregate
views — totals, per-event-kind summaries (:class:`KindSummary`) and
per-member cumulative energy.  Because every protocol is driven through the
same scenario (same events, same loss draws), reports from different
protocols are directly comparable; :func:`comparison_table` renders them side
by side the way the paper's Table 5 compares dynamic-event costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import ParameterError

__all__ = ["EventRecord", "KindSummary", "ScenarioReport", "comparison_table"]


@dataclass(frozen=True)
class EventRecord:
    """Metrics for one protocol step (the establishment or one churn event).

    ``energy_j`` maps each *post-event* member to the Joules it spent on this
    step alone; members that did not exist before the step report their full
    cost.  ``bits``/``bits_with_retries`` count medium traffic during the
    step, excluding/including lossy retransmissions.
    """

    index: int
    kind: str
    time: float
    group_size: int
    rounds: int
    messages: int
    bits: int
    bits_with_retries: int
    wall_seconds: float
    agreed: bool
    energy_j: Mapping[str, float]

    @property
    def total_energy_j(self) -> float:
        """Joules spent by the whole group on this step."""
        return sum(self.energy_j.values())


@dataclass(frozen=True)
class KindSummary:
    """Aggregate over all events of one kind."""

    kind: str
    count: int
    total_energy_j: float
    total_messages: int
    total_bits: int
    total_wall_seconds: float

    @property
    def mean_energy_j(self) -> float:
        """Average group energy per event of this kind."""
        return self.total_energy_j / self.count if self.count else 0.0


@dataclass
class ScenarioReport:
    """Everything one protocol did under one scenario."""

    scenario_name: str
    scenario_description: str
    protocol: str
    records: List[EventRecord]
    final_size: int
    device: str = ""

    # ----------------------------------------------------------- aggregates
    @property
    def events(self) -> List[EventRecord]:
        """The churn events only (establishment record excluded)."""
        return [r for r in self.records if r.kind != "establish"]

    @property
    def total_energy_j(self) -> float:
        """Joules spent by all members over the whole scenario."""
        return sum(r.total_energy_j for r in self.records)

    @property
    def total_messages(self) -> int:
        """Messages placed on the medium over the whole scenario."""
        return sum(r.messages for r in self.records)

    def total_bits(self, *, include_retries: bool = False) -> int:
        """Bits placed on the medium (optionally counting retransmissions)."""
        if include_retries:
            return sum(r.bits_with_retries for r in self.records)
        return sum(r.bits for r in self.records)

    @property
    def total_wall_seconds(self) -> float:
        """Host wall-clock time spent executing the protocol steps."""
        return sum(r.wall_seconds for r in self.records)

    @property
    def agreed_throughout(self) -> bool:
        """Whether every member agreed on the key after every single step."""
        return all(r.agreed for r in self.records)

    def by_kind(self) -> Dict[str, KindSummary]:
        """Per-event-kind aggregates (establish, join, leave, merge, partition)."""
        summaries: Dict[str, KindSummary] = {}
        for kind in dict.fromkeys(r.kind for r in self.records):
            rows = [r for r in self.records if r.kind == kind]
            summaries[kind] = KindSummary(
                kind=kind,
                count=len(rows),
                total_energy_j=sum(r.total_energy_j for r in rows),
                total_messages=sum(r.messages for r in rows),
                total_bits=sum(r.bits for r in rows),
                total_wall_seconds=sum(r.wall_seconds for r in rows),
            )
        return summaries

    def per_member_energy_j(self) -> Dict[str, float]:
        """Cumulative Joules per member over every step it took part in."""
        totals: Dict[str, float] = {}
        for record in self.records:
            for name, joules in record.energy_j.items():
                totals[name] = totals.get(name, 0.0) + joules
        return totals

    # ------------------------------------------------------------ rendering
    def summary(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            f"scenario : {self.scenario_description}",
            f"protocol : {self.protocol}   (device: {self.device or 'default'})",
            f"steps    : {len(self.records)} ({len(self.events)} churn events), "
            f"final group size {self.final_size}",
            f"agreement: {'after every step' if self.agreed_throughout else 'BROKEN'}",
            f"totals   : {self.total_energy_j:.6f} J, {self.total_messages} messages, "
            f"{self.total_bits()} bits ({self.total_bits(include_retries=True)} incl. retries), "
            f"{self.total_wall_seconds:.3f} s wall",
            "per-kind :",
        ]
        for kind, agg in self.by_kind().items():
            lines.append(
                f"  {kind:<10} x{agg.count:<4} {agg.total_energy_j:.6f} J total, "
                f"{agg.mean_energy_j:.6f} J/event, {agg.total_messages} msgs"
            )
        return "\n".join(lines)


def comparison_table(reports: Sequence[ScenarioReport]) -> str:
    """Render several protocols' reports for the *same* scenario side by side."""
    if not reports:
        raise ParameterError("need at least one report to compare")
    scenario_names = {report.scenario_name for report in reports}
    if len(scenario_names) != 1:
        raise ParameterError(
            f"reports cover different scenarios ({sorted(scenario_names)}); "
            "comparisons are only meaningful within one scenario"
        )
    header = (
        f"{'protocol':<18} {'energy J':>12} {'messages':>9} {'bits':>12} "
        f"{'bits+retry':>12} {'wall s':>8} {'agreed':>7}"
    )
    lines = [f"scenario: {reports[0].scenario_description}", header, "-" * len(header)]
    for report in reports:
        lines.append(
            f"{report.protocol:<18} {report.total_energy_j:>12.6f} {report.total_messages:>9} "
            f"{report.total_bits():>12} {report.total_bits(include_retries=True):>12} "
            f"{report.total_wall_seconds:>8.3f} {'yes' if report.agreed_throughout else 'NO':>7}"
        )
    return "\n".join(lines)
