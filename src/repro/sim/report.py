"""Scenario result aggregation and cross-protocol comparison.

:class:`ScenarioReport` is what a :class:`~repro.sim.runner.ScenarioRunner`
run returns: the ordered per-event :class:`EventRecord` list plus aggregate
views — totals, per-event-kind summaries (:class:`KindSummary`) and
per-member cumulative energy.  Because every protocol is driven through the
same scenario (same events, same loss draws), reports from different
protocols are directly comparable; :func:`comparison_table` renders them side
by side the way the paper's Table 5 compares dynamic-event costs.  On
multi-hop mobile scenarios the records additionally carry the physical
transmission count, relay traffic and the energy those relays burned, so the
comparison reflects the true cost of carrying each protocol over a MANET.

Reports export to machine-readable form: :meth:`ScenarioReport.to_csv` /
:meth:`ScenarioReport.to_json` dump the per-event records,
:func:`comparison_csv` / :func:`comparison_json` dump the cross-protocol
totals that :func:`comparison_table` renders for humans.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..adversary.oracles import ORACLE_NAMES
from ..exceptions import ParameterError

__all__ = [
    "EventRecord",
    "KindSummary",
    "ScenarioReport",
    "comparison_table",
    "comparison_csv",
    "comparison_json",
]


def _oracle_cell(verdict: Optional[bool]) -> str:
    """Render one oracle verdict for CSV/tables (empty = not applicable)."""
    if verdict is None:
        return ""
    return "pass" if verdict else "FAIL"


def _oracle_column(name: str) -> str:
    """CSV column name for one oracle (``key-consistency`` -> ``oracle_key_consistency``)."""
    return "oracle_" + name.replace("-", "_")


@dataclass(frozen=True)
class EventRecord:
    """Metrics for one protocol step (the establishment or one churn event).

    ``energy_j`` maps each *post-event* member to the Joules it spent on this
    step alone; members that did not exist before the step report their full
    cost.  ``bits``/``bits_with_retries`` count medium traffic during the
    step, excluding/including lossy retransmissions.  ``transmissions``
    counts every physical on-air copy (origin, retries and relays);
    ``relay_bits``/``relay_energy_j`` are the share transmitted by relay
    nodes on multi-hop media (zero on a single-hop medium), and
    ``mean_hops`` the average flood depth a message needed.

    ``sim_latency_s`` is how long the step took in *virtual* time on the
    simulated radio medium (rounds × link delay, loss recovery included) when
    the step ran under an engine latency model — contrast with
    ``wall_seconds``, the host CPU time the execution cost.  ``timeouts``
    counts the round timeouts fired while losses were recovered.  Both are
    zero under the instant (synchronous-equivalent) driver.

    ``attacks`` counts the adversary's active actions during the step
    (injections, replays, modifications, drops, delays, key compromises);
    ``detected`` is set when the protocol aborted the step — the only way a
    protocol under attack is allowed to not finish.  ``aborted``/
    ``abort_reason`` carry the failure; on an aborted step the traffic and
    energy columns describe what was spent *before* the abort and the state
    columns describe the surviving pre-step group.  ``oracles`` maps each
    security oracle to its verdict (``True`` held, ``False`` violated,
    ``None`` not applicable this step).
    """

    index: int
    kind: str
    time: float
    group_size: int
    rounds: int
    messages: int
    bits: int
    bits_with_retries: int
    wall_seconds: float
    agreed: bool
    energy_j: Mapping[str, float]
    transmissions: int = 0
    relay_bits: int = 0
    relay_energy_j: float = 0.0
    mean_hops: float = 1.0
    sim_latency_s: float = 0.0
    timeouts: int = 0
    attacks: int = 0
    detected: bool = False
    aborted: bool = False
    abort_reason: str = ""
    oracles: Mapping[str, Optional[bool]] = field(default_factory=dict)

    @property
    def total_energy_j(self) -> float:
        """Joules spent by the whole group on this step."""
        return sum(self.energy_j.values())


@dataclass(frozen=True)
class KindSummary:
    """Aggregate over all events of one kind."""

    kind: str
    count: int
    total_energy_j: float
    total_messages: int
    total_bits: int
    total_wall_seconds: float
    total_relay_energy_j: float = 0.0

    @property
    def mean_energy_j(self) -> float:
        """Average group energy per event of this kind."""
        return self.total_energy_j / self.count if self.count else 0.0


@dataclass
class ScenarioReport:
    """Everything one protocol did under one scenario."""

    scenario_name: str
    scenario_description: str
    protocol: str
    records: List[EventRecord]
    final_size: int
    device: str = ""
    #: one-line description of the attacker suite ("" = honest runs)
    adversary: str = ""
    #: digest of the ordered chain of agreed keys (see
    #: :meth:`~repro.sim.runner.ScenarioRunner._key_fingerprint`); two runs
    #: match iff they agreed on the same keys in the same order
    key_fingerprint: str = ""

    # ----------------------------------------------------------- aggregates
    @property
    def events(self) -> List[EventRecord]:
        """The churn events only (establishment record excluded)."""
        return [r for r in self.records if r.kind != "establish"]

    @property
    def total_energy_j(self) -> float:
        """Joules spent by all members over the whole scenario."""
        return sum(r.total_energy_j for r in self.records)

    @property
    def total_messages(self) -> int:
        """Messages placed on the medium over the whole scenario."""
        return sum(r.messages for r in self.records)

    @property
    def total_transmissions(self) -> int:
        """Physical transmissions (origins, retries and relay hops)."""
        return sum(r.transmissions for r in self.records)

    @property
    def total_relay_bits(self) -> int:
        """Bits transmitted by relays over the whole scenario."""
        return sum(r.relay_bits for r in self.records)

    @property
    def total_relay_energy_j(self) -> float:
        """Joules burned by relay transmissions over the whole scenario."""
        return sum(r.relay_energy_j for r in self.records)

    @property
    def mean_hops(self) -> float:
        """Message-weighted average flood depth (1.0 on single-hop media)."""
        weighted = sum(r.mean_hops * r.messages for r in self.records)
        messages = self.total_messages
        return weighted / messages if messages else 1.0

    def total_bits(self, *, include_retries: bool = False) -> int:
        """Bits placed on the medium (optionally counting retransmissions)."""
        if include_retries:
            return sum(r.bits_with_retries for r in self.records)
        return sum(r.bits for r in self.records)

    @property
    def total_wall_seconds(self) -> float:
        """Host wall-clock time spent executing the protocol steps."""
        return sum(r.wall_seconds for r in self.records)

    @property
    def total_sim_latency_s(self) -> float:
        """Virtual-time seconds the protocol spent completing every step."""
        return sum(r.sim_latency_s for r in self.records)

    @property
    def total_timeouts(self) -> int:
        """Round timeouts fired over the whole scenario (loss recovery)."""
        return sum(r.timeouts for r in self.records)

    @property
    def agreed_throughout(self) -> bool:
        """Whether every member agreed on the key after every single step."""
        return all(r.agreed for r in self.records)

    # ------------------------------------------------------------- security
    @property
    def total_attacks(self) -> int:
        """Active adversary actions over the whole scenario."""
        return sum(r.attacks for r in self.records)

    @property
    def attacks_detected(self) -> bool:
        """Whether the protocol aborted at least one attacked step."""
        return any(r.detected for r in self.records)

    @property
    def aborted(self) -> bool:
        """Whether the scenario ended early on a protocol abort."""
        return any(r.aborted for r in self.records)

    def oracle_outcomes(self) -> Dict[str, Optional[bool]]:
        """Aggregate per-oracle verdicts over every step.

        ``False`` if the oracle ever failed, ``True`` if it held on every
        step it applied to, ``None`` if it never applied.
        """
        outcomes: Dict[str, Optional[bool]] = {}
        for name in ORACLE_NAMES:
            verdicts = [
                r.oracles[name] for r in self.records if r.oracles.get(name) is not None
            ]
            if not verdicts:
                outcomes[name] = None
            else:
                outcomes[name] = all(verdicts)
        return outcomes

    @property
    def security_verdict(self) -> str:
        """How the protocol fared against this scenario's adversary.

        ``leaked`` (the adversary can produce a group key), ``broken``
        (inconsistent keys, undetected), ``detected`` (attack caught via
        abort), ``resisted`` (attacks absorbed, keys consistent) or
        ``clean`` (nothing attacked anything).
        """
        outcomes = self.oracle_outcomes()
        if outcomes.get("implicit-key-auth") is False:
            return "leaked"
        if any(
            r.oracles.get("key-consistency") is False and not r.detected
            for r in self.records
        ):
            return "broken"
        if self.attacks_detected:
            return "detected"
        if self.total_attacks:
            return "resisted"
        return "clean"

    def by_kind(self) -> Dict[str, KindSummary]:
        """Per-event-kind aggregates (establish, join, leave, merge, partition)."""
        summaries: Dict[str, KindSummary] = {}
        for kind in dict.fromkeys(r.kind for r in self.records):
            rows = [r for r in self.records if r.kind == kind]
            summaries[kind] = KindSummary(
                kind=kind,
                count=len(rows),
                total_energy_j=sum(r.total_energy_j for r in rows),
                total_messages=sum(r.messages for r in rows),
                total_bits=sum(r.bits for r in rows),
                total_wall_seconds=sum(r.wall_seconds for r in rows),
                total_relay_energy_j=sum(r.relay_energy_j for r in rows),
            )
        return summaries

    def per_member_energy_j(self) -> Dict[str, float]:
        """Cumulative Joules per member over every step it took part in."""
        totals: Dict[str, float] = {}
        for record in self.records:
            for name, joules in record.energy_j.items():
                totals[name] = totals.get(name, 0.0) + joules
        return totals

    # ------------------------------------------------------------ rendering
    def summary(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            f"scenario : {self.scenario_description}",
            f"protocol : {self.protocol}   (device: {self.device or 'default'})",
            f"steps    : {len(self.records)} ({len(self.events)} churn events), "
            f"final group size {self.final_size}",
            f"agreement: {'after every step' if self.agreed_throughout else 'BROKEN'}",
            f"totals   : {self.total_energy_j:.6f} J, {self.total_messages} messages, "
            f"{self.total_bits()} bits ({self.total_bits(include_retries=True)} incl. retries), "
            f"{self.total_wall_seconds:.3f} s wall",
        ]
        if self.total_relay_bits:
            lines.append(
                f"relaying : {self.total_transmissions} physical transmissions, "
                f"{self.total_relay_bits} relay bits ({self.total_relay_energy_j:.6f} J), "
                f"mean flood depth {self.mean_hops:.2f} hops"
            )
        if self.total_sim_latency_s:
            lines.append(
                f"virtual  : {self.total_sim_latency_s:.3f} s of simulated medium time, "
                f"{self.total_timeouts} round timeouts"
            )
        if self.adversary or self.total_attacks:
            oracle_text = ", ".join(
                f"{name}={_oracle_cell(verdict) or 'n/a'}"
                for name, verdict in self.oracle_outcomes().items()
            )
            lines.append(
                f"security : {self.security_verdict} under [{self.adversary or 'no adversary'}] "
                f"({self.total_attacks} attack actions); {oracle_text}"
            )
        lines.append("per-kind :")
        for kind, agg in self.by_kind().items():
            lines.append(
                f"  {kind:<10} x{agg.count:<4} {agg.total_energy_j:.6f} J total, "
                f"{agg.mean_energy_j:.6f} J/event, {agg.total_messages} msgs"
            )
        return "\n".join(lines)

    # -------------------------------------------------------------- exports
    #: Per-event CSV/JSON columns, in export order.
    _RECORD_FIELDS = (
        "index",
        "kind",
        "time",
        "group_size",
        "rounds",
        "messages",
        "bits",
        "bits_with_retries",
        "transmissions",
        "relay_bits",
        "relay_energy_j",
        "mean_hops",
        "sim_latency_s",
        "timeouts",
        "wall_seconds",
        "agreed",
        "attacks",
        "detected",
        "aborted",
        "total_energy_j",
    )

    #: Per-oracle verdict columns appended after the scalar fields.
    _ORACLE_FIELDS = tuple(_oracle_column(name) for name in ORACLE_NAMES)

    def _record_row(self, record: EventRecord) -> Dict[str, object]:
        row = {name: getattr(record, name) for name in self._RECORD_FIELDS}
        for name in ORACLE_NAMES:
            row[_oracle_column(name)] = _oracle_cell(record.oracles.get(name))
        return row

    def to_csv(self, path: Optional[str] = None) -> str:
        """Per-event records as CSV (written to ``path`` when given)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(
            buffer,
            fieldnames=list(self._RECORD_FIELDS) + list(self._ORACLE_FIELDS),
            lineterminator="\n",
        )
        writer.writeheader()
        for record in self.records:
            writer.writerow(self._record_row(record))
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    def to_json(self, path: Optional[str] = None, *, indent: int = 2) -> str:
        """The whole report — metadata, totals, per-event records, per-member
        energy — as JSON (written to ``path`` when given)."""
        payload = {
            "scenario": self.scenario_name,
            "description": self.scenario_description,
            "protocol": self.protocol,
            "device": self.device,
            "adversary": self.adversary,
            "final_size": self.final_size,
            "key_fingerprint": self.key_fingerprint,
            "totals": {
                "energy_j": self.total_energy_j,
                "messages": self.total_messages,
                "bits": self.total_bits(),
                "bits_with_retries": self.total_bits(include_retries=True),
                "transmissions": self.total_transmissions,
                "relay_bits": self.total_relay_bits,
                "relay_energy_j": self.total_relay_energy_j,
                "mean_hops": self.mean_hops,
                "sim_latency_s": self.total_sim_latency_s,
                "timeouts": self.total_timeouts,
                "wall_seconds": self.total_wall_seconds,
                "agreed_throughout": self.agreed_throughout,
                "attacks": self.total_attacks,
                "detected": self.attacks_detected,
                "security_verdict": self.security_verdict,
            },
            "oracles": self.oracle_outcomes(),
            "records": [
                {
                    **self._record_row(record),
                    "abort_reason": record.abort_reason,
                    "oracles": dict(record.oracles),
                    "energy_j": dict(record.energy_j),
                }
                for record in self.records
            ],
            "per_member_energy_j": self.per_member_energy_j(),
        }
        text = json.dumps(payload, indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text


def _require_same_scenario(reports: Sequence[ScenarioReport]) -> None:
    if not reports:
        raise ParameterError("need at least one report to compare")
    scenario_names = {report.scenario_name for report in reports}
    if len(scenario_names) != 1:
        raise ParameterError(
            f"reports cover different scenarios ({sorted(scenario_names)}); "
            "comparisons are only meaningful within one scenario"
        )


#: Cross-protocol totals exported per report by comparison_csv/comparison_json.
_COMPARISON_FIELDS = (
    "protocol",
    "energy_j",
    "messages",
    "bits",
    "bits_with_retries",
    "transmissions",
    "relay_bits",
    "relay_energy_j",
    "mean_hops",
    "sim_latency_s",
    "timeouts",
    "wall_seconds",
    "agreed",
    "attacks",
    "detected",
    "security_verdict",
) + tuple(_oracle_column(name) for name in ORACLE_NAMES)


def _comparison_row(report: ScenarioReport) -> Dict[str, object]:
    row = {
        "protocol": report.protocol,
        "energy_j": report.total_energy_j,
        "messages": report.total_messages,
        "bits": report.total_bits(),
        "bits_with_retries": report.total_bits(include_retries=True),
        "transmissions": report.total_transmissions,
        "relay_bits": report.total_relay_bits,
        "relay_energy_j": report.total_relay_energy_j,
        "mean_hops": report.mean_hops,
        "sim_latency_s": report.total_sim_latency_s,
        "timeouts": report.total_timeouts,
        "wall_seconds": report.total_wall_seconds,
        "agreed": report.agreed_throughout,
        "attacks": report.total_attacks,
        "detected": report.attacks_detected,
        "security_verdict": report.security_verdict,
    }
    for name, verdict in report.oracle_outcomes().items():
        row[_oracle_column(name)] = _oracle_cell(verdict)
    return row


def comparison_table(reports: Sequence[ScenarioReport]) -> str:
    """Render several protocols' reports for the *same* scenario side by side."""
    _require_same_scenario(reports)
    relaying = any(report.total_relay_bits for report in reports)
    virtual_time = any(report.total_sim_latency_s for report in reports)
    under_attack = any(report.adversary or report.total_attacks for report in reports)
    header = (
        f"{'protocol':<18} {'energy J':>12} {'messages':>9} {'bits':>12} "
        f"{'bits+retry':>12}"
    )
    if relaying:
        header += f" {'tx':>8} {'relay J':>12} {'hops':>5}"
    if virtual_time:
        header += f" {'sim s':>9} {'t/o':>5}"
    header += f" {'wall s':>8} {'agreed':>7}"
    if under_attack:
        header += f" {'attacks':>8} {'verdict':>9}"
    lines = [f"scenario: {reports[0].scenario_description}", header, "-" * len(header)]
    for report in reports:
        line = (
            f"{report.protocol:<18} {report.total_energy_j:>12.6f} {report.total_messages:>9} "
            f"{report.total_bits():>12} {report.total_bits(include_retries=True):>12}"
        )
        if relaying:
            line += (
                f" {report.total_transmissions:>8} {report.total_relay_energy_j:>12.6f} "
                f"{report.mean_hops:>5.2f}"
            )
        if virtual_time:
            line += f" {report.total_sim_latency_s:>9.3f} {report.total_timeouts:>5}"
        line += (
            f" {report.total_wall_seconds:>8.3f} {'yes' if report.agreed_throughout else 'NO':>7}"
        )
        if under_attack:
            line += f" {report.total_attacks:>8} {report.security_verdict:>9}"
        lines.append(line)
    return "\n".join(lines)


def comparison_csv(reports: Sequence[ScenarioReport], path: Optional[str] = None) -> str:
    """The comparison table's totals as CSV, one row per protocol."""
    _require_same_scenario(reports)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(_COMPARISON_FIELDS), lineterminator="\n")
    writer.writeheader()
    for report in reports:
        writer.writerow(_comparison_row(report))
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
    return text


def comparison_json(reports: Sequence[ScenarioReport], path: Optional[str] = None, *, indent: int = 2) -> str:
    """The comparison table's totals as JSON, one object per protocol."""
    _require_same_scenario(reports)
    payload = {
        "scenario": reports[0].scenario_name,
        "description": reports[0].scenario_description,
        "protocols": [_comparison_row(report) for report in reports],
    }
    text = json.dumps(payload, indent=indent)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
