"""Declarative churn scenarios.

A :class:`Scenario` names an experiment: an initial group size, a churn
schedule, a seed, and the medium's loss characteristics.  Schedules are small
declarative objects that expand — deterministically, from the scenario seed —
into a timed stream of the :mod:`repro.network.events` membership events:

* :class:`PoissonChurn` — joins/leaves/merges/partitions arriving as a
  Poisson process with per-kind rates (the classic MANET churn model);
* :class:`BurstPartitions` — periodic bursts where several members drop out
  at once (deep fades, moving obstacles), optionally followed by a
  same-sized merge as fresh nodes repopulate the area;
* :class:`PeriodicMerges` — a steady trickle of whole sub-groups arriving;
* :class:`TraceReplay` — replay an explicit event list (e.g. one produced by
  :class:`~repro.network.events.EventTraceGenerator` or captured from a real
  deployment).

The same :class:`Scenario` object drives *every* protocol, so reported
numbers are comparable: identical event streams, identical loss draws.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Sequence

from ..exceptions import ParameterError
from ..mathutils.rand import DeterministicRNG
from ..network.events import (
    EventTraceGenerator,
    JoinEvent,
    MembershipEvent,
    MergeEvent,
    PartitionEvent,
    membership_after,
)
from ..pki.identity import Identity

__all__ = [
    "ScheduledEvent",
    "ChurnSchedule",
    "PoissonChurn",
    "BurstPartitions",
    "PeriodicMerges",
    "TraceReplay",
    "Scenario",
]


@dataclass(frozen=True)
class ScheduledEvent:
    """A membership event stamped with its simulated arrival time (seconds)."""

    time: float
    event: MembershipEvent

    @property
    def kind(self) -> str:
        """The event kind (``join``/``leave``/``merge``/``partition``)."""
        return self.event.kind


def _exponential(rng: DeterministicRNG, rate: float) -> float:
    """Draw an exponential inter-arrival time with the given rate."""
    # (0, 1] so log never sees zero; 53 bits matches double precision.
    u = (rng.randbelow(1 << 53) + 1) / float((1 << 53) + 1)
    return -math.log(u) / rate


class ChurnSchedule:
    """Base class: expands into a timed event stream for given initial members."""

    def generate(
        self,
        initial_members: Sequence[Identity],
        rng: DeterministicRNG,
        *,
        min_group_size: int = 3,
    ) -> List[ScheduledEvent]:
        """Produce the scenario's scheduled events (deterministic in ``rng``)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonChurn(ChurnSchedule):
    """Membership events arriving as a Poisson process.

    ``length`` events are drawn; each event's kind is chosen proportionally
    to the per-kind rates and the inter-arrival gaps are exponential with the
    total rate (rates are per simulated second).
    """

    length: int
    join_rate: float = 2.0
    leave_rate: float = 2.0
    merge_rate: float = 0.0
    partition_rate: float = 0.0
    merge_size: int = 3
    partition_size: int = 3

    def generate(
        self,
        initial_members: Sequence[Identity],
        rng: DeterministicRNG,
        *,
        min_group_size: int = 3,
    ) -> List[ScheduledEvent]:
        if self.length < 0:
            raise ParameterError("length cannot be negative")
        total_rate = self.join_rate + self.leave_rate + self.merge_rate + self.partition_rate
        if total_rate <= 0:
            raise ParameterError("at least one event rate must be positive")
        generator = EventTraceGenerator(
            rng.fork("kinds"),
            join_weight=self.join_rate,
            leave_weight=self.leave_rate,
            merge_weight=self.merge_rate,
            partition_weight=self.partition_rate,
            merge_size=self.merge_size,
            partition_size=self.partition_size,
            name_prefix="poisson",
        )
        events = generator.trace(initial_members, self.length, min_group_size=min_group_size)
        clock_rng = rng.fork("arrivals")
        scheduled: List[ScheduledEvent] = []
        now = 0.0
        for event in events:
            now += _exponential(clock_rng, total_rate)
            scheduled.append(ScheduledEvent(time=now, event=event))
        return scheduled


@dataclass(frozen=True)
class BurstPartitions(ChurnSchedule):
    """Periodic partition bursts, optionally refilled by merges.

    Every ``period`` seconds a random set of ``burst_size`` non-controller
    members drops out at once.  With ``refill=True`` the same number of fresh
    identities arrive ``refill_delay`` seconds later (in a MANET the nodes
    that wander back in are rarely the ones that left) — as a merging group
    of two or more, or a single join when only one member dropped — keeping
    the group at its initial size for the next burst.
    """

    bursts: int
    burst_size: int = 3
    period: float = 10.0
    refill: bool = True
    refill_delay: float = 2.0

    def generate(
        self,
        initial_members: Sequence[Identity],
        rng: DeterministicRNG,
        *,
        min_group_size: int = 3,
    ) -> List[ScheduledEvent]:
        if self.bursts < 0:
            raise ParameterError("bursts cannot be negative")
        if self.burst_size < 1:
            raise ParameterError("burst_size must be at least 1")
        if self.period <= 0:
            raise ParameterError("period must be positive")
        members = list(initial_members)
        pick_rng = rng.fork("bursts")
        scheduled: List[ScheduledEvent] = []
        now = 0.0
        fresh = 0
        for _ in range(self.bursts):
            now += self.period
            # Never partition the controller, never shrink below viability.
            size = min(self.burst_size, len(members) - min_group_size)
            if size < 1:
                continue
            victims = tuple(pick_rng.sample(members[1:], size))
            event: MembershipEvent = PartitionEvent(leaving=victims)
            scheduled.append(ScheduledEvent(time=now, event=event))
            members = membership_after(members, event)
            if self.refill:
                arrivals = []
                for _ in range(size):
                    fresh += 1
                    arrivals.append(Identity(f"burst-{fresh:04d}"))
                # A lone returning node cannot form a group of its own, so it
                # arrives as a plain join rather than a merge.
                if size == 1:
                    event = JoinEvent(joining=arrivals[0])
                else:
                    event = MergeEvent(other_group=tuple(arrivals))
                scheduled.append(ScheduledEvent(time=now + self.refill_delay, event=event))
                members = membership_after(members, event)
        return scheduled


@dataclass(frozen=True)
class PeriodicMerges(ChurnSchedule):
    """A whole sub-group of ``merge_size`` fresh members arrives every ``period``."""

    merges: int
    merge_size: int = 3
    period: float = 10.0

    def generate(
        self,
        initial_members: Sequence[Identity],
        rng: DeterministicRNG,
        *,
        min_group_size: int = 3,
    ) -> List[ScheduledEvent]:
        if self.merges < 0:
            raise ParameterError("merges cannot be negative")
        if self.merge_size < 2:
            raise ParameterError("merge_size must be at least 2 (a group)")
        if self.period <= 0:
            raise ParameterError("period must be positive")
        scheduled: List[ScheduledEvent] = []
        now = 0.0
        fresh = 0
        for _ in range(self.merges):
            now += self.period
            arrivals = []
            for _ in range(self.merge_size):
                fresh += 1
                arrivals.append(Identity(f"merge-{fresh:04d}"))
            scheduled.append(ScheduledEvent(time=now, event=MergeEvent(other_group=tuple(arrivals))))
        return scheduled


@dataclass(frozen=True)
class TraceReplay(ChurnSchedule):
    """Replay an explicit event list with fixed spacing (trace-driven runs)."""

    events: tuple
    spacing: float = 1.0

    def generate(
        self,
        initial_members: Sequence[Identity],
        rng: DeterministicRNG,
        *,
        min_group_size: int = 3,
    ) -> List[ScheduledEvent]:
        scheduled: List[ScheduledEvent] = []
        now = 0.0
        for event in self.events:
            if isinstance(event, ScheduledEvent):
                scheduled.append(event)
                continue
            now += self.spacing
            scheduled.append(ScheduledEvent(time=now, event=event))
        return scheduled


@dataclass(frozen=True)
class Scenario:
    """A named, fully deterministic churn experiment.

    The scenario owns everything that must be *identical* across the
    protocols being compared: the initial membership, the expanded event
    stream, and the medium's loss model seed.
    """

    name: str
    initial_size: int
    schedule: ChurnSchedule
    seed: object = 0
    loss_probability: float = 0.0
    max_retries: int = 10
    min_group_size: int = 3
    member_prefix: str = "member"

    def __post_init__(self) -> None:
        if self.initial_size < 2:
            raise ParameterError("a scenario needs at least two initial members")
        if self.min_group_size < 2:
            raise ParameterError("min_group_size must be at least 2")

    # -------------------------------------------------------------- expansion
    def initial_members(self) -> List[Identity]:
        """The initial group, ``member-000`` (the controller) first."""
        return [Identity(f"{self.member_prefix}-{i:03d}") for i in range(self.initial_size)]

    def build_events(self) -> List[ScheduledEvent]:
        """Expand the schedule into the deterministic timed event stream."""
        rng = DeterministicRNG(self.seed if self.seed is not None else 0, label=f"scenario/{self.name}")
        return self.schedule.generate(
            self.initial_members(), rng, min_group_size=self.min_group_size
        )

    def with_seed(self, seed: object) -> "Scenario":
        """A copy of this scenario under a different seed (for replications)."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (
            f"{self.name}: n={self.initial_size}, {type(self.schedule).__name__}, "
            f"loss={self.loss_probability:g}, seed={self.seed!r}"
        )
