"""Drive a protocol through a scenario's event stream.

:class:`ScenarioRunner` is the execution half of the scenario engine: it
resolves a protocol by registry name (or accepts a
:class:`~repro.core.base.Protocol` instance), establishes the initial group
on a shared medium, then applies every scheduled event through the protocol's
:meth:`~repro.core.base.Protocol.apply_event`.  The proposed protocol serves
events with its native Join/Leave/Merge/Partition sub-protocols; every
baseline re-executes its full GKA — the exact comparison the paper's Tables 4
and 5 make, but over arbitrary multi-event workloads.

Schedule-driven scenarios run on a single-hop — optionally lossy —
:class:`~repro.network.medium.BroadcastMedium`.  Mobility-driven scenarios
run on a :class:`~repro.mobility.relay.MultiHopMedium` over the scenario's
:class:`~repro.mobility.field.MobilityField`: the runner advances the field
to each event's timestamp, so per-link losses, relay paths and the emergent
partition/merge stream all see the same positions.

Every stochastic input is a *named* child of the scenario's master seed
(medium losses, mobility trajectories, the establishment seed, one seed per
event), so streams never cross-contaminate and two runs with the same seed
are identical down to the per-node energy ledgers.

After every step the runner records an :class:`~repro.sim.report.EventRecord`
with the step's energy (per member, priced on the configured
:class:`~repro.energy.accounting.DeviceProfile`), medium traffic (messages,
bits, bits including lossy retransmissions, physical transmissions, relay
bits and the Joules those relay bits cost) and host wall-time, and verifies
that all members agree on the group key.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

from ..core.base import GroupState, Protocol, ProtocolResult, SystemSetup
from ..core.registry import create_protocol
from ..energy.accounting import DeviceProfile
from ..engine.executor import EngineConfig
from ..exceptions import ProtocolError
from ..mobility.field import MobilityField
from ..mobility.relay import MultiHopMedium
from ..network.medium import BroadcastMedium
from .report import EventRecord, ScenarioReport
from .scenarios import Scenario

__all__ = ["ScenarioRunner"]

#: (messages, bits, bits w/ retries, transmissions, relay bits, receipt count)
_Traffic = Tuple[int, int, int, int, int, int]


class ScenarioRunner:
    """Runs registry-selected protocols through declarative scenarios.

    Parameters
    ----------
    setup:
        The shared :class:`~repro.core.base.SystemSetup` (PKG, group, hash).
    device:
        Hardware profile used to price recorded costs into Joules.
    check_agreement:
        When true (the default), raise :class:`~repro.exceptions.ProtocolError`
        the moment any step leaves the members disagreeing on the key;
        when false, the disagreement is only recorded in the report.
    engine:
        Optional :class:`~repro.engine.executor.EngineConfig` driving every
        protocol step through the virtual-time kernel with a latency model —
        the per-event records then carry real ``sim_latency_s``/``timeouts``
        columns.  ``None`` (the default) runs in instant mode, which is
        bit-identical to the pre-kernel synchronous execution.
    """

    def __init__(
        self,
        setup: SystemSetup,
        *,
        device: Optional[DeviceProfile] = None,
        check_agreement: bool = True,
        engine: Optional[EngineConfig] = None,
    ) -> None:
        self.setup = setup
        self.device = device or DeviceProfile()
        self.check_agreement = check_agreement
        self.engine = engine

    # --------------------------------------------------------------- medium
    def _build_medium(self, scenario: Scenario) -> Tuple[BroadcastMedium, Optional[MobilityField]]:
        """The scenario's shared medium (and its field, when mobile)."""
        medium_rng = scenario.master_rng().fork("medium")
        if scenario.mobility is None:
            return (
                BroadcastMedium(
                    loss_probability=scenario.loss_probability,
                    max_retries=scenario.max_retries,
                    rng=medium_rng,
                ),
                None,
            )
        field = scenario.build_mobility_field()
        return (
            MultiHopMedium(
                field,
                scenario.mobility.build_link(field),
                max_hops=scenario.mobility.max_hops,
                max_retries=scenario.max_retries,
                rng=medium_rng,
            ),
            field,
        )

    # ------------------------------------------------------------------- run
    def run(self, protocol: Union[str, Protocol], scenario: Scenario) -> ScenarioReport:
        """Execute ``scenario`` under ``protocol`` and return the report."""
        if isinstance(protocol, str):
            protocol = create_protocol(protocol, self.setup)
        medium, field = self._build_medium(scenario)
        records: List[EventRecord] = []

        # ------------------------------------------------------ establishment
        members = scenario.initial_members()
        started = time.perf_counter()
        result = protocol.run(
            members,
            medium=medium,
            seed=scenario.child_seed("protocol/establish"),
            engine=self.engine,
        )
        wall = time.perf_counter() - started
        state = result.state
        records.append(
            self._record(
                index=0,
                kind="establish",
                event_time=0.0,
                result=result,
                medium=medium,
                before_energy={},
                before_traffic=(0, 0, 0, 0, 0, 0),
                wall=wall,
            )
        )
        self._check(records[-1], protocol.name, scenario)

        # ------------------------------------------------------- churn events
        for position, scheduled in enumerate(scenario.build_events(), start=1):
            if field is not None:
                field.advance_to(scheduled.time)
            before_energy = self._energy_snapshot(state)
            before_traffic = self._traffic_snapshot(medium)
            started = time.perf_counter()
            result = protocol.apply_event(
                state,
                scheduled.event,
                medium=medium,
                seed=scenario.child_seed(f"protocol/event/{position:04d}"),
                engine=self.engine,
            )
            wall = time.perf_counter() - started
            state = result.state
            records.append(
                self._record(
                    index=position,
                    kind=scheduled.kind,
                    event_time=scheduled.time,
                    result=result,
                    medium=medium,
                    before_energy=before_energy,
                    before_traffic=before_traffic,
                    wall=wall,
                )
            )
            self._check(records[-1], protocol.name, scenario)

        return ScenarioReport(
            scenario_name=scenario.name,
            scenario_description=scenario.describe(),
            protocol=protocol.name,
            records=records,
            final_size=state.size,
            device=f"{self.device.cpu.name} + {self.device.transceiver.name}",
        )

    def run_all(
        self, protocols: List[Union[str, Protocol]], scenario: Scenario
    ) -> List[ScenarioReport]:
        """Run the same scenario under each protocol (comparison sweeps)."""
        return [self.run(protocol, scenario) for protocol in protocols]

    # --------------------------------------------------------------- helpers
    def _energy_snapshot(self, state: GroupState) -> Dict[str, Tuple[int, float]]:
        """Per-member (recorder identity, Joules so far) before an event."""
        return {
            name: (id(recorder), self.device.total_j(recorder))
            for name, recorder in state.recorders().items()
        }

    @staticmethod
    def _traffic_snapshot(medium: BroadcastMedium) -> _Traffic:
        return (
            medium.total_messages(),
            medium.total_bits(),
            medium.total_bits(include_retries=True),
            medium.total_transmissions(),
            medium.total_relay_bits(),
            len(medium.receipts),
        )

    def _record(
        self,
        *,
        index: int,
        kind: str,
        event_time: float,
        result: ProtocolResult,
        medium: BroadcastMedium,
        before_energy: Dict[str, Tuple[int, float]],
        before_traffic: _Traffic,
        wall: float,
    ) -> EventRecord:
        state = result.state
        energy: Dict[str, float] = {}
        for name, recorder in state.recorders().items():
            total = self.device.total_j(recorder)
            previous_id, previous_total = before_energy.get(name, (None, 0.0))
            # The proposed protocol's recorders persist across events, so the
            # step cost is a delta; a re-executing baseline creates fresh
            # recorders (different identity) whose totals *are* the step cost.
            if previous_id is not None and previous_id == id(recorder):
                energy[name] = total - previous_total
            else:
                energy[name] = total
        messages0, bits0, retry_bits0, transmissions0, relay_bits0, receipts0 = before_traffic
        relay_bits = medium.total_relay_bits() - relay_bits0
        step_receipts = medium.receipts[receipts0:]
        mean_hops = (
            sum(receipt.hops for receipt in step_receipts) / len(step_receipts)
            if step_receipts
            else 1.0
        )
        return EventRecord(
            index=index,
            kind=kind,
            time=event_time,
            group_size=state.size,
            rounds=result.rounds,
            messages=medium.total_messages() - messages0,
            bits=medium.total_bits() - bits0,
            bits_with_retries=medium.total_bits(include_retries=True) - retry_bits0,
            wall_seconds=wall,
            agreed=state.all_agree(),
            energy_j=energy,
            transmissions=medium.total_transmissions() - transmissions0,
            relay_bits=relay_bits,
            relay_energy_j=self.device.transceiver.tx_energy_mj(relay_bits) / 1000.0,
            mean_hops=mean_hops,
            sim_latency_s=result.sim_latency_s,
            timeouts=result.timeouts,
        )

    def _check(self, record: EventRecord, protocol_name: str, scenario: Scenario) -> None:
        if self.check_agreement and not record.agreed:
            raise ProtocolError(
                f"{protocol_name} left the group disagreeing on the key after "
                f"step {record.index} ({record.kind}) of scenario {scenario.name!r}"
            )
